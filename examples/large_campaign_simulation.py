"""Simulate a large parsing campaign on a Polaris-like cluster.

Compares three strategies for parsing a large document collection across node
counts — the fast extractor alone (PyMuPDF), the high-quality ViT parser alone
(Nougat), and the AdaParse (FT) mix — reporting throughput, GPU utilisation,
and the effect of warm-started model workers.  This reproduces the systems
side of the paper (Figures 4 and 5) without needing the quality models.

Run with::

    python examples/large_campaign_simulation.py
"""

from __future__ import annotations

from repro.core.config import FT_VARIANT_CONFIG
from repro.hpc.campaign import CampaignConfig, ParsingCampaign
from repro.parsers.registry import default_registry
from repro.utils.tables import Table


def main() -> None:
    registry = default_registry()
    node_counts = [1, 4, 16, 64]
    docs_per_node = 250

    table = Table(
        title="Simulated campaign throughput (documents/second)",
        columns=["strategy"] + [f"{n} nodes" for n in node_counts],
    )
    utilisation = {}
    for strategy in ("pymupdf", "nougat", "adaparse_ft"):
        row: dict[str, object] = {"strategy": strategy}
        for n_nodes in node_counts:
            campaign = ParsingCampaign(CampaignConfig(n_nodes=n_nodes))
            n_documents = docs_per_node * n_nodes
            if strategy == "adaparse_ft":
                result = campaign.run_adaparse(registry, FT_VARIANT_CONFIG, n_documents)
            else:
                result = campaign.run_parser(registry.get(strategy), n_documents)
            row[f"{n_nodes} nodes"] = round(result.throughput_docs_per_s, 2)
            if n_nodes == 1:
                utilisation[strategy] = (result.cpu_utilization, result.gpu_utilization)
        table.add_row(row)

    print(table.to_text(precision=2))
    print()
    print("single-node utilisation (cpu, gpu):")
    for strategy, (cpu, gpu) in utilisation.items():
        print(f"  {strategy:12s} cpu={cpu:.2f} gpu={gpu:.2f}")

    # Warm-started model workers: the Parsl modification described in §5.2.
    print()
    for warm in (True, False):
        campaign = ParsingCampaign(CampaignConfig(n_nodes=1, warm_start=warm))
        result = campaign.run_parser(registry.get("nougat"), n_documents=200)
        label = "warm-started" if warm else "cold-started"
        print(
            f"Nougat, {label} workers: {result.throughput_docs_per_s:.2f} docs/s, "
            f"{result.model_loads} model loads, GPU util {result.gpu_utilization:.2f}"
        )


if __name__ == "__main__":
    main()
