"""Run a multi-node parsing campaign with injected faults and retries.

Large campaigns hit corrupted PDFs, transient worker failures, and stragglers
(Section 2.4 of the paper).  This example runs the cluster simulator with and
without fault injection and shows how the executor's retry/quarantine policy
keeps completion high at a modest throughput cost, and how the budget-aware
assignment planner (the multi-parser extension of Appendix C) would distribute
the same documents across the full parser set.

Run with::

    python examples/fault_tolerant_campaign.py
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import cost_matrix_for_documents, plan_campaign_assignment
from repro.documents.corpus import CorpusConfig, build_corpus
from repro.hpc.campaign import CampaignConfig, ParsingCampaign
from repro.hpc.faults import FaultModel, RetryPolicy
from repro.parsers.registry import default_registry
from repro.utils.tables import Table


def run_campaigns() -> Table:
    """Compare a clean campaign to two fault-injected ones."""
    registry = default_registry()
    parser = registry.get("pymupdf")
    scenarios = {
        "fault-free": None,
        "transient failures (15%)": FaultModel(transient_failure_rate=0.15, seed=5),
        "corrupted (5%) + stragglers (10%)": FaultModel(
            corrupted_document_rate=0.05,
            straggler_rate=0.10,
            straggler_multiplier=5.0,
            seed=5,
        ),
    }
    table = Table(
        title="Campaign resilience (pymupdf, 8 nodes, 2400 documents)",
        columns=["scenario", "docs/s", "completion", "retries", "quarantined"],
    )
    for label, model in scenarios.items():
        config = CampaignConfig(n_nodes=8, fault_model=model, retry=RetryPolicy(max_attempts=4))
        result = ParsingCampaign(config).run_parser(parser, n_documents=2400)
        table.add_row(
            {
                "scenario": label,
                "docs/s": round(result.throughput_docs_per_s, 1),
                "completion": f"{result.completion_rate:.1%}",
                "retries": result.attempts_retried,
                "quarantined": result.documents_failed,
            }
        )
    return table


def plan_assignment() -> None:
    """Plan a budgeted multi-parser assignment for a small document batch."""
    registry = default_registry()
    corpus = build_corpus(CorpusConfig(n_documents=60, seed=23))
    documents = list(corpus)
    costs, names = cost_matrix_for_documents(documents, registry)

    # Stand-in for CLS III predictions: recognition parsers are predicted to do
    # better on scanned/degraded documents, extraction on clean born-digital ones.
    rng = np.random.default_rng(11)
    predicted = rng.uniform(0.35, 0.55, size=costs.shape)
    for i, document in enumerate(documents):
        clean_text_layer = document.text_layer.quality.value in ("clean", "noisy")
        for j, name in enumerate(names):
            if name in ("pymupdf", "pypdf") and clean_text_layer:
                predicted[i, j] += 0.3
            if name in ("nougat", "marker", "tesseract") and not clean_text_layer:
                predicted[i, j] += 0.25

    budget = 1.5 * costs[:, names.index("pymupdf")].sum()
    plan = plan_campaign_assignment(documents, predicted, registry, budget_seconds=budget)
    print(f"assignment plan under a budget of {budget:.1f} compute-seconds:")
    for parser, fraction in plan.fraction_by_parser().items():
        print(f"  {parser:>10}: {fraction:6.1%} of documents")
    print(f"  total predicted accuracy: {plan.total_accuracy:.1f}, "
          f"cost {plan.total_cost:.1f}s (feasible: {plan.feasible})")


def main() -> None:
    print(run_campaigns().to_text())
    print()
    plan_assignment()


if __name__ == "__main__":
    main()
