"""Assemble an LLM-training dataset from a parsed corpus and compare goodput.

The end goal of the paper is a high-quality, large-scale text dataset for LLM
training.  This example runs the full output stage of a campaign:

1. build a corpus and train the AdaParse (FT) engine,
2. parse the held-out split with three strategies — PyMuPDF everywhere,
   Nougat everywhere, and AdaParse routing,
3. push each strategy's output through quality filtering and near-duplicate
   detection, write JSONL shards with a manifest, and
4. compare token yield and goodput (accepted tokens per node-hour).

Run with::

    python examples/dataset_assembly.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core.training import AdaParseTrainer, TrainerSettings
from repro.datasets.assembly import DatasetBuildConfig, DatasetBuilder
from repro.datasets.tokens import goodput_table
from repro.documents.corpus import CorpusConfig, benchmark_splits, build_corpus
from repro.parsers.registry import default_registry
from repro.utils.timer import WallTimer


def main() -> None:
    timer = WallTimer()

    with timer.section("build corpus"):
        corpus = build_corpus(CorpusConfig(n_documents=150, seed=17))
        splits = benchmark_splits(corpus)

    registry = default_registry()
    with timer.section("train AdaParse (FT)"):
        trainer = AdaParseTrainer(registry, TrainerSettings(pretrain=False))
        engine = trainer.train_ft(splits["train"])

    output_root = Path(tempfile.mkdtemp(prefix="adaparse-dataset-"))
    strategies = {
        "pymupdf": registry.get("pymupdf"),
        "nougat": registry.get("nougat"),
        "adaparse_ft": engine,
    }

    reports = {}
    with timer.section("assemble datasets"):
        for name, parser in strategies.items():
            builder = DatasetBuilder(
                parser,
                DatasetBuildConfig(
                    output_dir=str(output_root / name),
                    quality_threshold=0.35,
                    min_tokens=20,
                ),
            )
            reports[name] = builder.build(splits["test"])

    print()
    for name, report in reports.items():
        summary = report.summary()
        print(
            f"{name:>12}: {summary['n_documents']} documents → "
            f"{summary['n_after_filters']} after filters → "
            f"{summary['n_after_dedup']} in the dataset "
            f"(rejections: {summary['rejections_by_filter']})"
        )
    print()
    print(goodput_table({name: r.token_account for name, r in reports.items()}).to_text(precision=1))
    print()
    print(f"JSONL shards and manifests written under {output_root}")
    print()
    print(timer.summary())


if __name__ == "__main__":
    main()
