"""Figure 1 walkthrough: the characteristic failure modes of PDF parsers.

Applies each named failure mode to the same ground-truth passage and shows the
damaged text next to the original, together with the BLEU and character
accuracy it would cost — the reason a single fixed parser cannot be trusted
for every document.

Run with::

    python examples/failure_modes.py
"""

from __future__ import annotations

import numpy as np

from repro.documents.corpus import CorpusConfig, build_document
from repro.metrics.bleu import bleu_score
from repro.metrics.car import page_character_accuracy
from repro.parsers import failure_modes
from repro.parsers.registry import default_registry


def show(label: str, original: str, damaged: str) -> None:
    print(f"--- {label} ---")
    print("original :", original[:160])
    print("damaged  :", damaged[:160])
    print(
        f"BLEU = {bleu_score(damaged, original):.3f}   "
        f"CAR = {page_character_accuracy(original, damaged):.3f}"
    )
    print()


def main() -> None:
    rng = np.random.default_rng(42)
    document = build_document(3, CorpusConfig(n_documents=4, seed=11, min_pages=4, max_pages=6))
    passage = document.pages[1].ground_truth_text()

    print("Failure modes of PDF parsers (Figure 1 of the paper)\n")
    for mode in failure_modes.catalog():
        damaged = mode.apply(passage, rng)
        show(mode.label, passage, damaged)

    # (g) the most severe failure: dropping a whole page.
    pages = document.ground_truth_pages()
    dropped = failure_modes.page_drop(pages, rng, drop_probability=0.4)
    n_dropped = sum(1 for p in dropped if not p)
    print(f"--- (g) document page dropped ---\n{n_dropped} of {len(pages)} pages lost\n")

    # And the punchline: even the strongest parser exhibits mode (g).
    nougat = default_registry().get("nougat")
    result = nougat.parse(document)
    empty_pages = sum(1 for p in result.page_texts if not p.strip())
    print(f"Nougat (the highest-quality parser) dropped {empty_pages} page(s) of this document.")


if __name__ == "__main__":
    main()
