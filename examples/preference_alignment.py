"""Preference study and DPO alignment walkthrough (Sections 6.3, 7.1, Appendix A/B).

Runs the simulated expert-preference study, reports the paper's headline
statistics (win rates, decisiveness, consensus, BLEU–preference correlation),
then trains the Transformer selector with and without DPO post-training and
compares how often each picks the truly-best parser.

Run with::

    python examples/preference_alignment.py
"""

from __future__ import annotations

import copy

import numpy as np

from repro.documents.corpus import CorpusConfig, benchmark_splits, build_corpus
from repro.ml.datasets import build_quality_dataset
from repro.ml.dpo import DPOConfig, DPOTrainer
from repro.ml.pretrain import PretrainConfig, pretrain_encoder_variant
from repro.ml.quality_model import FineTuneConfig, ParserQualityPredictor
from repro.ml.transformer import TransformerConfig, TransformerEncoder
from repro.parsers.registry import default_registry
from repro.preferences.dataset import build_preference_dataset
from repro.preferences.study import StudyConfig


def main() -> None:
    registry = default_registry()
    corpus = build_corpus(CorpusConfig(n_documents=100, seed=15))
    splits = benchmark_splits(corpus)

    # --- 1. The preference study -------------------------------------- #
    preferences = build_preference_dataset(
        splits["train"], registry, StudyConfig(n_pages=60, comparisons_per_page=4, seed=3)
    )
    study = preferences.study_result
    assert study is not None
    print("Preference study (simulated panel of 23 scientists)")
    for key, value in study.summary().items():
        print(f"  {key}: {value}")
    print(f"  split sizes: {preferences.split_sizes()}")
    print()

    # --- 2. Supervised selector --------------------------------------- #
    dataset = build_quality_dataset(splits["train"], registry, label_pages=3)
    test_dataset = build_quality_dataset(splits["test"], registry, label_pages=3)
    encoder = TransformerEncoder(
        TransformerConfig(vocab_size=2048, max_length=96, d_model=48, n_heads=4, n_layers=2,
                          d_ff=96, lora_rank=4),
        name="alignment-example",
    )
    pretrain_encoder_variant(encoder, "scientific", PretrainConfig(n_sentences=400, n_epochs=1))
    supervised = ParserQualityPredictor(
        dataset.parser_names, backend="transformer", encoder=encoder,
        finetune_config=FineTuneConfig(n_epochs=5, lora_only=False),
    )
    supervised.fit(dataset.texts, dataset.targets)

    # --- 3. DPO post-training ------------------------------------------ #
    aligned = copy.deepcopy(supervised)
    dpo = DPOTrainer(aligned.encoder, DPOConfig(n_epochs=3))
    dpo.train(preferences.train)
    aligned.fit(dataset.texts, dataset.targets, learning_rate=5e-4, n_epochs=2)

    # --- 4. Compare ------------------------------------------------------ #
    for label, predictor in (("SciBERT (supervised only)", supervised), ("SciBERT + DPO", aligned)):
        accuracy = predictor.selection_accuracy(test_dataset.texts, test_dataset.targets)
        r2 = predictor.r2_scores(test_dataset.texts, test_dataset.targets)
        chosen = predictor.predict_best_parser(test_dataset.texts)
        chosen_bleu = np.mean(
            [test_dataset.targets[i, test_dataset.parser_names.index(p)] for i, p in enumerate(chosen)]
        )
        print(f"{label}")
        print(f"  selection accuracy (picks the BLEU-maximal parser): {accuracy:.3f}")
        print(f"  mean BLEU of the selected parser:                   {chosen_bleu:.3f}")
        print(f"  R² (pymupdf): {r2.get('pymupdf', 0.0):.3f}   R² (nougat): {r2.get('nougat', 0.0):.3f}")
        print()
    print(
        "DPO pref-pair accuracy (preferred text scored above rejected): "
        f"{dpo.preference_accuracy(preferences.test):.3f}"
    )


if __name__ == "__main__":
    main()
