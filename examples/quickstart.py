"""Quickstart: build a corpus, train AdaParse, and run the parsing pipeline.

This is the 5-minute tour of the library:

1. generate a synthetic scientific corpus (the stand-in for a PDF collection),
2. train the AdaParse (FT) engine on a training split,
3. run the held-out split through the unified :class:`repro.pipeline.ParsePipeline`
   — a frozen ``ParseRequest`` in, a ``ParseReport`` (results + routing
   telemetry + throughput) out,
4. run the same request on two execution backends (serial vs thread) and
   diff the reports: identical parses, different ``execution`` telemetry,
5. replay the split against the content-addressed parse cache: the cold
   pass pays for parsing once, the warm pass serves every document from
   the cache (byte-identical results, ``report.cache`` tells the story),
6. print the paper-style quality table next to the routing statistics.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.training import AdaParseTrainer, TrainerSettings
from repro.documents.corpus import CorpusConfig, benchmark_splits, build_corpus
from repro.evaluation.harness import EvaluationHarness, HarnessConfig
from repro.pipeline import ParsePipeline, request_for_documents
from repro.utils.timer import WallTimer


def main() -> None:
    timer = WallTimer()

    # 1. A small corpus: 120 synthetic scientific documents across domains,
    #    publishers, text-layer qualities and scan qualities.
    with timer.section("build corpus"):
        corpus = build_corpus(CorpusConfig(n_documents=120, seed=7))
        splits = benchmark_splits(corpus)
    print("corpus:", corpus.described())
    print({name: len(split) for name, split in splits.items()})

    # 2. Train the fastText-based engine variant on the training split.  The
    #    trainer labels the split by running every parser once and scoring it.
    pipeline = ParsePipeline()
    with timer.section("train AdaParse (FT)"):
        trainer = AdaParseTrainer(pipeline.registry, TrainerSettings(pretrain=False))
        engine = trainer.train_ft(splits["train"])
        pipeline.engines[engine.name] = engine

    # 3. Evaluate the engine next to its constituent parsers on the test
    #    split.  The harness runs every parser through the shared pipeline
    #    and collects the engine's routing telemetry as a return value.
    with timer.section("evaluate"):
        harness = EvaluationHarness(HarnessConfig(), pipeline=pipeline)
        parsers = list(pipeline.registry) + [engine]
        report = harness.evaluate(splits["test"], parsers)

    # 4. The pipeline facade directly: replay the split at a doubled routing
    #    budget without retraining or mutating the engine (α is a per-request
    #    override).
    with timer.section("parse via pipeline (2α)"):
        request = request_for_documents(
            engine.name, list(splits["test"]),
            alpha=2 * engine.config.alpha, batch_size=64,
            backend="thread", backend_options={"n_jobs": 2},
        )
        doubled = pipeline.run(request)

    # 4b. Execution backends: the same request on two backends.  Only the
    #     execution block differs — the parses (and routing decisions) are
    #     identical, which is the parity guarantee backends are held to.
    with timer.section("same request, serial vs thread backend"):
        base = request_for_documents(
            "pymupdf", list(splits["test"]), batch_size=16, backend="serial"
        )
        on_serial = pipeline.run(base)
        on_thread = pipeline.run(
            replace(base, backend="thread", backend_options={"n_jobs": 4})
        )
    assert [r.text for r in on_serial.results] == [r.text for r in on_thread.results]
    report_diff = {
        name: (
            getattr(on_serial.execution, name),
            getattr(on_thread.execution, name),
        )
        for name in ("backend", "workers", "in_flight_high_water")
    }

    # 5. Warm vs cold: the same documents again, now through the parse
    #    cache.  The cold pass parses and stores; the warm pass is pure
    #    cache hits — identical output without touching a parser.
    docs = list(splits["test"])
    with timer.section("cold pass (cache miss + store)"):
        cold = pipeline.run(request_for_documents("pymupdf", docs, cache="readwrite"))
    with timer.section("warm pass (cache hits)"):
        warm = pipeline.run(request_for_documents("pymupdf", docs, cache="readwrite"))
    assert warm.cache.hits == len(docs)
    assert [r.page_texts for r in warm.results] == [r.page_texts for r in cold.results]

    # 6. Report.
    routing = report.routing_summary(engine.name)
    print()
    print(report.to_table("Quickstart: accuracy on the held-out split (all values %)").to_text())
    print()
    print("routing decisions:", routing.counts_by_stage())
    print(f"fraction routed to {engine.config.high_quality_parser}: "
          f"{routing.fraction_routed():.3f} (budget α = {engine.config.alpha})")
    print(f"at a doubled budget (α = {request.alpha}): "
          f"{doubled.fraction_routed():.3f} routed, "
          f"{doubled.throughput_docs_per_second:.0f} docs/s")
    print("backend diff (serial vs thread), identical parses:", report_diff)
    print(f"cache: cold {cold.cache.misses} misses / warm {warm.cache.hits} hits "
          f"({warm.throughput_docs_per_second:.0f} docs/s warm vs "
          f"{cold.throughput_docs_per_second:.0f} cold, "
          f"{warm.cache.time_saved_seconds:.3f}s of parsing saved)")
    print()
    print(timer.summary())


if __name__ == "__main__":
    main()
