"""Quickstart: build a corpus, train AdaParse, and compare it to its parsers.

This is the 5-minute tour of the library:

1. generate a synthetic scientific corpus (the stand-in for a PDF collection),
2. train the AdaParse (FT) engine on a training split,
3. parse the held-out split with AdaParse and with the individual parsers,
4. print the paper-style quality table and the routing statistics.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.training import AdaParseTrainer, TrainerSettings
from repro.documents.corpus import CorpusConfig, benchmark_splits, build_corpus
from repro.evaluation.harness import EvaluationHarness, HarnessConfig
from repro.parsers.registry import default_registry
from repro.utils.timer import WallTimer


def main() -> None:
    timer = WallTimer()

    # 1. A small corpus: 120 synthetic scientific documents across domains,
    #    publishers, text-layer qualities and scan qualities.
    with timer.section("build corpus"):
        corpus = build_corpus(CorpusConfig(n_documents=120, seed=7))
        splits = benchmark_splits(corpus)
    print("corpus:", corpus.described())
    print({name: len(split) for name, split in splits.items()})

    # 2. Train the fastText-based engine variant on the training split.  The
    #    trainer labels the split by running every parser once and scoring it.
    registry = default_registry()
    with timer.section("train AdaParse (FT)"):
        trainer = AdaParseTrainer(registry, TrainerSettings(pretrain=False))
        engine = trainer.train_ft(splits["train"])

    # 3. Evaluate the engine next to its constituent parsers on the test split.
    with timer.section("evaluate"):
        harness = EvaluationHarness(HarnessConfig())
        parsers = list(registry) + [engine]
        report = harness.evaluate(splits["test"], parsers)

    # 4. Report.
    print()
    print(report.to_table("Quickstart: accuracy on the held-out split (all values %)").to_text())
    print()
    print("routing decisions:", engine.last_summary.counts_by_stage())
    print(f"fraction routed to {engine.config.high_quality_parser}: "
          f"{engine.last_summary.fraction_routed():.3f} (budget α = {engine.config.alpha})")
    print()
    print(timer.summary())


if __name__ == "__main__":
    main()
