"""The gateway daemon: many remote clients, one shared :class:`ParseService`.

:class:`GatewayServer` is the network submission frontend the ROADMAP's
millions-of-users surface asks for.  It listens on a TCP port, speaks
:mod:`repro.gateway.protocol`, and multiplexes every authenticated
client's :class:`~repro.pipeline.request.ParseRequest` onto **one**
:class:`~repro.serve.ParseService` — which is where the serving stack's
guarantees compose for free: cross-request single-flight on the shared
cache (two clients submitting overlapping corpora parse each document
exactly once), fair-share admission keyed by the *authenticated* client
id, and one shared execution backend (which may itself be
``backend="remote"`` over a worker cluster — submission tier and
execution tier stack).

On top of the raw transport the gateway enforces the production
concerns the in-process service never needed:

* **auth** — bearer tokens resolve to stable client ids and quotas
  (:mod:`repro.gateway.auth`); the client id is what fair-share slots
  are split by, so one tenant cannot starve another;
* **backpressure** — when the service's ``max_active`` plus the
  gateway's queue depth are exhausted, submissions get an immediate
  429-style ``rejected`` reply with a ``retry_after`` hint instead of
  unbounded queueing; per-client rate limits (token bucket) and active
  -ticket caps reject the same way;
* **size limits** — a ``submit`` frame over the client's byte quota is
  refused without tearing the connection down;
* **observability** — a ``stats`` message reports per-client
  active/queued/rejected counts, bytes in/out, and the event-backlog
  high-water mark.

Event streams survive disconnects: a dropped connection does not cancel
its tickets, and a reconnecting client resumes any of its tickets by id
with a gapless replay from the last sequence number it saw.
"""

from __future__ import annotations

import socket
import threading
from typing import Any

from repro.gateway import protocol
from repro.gateway.auth import AuthError, AuthRegistry, ClientQuota, TokenBucket
from repro.gateway.protocol import MessageChannel, ProtocolError
from repro.obs import metrics as _metrics
from repro.obs import profiling as _profiling
from repro.obs import tracing as _tracing
from repro.obs.logging import get_logger, log_event
from repro.obs.tracing import TraceContext
from repro.serve.service import ParseService, ParseTicket, ServiceError

#: Thread-name prefix of gateway-owned threads (accept/reader/streamers).
GATEWAY_THREAD_PREFIX = "repro-gateway"

_LOG = get_logger("gateway")

_GW_SUBMITTED = _metrics.counter(
    "repro_gateway_submitted_total", "Submissions admitted by the gateway."
)
_GW_REJECTED = _metrics.counter(
    "repro_gateway_rejected_total",
    "Submissions refused by the gateway, by rejection reason.",
    ("reason",),
)


class _TicketRecord:
    """One submitted ticket and the identity that owns it."""

    __slots__ = ("ticket", "client_id", "trace_id")

    def __init__(self, ticket: ParseTicket, client_id: str) -> None:
        self.ticket = ticket
        self.client_id = client_id
        self.trace_id = ticket.trace_id


class GatewayServer:
    """Serve remote parse submissions over TCP (see the module docstring).

    Parameters
    ----------
    service:
        The shared :class:`~repro.serve.ParseService` every admitted
        request runs on.  Its lifecycle stays with the caller (close the
        service after stopping the gateway).
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    auth:
        Token registry and quotas; the default allows anonymous clients
        under :class:`~repro.gateway.auth.ClientQuota` defaults.
    max_queue_depth:
        Tickets allowed to *wait* beyond the service's ``max_active``
        before submissions are rejected ``saturated``.
    retry_after:
        The backoff hint (seconds) attached to ``saturated`` and
        ``quota_exceeded`` rejections.
    finished_retention:
        Terminal tickets kept resumable/fetchable before the oldest are
        evicted (bounds gateway memory under sustained traffic).
    """

    def __init__(
        self,
        service: ParseService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        auth: AuthRegistry | None = None,
        max_queue_depth: int = 16,
        retry_after: float = 1.0,
        finished_retention: int = 256,
    ) -> None:
        if max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        self.service = service
        self.auth = auth or AuthRegistry()
        self.max_queue_depth = max_queue_depth
        self.retry_after = retry_after
        self.finished_retention = finished_retention
        self._host = host
        self._requested_port = port
        self._listener: socket.socket | None = None
        self._bound_port: int | None = None
        self._accept_thread: threading.Thread | None = None
        self._connections: list[_ClientConnection] = []
        self._stopped = threading.Event()
        self._started = False

        self._lock = threading.Lock()
        #: Serializes the admission decision (quota/capacity checks →
        #: submit → record insertion) so concurrent submits on separate
        #: connections cannot all pass the same snapshot and over-admit.
        #: Always acquired before ``_lock``, never the other way around.
        self._admission_lock = threading.Lock()
        #: ticket id → record, insertion-ordered (retention evicts oldest
        #: terminal records first).
        self._records: dict[str, _TicketRecord] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self._submitted_by_client: dict[str, int] = {}
        self._rejected_by_client: dict[str, int] = {}
        self._rejected_by_reason: dict[str, int] = {}
        self._backlog_high_water = 0
        #: Byte counters of connections that already closed; live
        #: connections are summed on demand.
        self._retired_bytes_in = 0
        self._retired_bytes_out = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def port(self) -> int:
        if self._bound_port is None:
            raise RuntimeError("gateway is not started")
        return self._bound_port

    @property
    def address(self) -> str:
        return f"{self._host}:{self.port}"

    def start(self) -> "GatewayServer":
        """Bind and begin accepting client connections."""
        if self._started:
            raise RuntimeError("gateway already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._requested_port))
        listener.listen(128)
        self._listener = listener
        self._bound_port = listener.getsockname()[1]
        self._started = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"{GATEWAY_THREAD_PREFIX}-accept-{self.port}",
            daemon=True,
        )
        self._accept_thread.start()
        log_event(_LOG, "info", "listening", host=self._host, port=self.port)
        return self

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopped.is_set():
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            connection = _ClientConnection(self, MessageChannel(sock))
            with self._lock:
                if self._stopped.is_set():
                    connection.channel.close()
                    return
                self._connections.append(connection)
            connection.start()

    def serve_forever(self) -> None:
        """Block until :meth:`stop` (the CLI daemon mode)."""
        if not self._started:
            self.start()
        self._stopped.wait()

    def stop(self, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Stop accepting; ``drain`` waits for open tickets to settle.

        The shared service stays with its owner: stopping the gateway
        never closes the service or its backend.
        """
        if not self._started or self._stopped.is_set():
            self._stopped.set()
            return
        self._stopped.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if drain:
            for record in self._open_records():
                try:
                    record.ticket.result(timeout=timeout)
                except Exception:
                    pass  # failed/cancelled tickets are settled too
        with self._lock:
            connections = list(self._connections)
        for connection in connections:
            connection.say_bye_and_close()
        log_event(_LOG, "info", "stopping", drained=drain)

    def __enter__(self) -> "GatewayServer":
        return self.start() if not self._started else self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    def _open_records(self) -> list[_TicketRecord]:
        with self._lock:
            records = list(self._records.values())
        return [r for r in records if not r.ticket.state.terminal]

    def _bucket_for(self, client_id: str, quota: ClientQuota) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(client_id)
            if bucket is None:
                bucket = TokenBucket(quota.rate_per_second, quota.burst)
                self._buckets[client_id] = bucket
            return bucket

    def _reject(
        self, client_id: str, reason: str, retry_after: float | None, detail: str = ""
    ) -> dict[str, Any]:
        with self._lock:
            self._rejected_by_client[client_id] = (
                self._rejected_by_client.get(client_id, 0) + 1
            )
            self._rejected_by_reason[reason] = (
                self._rejected_by_reason.get(reason, 0) + 1
            )
        _GW_REJECTED.inc(reason=reason)
        log_event(
            _LOG, "warning", "submit_rejected",
            client=client_id, reason=reason, detail=detail,
        )
        return protocol.rejected_message(reason, retry_after, detail)

    def _admit(
        self,
        connection: "_ClientConnection",
        message: dict[str, Any],
        frame_bytes: int,
    ) -> tuple[dict[str, Any], _TicketRecord | None]:
        """Decide one ``submit``: a reply message plus the record if admitted.

        The whole decision runs under the submission's trace: the client's
        ``trace`` field (when sent) is adopted as the root, otherwise a
        fresh trace starts here — either way ``service.submit`` inherits
        it, so the gateway span is the parent of everything downstream.
        """
        if not _tracing.enabled():
            return self._admit_inner(connection, message, frame_bytes)
        root = TraceContext.from_wire(message.get("trace")) or TraceContext.new()
        with _tracing.activate(root):
            with _tracing.span(
                "gateway.submit",
                attributes={"client": connection.client_id},
            ):
                return self._admit_inner(connection, message, frame_bytes)

    def _admit_inner(
        self,
        connection: "_ClientConnection",
        message: dict[str, Any],
        frame_bytes: int,
    ) -> tuple[dict[str, Any], _TicketRecord | None]:
        client_id = connection.client_id
        quota = connection.quota
        if frame_bytes > quota.max_request_bytes:
            return (
                self._reject(
                    client_id,
                    protocol.REJECT_TOO_LARGE,
                    None,
                    f"submit frame is {frame_bytes} bytes; the quota is "
                    f"{quota.max_request_bytes}",
                ),
                None,
            )
        acquired, retry_after = self._bucket_for(client_id, quota).try_acquire()
        if not acquired:
            return (
                self._reject(
                    client_id, protocol.REJECT_RATE_LIMITED, retry_after
                ),
                None,
            )
        from repro.pipeline.request import ParseRequest

        try:
            request = ParseRequest.from_json_dict(dict(message.get("request") or {}))
        except Exception as exc:  # noqa: BLE001 - any bad payload is the client's
            return (
                self._reject(
                    client_id, protocol.REJECT_BAD_REQUEST, None, str(exc)
                ),
                None,
            )
        priority = int(message.get("priority", 0))
        # One lock spans the capacity snapshot, the submit, and the record
        # insertion: without it, N concurrent submits could all read the
        # same snapshot, all pass, and exceed the documented caps.
        # ``service.submit`` returns immediately (it only enqueues), so
        # serializing it here costs nothing.
        with self._admission_lock:
            open_records = self._open_records()
            open_for_client = sum(
                1 for r in open_records if r.client_id == client_id
            )
            if open_for_client >= quota.max_active:
                return (
                    self._reject(
                        client_id,
                        protocol.REJECT_QUOTA_EXCEEDED,
                        self.retry_after,
                        f"{open_for_client} tickets already open (quota "
                        f"{quota.max_active})",
                    ),
                    None,
                )
            capacity = self.service.config.max_active + self.max_queue_depth
            if len(open_records) >= capacity:
                return (
                    self._reject(
                        client_id,
                        protocol.REJECT_SATURATED,
                        self.retry_after,
                        f"{len(open_records)} tickets in flight "
                        f"(capacity {capacity})",
                    ),
                    None,
                )
            try:
                ticket = self.service.submit(
                    request, priority=priority, client=client_id
                )
            except ServiceError as exc:
                return (
                    {
                        "type": protocol.ERROR,
                        "code": "service_closed",
                        "message": str(exc),
                    },
                    None,
                )
            record = _TicketRecord(ticket, client_id)
            with self._lock:
                self._records[ticket.id] = record
                self._submitted_by_client[client_id] = (
                    self._submitted_by_client.get(client_id, 0) + 1
                )
        self._evict_finished()
        _GW_SUBMITTED.inc()
        log_event(
            _LOG, "info", "submit_admitted",
            client=client_id, ticket_id=ticket.id, priority=priority,
            trace_id=record.trace_id,
        )
        reply = {
            "type": protocol.SUBMITTED,
            "ticket_id": ticket.id,
            "state": ticket.state.value,
        }
        if record.trace_id is not None:
            reply["trace_id"] = record.trace_id
        return reply, record

    def _evict_finished(self) -> None:
        """Drop the oldest terminal records beyond the retention bound."""
        with self._lock:
            terminal = [
                ticket_id
                for ticket_id, record in self._records.items()
                if record.ticket.state.terminal
            ]
            for ticket_id in terminal[: max(0, len(terminal) - self.finished_retention)]:
                del self._records[ticket_id]

    def lookup(self, ticket_id: str) -> _TicketRecord | None:
        with self._lock:
            return self._records.get(ticket_id)

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #
    def _note_backlog(self, backlog: int) -> None:
        if backlog <= 0:
            return
        with self._lock:
            if backlog > self._backlog_high_water:
                self._backlog_high_water = backlog

    def _retire_connection(self, connection: "_ClientConnection") -> None:
        with self._lock:
            if connection in self._connections:
                self._connections.remove(connection)
            self._retired_bytes_in += connection.channel.bytes_received
            self._retired_bytes_out += connection.channel.bytes_sent

    def stats(self) -> dict[str, Any]:
        """The ``stats`` reply: gateway-level counters, JSON-trivial."""
        open_records = self._open_records()
        with self._lock:
            bytes_in = self._retired_bytes_in
            bytes_out = self._retired_bytes_out
            for connection in self._connections:
                bytes_in += connection.channel.bytes_received
                bytes_out += connection.channel.bytes_sent
            clients = sorted(
                set(self._submitted_by_client) | set(self._rejected_by_client)
            )
            per_client = {
                client_id: {
                    "submitted": self._submitted_by_client.get(client_id, 0),
                    "rejected": self._rejected_by_client.get(client_id, 0),
                    "active": sum(
                        1 for r in open_records if r.client_id == client_id
                    ),
                }
                for client_id in clients
            }
            payload = {
                "tickets_open": len(open_records),
                "tickets_retained": len(self._records),
                "submitted": sum(self._submitted_by_client.values()),
                "rejected": sum(self._rejected_by_client.values()),
                "rejected_by_reason": dict(sorted(self._rejected_by_reason.items())),
                "per_client": per_client,
                "bytes_in": bytes_in,
                "bytes_out": bytes_out,
                "event_backlog_high_water": self._backlog_high_water,
                "connections": len(self._connections),
            }
        service = self.service.describe()
        payload["service"] = {
            "active": service["active"],
            "queued": service["queued"],
            "max_active": service["max_active"],
            "max_queue_depth": self.max_queue_depth,
        }
        return payload

    def describe(self) -> dict[str, Any]:
        """Inventory for CLI logging (stats plus the bind address)."""
        description = self.stats()
        description["address"] = (
            self.address if self._bound_port is not None else None
        )
        return description


class _ClientConnection:
    """One remote client: handshake, sequential requests, event streamers."""

    def __init__(self, server: GatewayServer, channel: MessageChannel) -> None:
        self.server = server
        self.channel = channel
        self.client_id = ""
        self.quota = ClientQuota()
        self._closed = threading.Event()
        self._streamers: list[threading.Thread] = []

    def start(self) -> None:
        reader = threading.Thread(
            target=self._read_loop,
            name=f"{GATEWAY_THREAD_PREFIX}-reader",
            daemon=True,
        )
        reader.start()

    def say_bye_and_close(self) -> None:
        self._safe_send({"type": protocol.BYE, "reason": "gateway stopping"})
        self._close()

    def _close(self) -> None:
        self._closed.set()
        self.channel.close()

    # ------------------------------------------------------------------ #
    # Reader
    # ------------------------------------------------------------------ #
    def _read_loop(self) -> None:
        try:
            if not self._handshake():
                return
            while not self._closed.is_set():
                message = self.channel.recv()
                if message is None:
                    return
                frame_bytes = self.channel.last_frame_bytes
                if not self._dispatch(message, frame_bytes):
                    return
        except (ProtocolError, OSError, ValueError, TypeError) as exc:
            # TypeError covers valid-JSON-but-wrong-type fields (null or
            # array where an int belongs: protocol, after_seq, priority) —
            # the client still deserves an error reply, not a silent close.
            self._safe_send({"type": protocol.ERROR, "message": str(exc)})
        finally:
            self._close()
            self.server._retire_connection(self)

    def _handshake(self) -> bool:
        message = self.channel.recv()
        if message is None:
            return False
        if message.get("type") != protocol.HELLO:
            self._safe_send(
                {"type": protocol.ERROR, "message": "expected hello first"}
            )
            return False
        version = int(message.get("protocol", -1))
        if version != protocol.GATEWAY_PROTOCOL_VERSION:
            self._safe_send(
                {
                    "type": protocol.ERROR,
                    "message": f"protocol version mismatch: gateway speaks "
                    f"{protocol.GATEWAY_PROTOCOL_VERSION}, client sent {version}",
                }
            )
            return False
        try:
            authenticated = self.server.auth.authenticate(
                message.get("token"), message.get("client")
            )
        except AuthError as exc:
            self._safe_send(
                {"type": protocol.ERROR, "code": "unauthorized", "message": str(exc)}
            )
            return False
        self.client_id = authenticated.client_id
        self.quota = authenticated.quota
        log_event(_LOG, "debug", "client_connected", client=self.client_id)
        self.channel.send(
            {
                "type": protocol.HELLO_ACK,
                "protocol": protocol.GATEWAY_PROTOCOL_VERSION,
                "client_id": self.client_id,
                "quota": self.quota.to_json_dict(),
                "server": {
                    "max_active": self.server.service.config.max_active,
                    "max_queue_depth": self.server.max_queue_depth,
                },
            }
        )
        return True

    def _dispatch(self, message: dict[str, Any], frame_bytes: int) -> bool:
        """Handle one request; returns False to end the conversation."""
        kind = message.get("type")
        if kind == protocol.SUBMIT:
            reply, record = self.server._admit(self, message, frame_bytes)
            self.channel.send(reply)
            if record is not None:
                self._start_streamer(record, after_seq=-1)
        elif kind == protocol.RESUME:
            self._on_resume(message)
        elif kind == protocol.FETCH_RESULT:
            self._on_fetch_result(message)
        elif kind == protocol.STATS:
            self.channel.send({"type": protocol.STATS, **self.server.stats()})
        elif kind == protocol.TRACE:
            self._on_trace(message)
        elif kind == protocol.PROFILE:
            self._on_profile(message)
        elif kind == protocol.METRICS:
            self._on_metrics(message)
        elif kind == protocol.BYE:
            return False
        else:
            raise ProtocolError(f"unexpected message type {kind!r}")
        return True

    def _on_trace(self, message: dict[str, Any]) -> None:
        """Reply with the span list recorded for a ticket this client owns."""
        record = self._owned_record(message)
        if record is None:
            return
        trace_id = record.trace_id
        spans = (
            _tracing.default_recorder().spans(trace_id)
            if trace_id is not None
            else []
        )
        self.channel.send(
            {
                "type": protocol.TRACE_RESULT,
                "ticket_id": record.ticket.id,
                "trace_id": trace_id,
                "state": record.ticket.state.value,
                "spans": spans,
            }
        )

    def _on_profile(self, message: dict[str, Any]) -> None:
        """Reply with the sampled profile captured for a ticket this client owns."""
        record = self._owned_record(message)
        if record is None:
            return
        profile = _profiling.default_store().get(record.ticket.id)
        self.channel.send(
            {
                "type": protocol.PROFILE_RESULT,
                "ticket_id": record.ticket.id,
                "state": record.ticket.state.value,
                "profile": profile.to_dict() if profile is not None else None,
            }
        )

    def _on_metrics(self, message: dict[str, Any]) -> None:
        """Dump the gateway process's metrics registry (text or JSON)."""
        format = str(message.get("format", "json"))
        reply: dict[str, Any] = {"type": protocol.METRICS_RESULT, "format": format}
        if format == "text":
            reply["text"] = _metrics.render_text()
        else:
            reply["format"] = "json"
            reply["metrics"] = _metrics.snapshot()
        self.channel.send(reply)

    def _owned_record(self, message: dict[str, Any]) -> "_TicketRecord | None":
        """Resolve a ticket id to a record this client owns, else reply error."""
        ticket_id = str(message.get("ticket_id", ""))
        record = self.server.lookup(ticket_id)
        if record is None:
            self.channel.send(
                {
                    "type": protocol.ERROR,
                    "code": "unknown_ticket",
                    "ticket_id": ticket_id,
                    "message": f"no ticket {ticket_id!r} (expired or never submitted)",
                }
            )
            return None
        if record.client_id != self.client_id:
            self.channel.send(
                {
                    "type": protocol.ERROR,
                    "code": "forbidden",
                    "ticket_id": ticket_id,
                    "message": f"ticket {ticket_id!r} belongs to another client",
                }
            )
            return None
        return record

    def _on_resume(self, message: dict[str, Any]) -> None:
        record = self._owned_record(message)
        if record is None:
            return
        after_seq = int(message.get("after_seq", -1))
        self.channel.send(
            {
                "type": protocol.SUBMITTED,
                "ticket_id": record.ticket.id,
                "state": record.ticket.state.value,
                "resumed": True,
            }
        )
        self._start_streamer(record, after_seq=after_seq)

    def _on_fetch_result(self, message: dict[str, Any]) -> None:
        from repro.serve.service import TicketState

        record = self._owned_record(message)
        if record is None:
            return
        ticket = record.ticket
        ticket_id = ticket.id
        if not ticket.state.terminal:
            self.channel.send(
                {
                    "type": protocol.ERROR,
                    "code": "not_finished",
                    "ticket_id": ticket_id,
                    "message": f"ticket {ticket_id!r} is {ticket.state.value}",
                }
            )
            return
        if ticket.state is not TicketState.COMPLETED:
            self.channel.send(
                {
                    "type": protocol.ERROR,
                    "code": ticket.state.value,
                    "ticket_id": ticket_id,
                    "message": f"ticket {ticket_id!r} ended {ticket.state.value}",
                }
            )
            return
        report = ticket.result(timeout=0.001)
        self.channel.send(
            {
                "type": protocol.RESULT,
                "ticket_id": ticket_id,
                "report": report.to_json_dict(
                    include_text=bool(message.get("include_text", False))
                ),
            }
        )

    # ------------------------------------------------------------------ #
    # Event streaming
    # ------------------------------------------------------------------ #
    def _start_streamer(self, record: "_TicketRecord", after_seq: int) -> None:
        streamer = threading.Thread(
            target=self._stream_events,
            args=(record, after_seq),
            name=f"{GATEWAY_THREAD_PREFIX}-stream-{record.ticket.id}",
            daemon=True,
        )
        self._streamers.append(streamer)
        streamer.start()

    def _stream_events(self, record: "_TicketRecord", after_seq: int) -> None:
        ticket = record.ticket
        try:
            for event in ticket.events(after_seq=after_seq):
                # Backlog: events already emitted by the service but not
                # yet on the wire for this consumer.  The high-water mark
                # is the STATS signal that a slow client (or a flooded
                # event stream) is falling behind live progress.
                self.server._note_backlog(ticket.n_events - (event.seq + 1))
                self.channel.send(protocol.event_message(event.to_json_dict()))
        except (ProtocolError, OSError):
            # Connection died mid-stream.  The ticket keeps running; the
            # client reconnects and resumes from its last seen seq.
            return

    def _safe_send(self, message: dict[str, Any]) -> bool:
        try:
            self.channel.send(message)
            return True
        except (ProtocolError, OSError):
            return False
