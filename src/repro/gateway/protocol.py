"""The gateway wire protocol: submission and event streaming over TCP.

The gateway speaks the same length-prefixed NDJSON framing as the
cluster wire (shared via :mod:`repro.utils.wire`), but its vocabulary is
the *submission* surface: remote clients file
:class:`~repro.pipeline.request.ParseRequest` JSON and consume live
:class:`~repro.serve.events.ProgressEvent` streams, while parsing itself
stays behind one shared :class:`~repro.serve.ParseService`.

Message types
-------------
``hello`` / ``hello_ack``
    Version + auth handshake.  The client opens with ``hello`` (protocol
    version, optional auth token, optional requested client name); the
    gateway answers with the resolved client id and its quota, or with
    ``error`` and a connection close for a bad version or token.
``submit``
    One :class:`ParseRequest` as JSON plus an admission priority.  The
    gateway answers ``submitted`` (ticket id, queue position) and starts
    streaming the ticket's events on this connection — or ``rejected``.
``rejected``
    The 429 of this wire: admission refused *without* queueing.  Carries
    a machine-checkable ``reason`` (``saturated``, ``rate_limited``,
    ``quota_exceeded``, ``too_large``, ``bad_request``) and a
    ``retry_after`` hint in seconds where retrying can help.
``event``
    One ticket lifecycle event (``queued`` → ``started`` → ``batch``* →
    terminal), exactly the :meth:`ProgressEvent.to_json_dict` schema the
    in-process service emits — per-ticket ``seq`` is gapless, so clients
    detect missed events and resume without duplicates.
``resume``
    Reconnect-and-resume: re-attach to a ticket by id after a dropped
    connection, replaying events after ``after_seq``.  Tickets belong to
    the client id that submitted them; the gateway refuses to resume
    someone else's ticket.
``fetch_result`` / ``result``
    Retrieve a completed ticket's full :class:`ParseReport` JSON.
``stats``
    Gateway-level metrics: active/queued/rejected per client, bytes
    in/out, and the event-backlog high-water mark.  Sent as a request
    (no extra fields) and answered with the counters filled in.
``trace`` / ``trace_result``
    Distributed-tracing lookup: the client names a ticket id it owns and
    the gateway answers with that ticket's recorded span list (the
    :class:`repro.obs.SpanRecorder` schema) plus its trace id.  ``repro
    obs trace`` renders the reply as a span tree.
``profile`` / ``profile_result``
    Sampling-profiler lookup: the client names a ticket id it owns and
    the gateway answers with the collapsed-stack profile captured while
    that ticket ran (the :meth:`repro.obs.Profile.to_dict` schema) —
    empty when the gateway was not started with profiling enabled.
    ``repro obs profile`` renders the reply.  Like ``trace``, the RPC is
    capability-tolerant: older gateways answer with a protocol error.
``metrics`` / ``metrics_result``
    Dump the gateway process's metrics registry — ``format`` selects
    Prometheus text exposition (``"text"``) or the JSON snapshot
    (``"json"``).  This is how ``repro obs metrics --host …`` scrapes a
    live gateway.
``error``
    A failed request/reply exchange (unknown ticket, unauthorized
    resume, unfinished result) or a fatal connection-level failure.
``bye``
    Clean goodbye in either direction.  Closing the connection does
    **not** cancel the client's running tickets — that is what makes
    reconnect-and-resume useful.
"""

from __future__ import annotations

from typing import Any, Mapping

# Shared framing (length-prefixed NDJSON, oversized-frame refusal, byte
# counters) — one implementation for the cluster and gateway wires.
from repro.utils.wire import (  # noqa: F401  (re-exports)
    MAX_MESSAGE_BYTES,
    MessageChannel,
    MessageTooLarge,
    ProtocolError,
    encode_message,
)

#: Gateway wire version.  Bump on any incompatible message change; both
#: sides refuse to talk across versions (the handshake checks it).
GATEWAY_PROTOCOL_VERSION = 1

# ---------------------------------------------------------------------- #
# Message type names
# ---------------------------------------------------------------------- #
HELLO = "hello"
HELLO_ACK = "hello_ack"
SUBMIT = "submit"
SUBMITTED = "submitted"
REJECTED = "rejected"
EVENT = "event"
RESUME = "resume"
FETCH_RESULT = "fetch_result"
RESULT = "result"
STATS = "stats"
TRACE = "trace"
TRACE_RESULT = "trace_result"
PROFILE = "profile"
PROFILE_RESULT = "profile_result"
METRICS = "metrics"
METRICS_RESULT = "metrics_result"
ERROR = "error"
BYE = "bye"

# ---------------------------------------------------------------------- #
# Rejection reasons (the ``rejected`` message's ``reason`` field)
# ---------------------------------------------------------------------- #
REJECT_SATURATED = "saturated"  # max_active + queue depth exhausted
REJECT_RATE_LIMITED = "rate_limited"  # per-client request rate exceeded
REJECT_QUOTA_EXCEEDED = "quota_exceeded"  # per-client active-ticket cap hit
REJECT_TOO_LARGE = "too_large"  # request frame over the client's size quota
REJECT_BAD_REQUEST = "bad_request"  # unparseable / invalid ParseRequest


# ---------------------------------------------------------------------- #
# Message builders (keep both sides on one schema)
# ---------------------------------------------------------------------- #
def hello_message(
    token: str | None = None, client: str | None = None
) -> dict[str, Any]:
    message: dict[str, Any] = {
        "type": HELLO,
        "protocol": GATEWAY_PROTOCOL_VERSION,
    }
    if token is not None:
        message["token"] = token
    if client is not None:
        message["client"] = client
    return message


def submit_message(
    request_payload: Mapping[str, Any],
    priority: int = 0,
    trace: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """``trace`` optionally carries the submitter's :class:`TraceContext`
    as JSON (``trace_id``/``span_id``) so the gateway continues the
    caller's trace instead of starting its own.  The field is
    version-tolerant: old gateways simply ignore it."""
    message: dict[str, Any] = {
        "type": SUBMIT,
        "request": dict(request_payload),
        "priority": priority,
    }
    if trace is not None:
        message["trace"] = dict(trace)
    return message


def trace_message(ticket_id: str) -> dict[str, Any]:
    return {"type": TRACE, "ticket_id": ticket_id}


def profile_message(ticket_id: str) -> dict[str, Any]:
    """Fetch a ticket's collapsed-stack profile (capability-tolerant:
    servers predating the PROFILE RPC answer with a protocol error the
    client surfaces as a :class:`GatewayError`, like TRACE)."""
    return {"type": PROFILE, "ticket_id": ticket_id}


def metrics_message(format: str = "json") -> dict[str, Any]:
    return {"type": METRICS, "format": format}


def rejected_message(
    reason: str, retry_after: float | None = None, detail: str = ""
) -> dict[str, Any]:
    message: dict[str, Any] = {"type": REJECTED, "reason": reason}
    if retry_after is not None:
        message["retry_after"] = round(float(retry_after), 4)
    if detail:
        message["detail"] = detail
    return message


def event_message(event_payload: Mapping[str, Any]) -> dict[str, Any]:
    return {
        "type": EVENT,
        "ticket_id": event_payload.get("ticket_id"),
        "event": dict(event_payload),
    }


def resume_message(ticket_id: str, after_seq: int = -1) -> dict[str, Any]:
    return {"type": RESUME, "ticket_id": ticket_id, "after_seq": int(after_seq)}
