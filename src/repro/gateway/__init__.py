"""Networked submission frontend: many remote clients, one ParseService.

:class:`GatewayServer` listens on TCP, authenticates clients by bearer
token, and multiplexes their :class:`~repro.pipeline.request.ParseRequest`
submissions onto one shared :class:`~repro.serve.ParseService` — so
cross-client cache dedup, fair-share admission, and progress streaming
all hold *across processes and machines*.  :class:`GatewayClient` is the
SDK side: ``submit()``, live ``events()``, ``result()``, and
reconnect-and-resume by ticket id.

Example (server)
----------------
>>> from repro.serve import ParseService
>>> from repro.gateway import GatewayServer
>>> with ParseService() as service:
...     with GatewayServer(service, port=0) as gateway:
...         print(gateway.port)  # doctest: +SKIP

Example (client, possibly another machine)
------------------------------------------
>>> from repro.gateway import GatewayClient  # doctest: +SKIP
>>> with GatewayClient("127.0.0.1", 9100) as client:  # doctest: +SKIP
...     ticket = client.submit({"parser": "pymupdf", "source": "synthetic:8?seed=3"})
...     for event in ticket.events():
...         print(event.kind)
...     report = client.result(ticket)

The CLI front ends are ``repro gateway`` (the daemon) and
``repro submit --host/--port`` (remote submission).

Public names resolve lazily (PEP 562): importing :mod:`repro` must not
import this package, and importing this package must not open sockets.
"""

from __future__ import annotations

#: Public name → "module:attribute", resolved on first access.
_LAZY_EXPORTS: dict[str, str] = {
    "AuthError": "repro.gateway.auth:AuthError",
    "AuthRegistry": "repro.gateway.auth:AuthRegistry",
    "ClientQuota": "repro.gateway.auth:ClientQuota",
    "GATEWAY_PROTOCOL_VERSION": "repro.gateway.protocol:GATEWAY_PROTOCOL_VERSION",
    "GatewayClient": "repro.gateway.client:GatewayClient",
    "GatewayConnectionLost": "repro.gateway.client:GatewayConnectionLost",
    "GatewayError": "repro.gateway.client:GatewayError",
    "GatewayRejected": "repro.gateway.client:GatewayRejected",
    "GatewayServer": "repro.gateway.server:GatewayServer",
    "RemoteTicket": "repro.gateway.client:RemoteTicket",
    "TokenBucket": "repro.gateway.auth:TokenBucket",
}

__all__ = sorted(_LAZY_EXPORTS)


def __getattr__(name: str):
    """Resolve lazily exported public names (delegates to repro.utils.lazy)."""
    from repro.utils.lazy import resolve_lazy

    return resolve_lazy(__name__, globals(), _LAZY_EXPORTS, name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
