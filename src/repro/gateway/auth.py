"""Gateway authentication and per-client quotas.

The gateway's admission story has two halves: *who* a connection is
(:class:`AuthRegistry` maps bearer tokens to stable client ids — the
identity the service's :class:`~repro.serve.admission.FairShareAdmission`
shares slots by) and *how much* that identity may ask for
(:class:`ClientQuota`: concurrent tickets, request rate, request size).

Rate limiting is a classic token bucket (:class:`TokenBucket`): clients
may burst up to ``burst`` requests, then sustain ``rate_per_second``;
an exhausted bucket reports exactly how long until the next token — the
``retry_after`` hint the gateway's 429-style ``rejected`` reply carries.
The bucket takes an injectable clock so tests are deterministic.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable


class AuthError(RuntimeError):
    """A connection presented a missing, unknown, or disallowed token."""


@dataclass(frozen=True)
class ClientQuota:
    """What one authenticated client may ask of the gateway.

    Attributes
    ----------
    max_active:
        Non-terminal (queued or running) tickets the client may hold at
        once; further submissions are rejected ``quota_exceeded``.
    rate_per_second:
        Sustained submission rate; ``0`` disables rate limiting.
    burst:
        Submissions allowed in a burst before the sustained rate applies.
    max_request_bytes:
        Upper bound on one framed ``submit`` message; larger requests are
        rejected ``too_large`` (the frame is still read — the connection
        survives, only the request is refused).
    """

    max_active: int = 4
    rate_per_second: float = 0.0
    burst: int = 8
    max_request_bytes: int = 1024 * 1024

    def to_json_dict(self) -> dict[str, object]:
        return {
            "max_active": self.max_active,
            "rate_per_second": self.rate_per_second,
            "burst": self.burst,
            "max_request_bytes": self.max_request_bytes,
        }


class TokenBucket:
    """Thread-safe token bucket with a ``retry_after`` answer.

    ``try_acquire`` never blocks: it either spends one token, or reports
    how many seconds until one accrues (the client's backoff hint).
    """

    def __init__(
        self,
        rate_per_second: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate_per_second < 0:
            raise ValueError("rate_per_second must be >= 0")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = float(rate_per_second)
        self.burst = int(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def try_acquire(self) -> tuple[bool, float]:
        """Spend one token if available: ``(acquired, retry_after_seconds)``."""
        if self.rate == 0:
            return True, 0.0
        with self._lock:
            now = self._clock()
            self._tokens = min(
                float(self.burst), self._tokens + (now - self._updated) * self.rate
            )
            self._updated = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True, 0.0
            return False, (1.0 - self._tokens) / self.rate


@dataclass
class AuthenticatedClient:
    """The outcome of a successful handshake: identity plus quota."""

    client_id: str
    quota: ClientQuota


class AuthRegistry:
    """Token → (client id, quota) mapping with an optional anonymous lane.

    ``register`` installs named clients behind bearer tokens; when
    ``allow_anonymous`` is true, token-less hellos authenticate as the
    client name they request (or ``anon``) under ``default_quota`` — the
    mode the CLI daemon and tests run in unless tokens are configured.
    Anonymous and token lanes compose: a deployment can hand tight
    quotas to anonymous traffic and generous ones to known tokens — but
    the lanes cannot collide: an anonymous hello claiming a client id
    that is registered behind any token is refused, so ticket ownership
    and fair-share accounting for token-holders cannot be hijacked by
    an unauthenticated peer that merely names them.
    """

    def __init__(
        self,
        allow_anonymous: bool = True,
        default_quota: ClientQuota | None = None,
    ) -> None:
        self.allow_anonymous = allow_anonymous
        self.default_quota = default_quota or ClientQuota()
        self._by_token: dict[str, AuthenticatedClient] = {}
        self._registered_ids: set[str] = set()
        self._lock = threading.Lock()

    def register(
        self, token: str, client_id: str, quota: ClientQuota | None = None
    ) -> None:
        """Install one bearer token for ``client_id`` (idempotent per token)."""
        if not token:
            raise ValueError("token must be non-empty")
        if not client_id:
            raise ValueError("client_id must be non-empty")
        with self._lock:
            self._by_token[token] = AuthenticatedClient(
                client_id=client_id, quota=quota or self.default_quota
            )
            self._registered_ids.add(client_id)

    @property
    def n_tokens(self) -> int:
        with self._lock:
            return len(self._by_token)

    def authenticate(
        self, token: str | None, requested_client: str | None = None
    ) -> AuthenticatedClient:
        """Resolve a hello's credentials, or raise :class:`AuthError`.

        A token always wins over the requested client name (identity
        comes from the credential, not the claim — one client cannot
        impersonate another by naming it).  The anonymous lane enforces
        the same property from the other side: a token-less hello may
        not claim a client id that any token resolves to, so anonymous
        peers cannot reach a token-holder's tickets or pollute their
        quota and fair-share accounting.
        """
        if token:
            with self._lock:
                client = self._by_token.get(token)
            if client is None:
                raise AuthError("unknown auth token")
            return client
        if not self.allow_anonymous:
            raise AuthError("auth token required (anonymous access disabled)")
        client_id = requested_client or "anon"
        with self._lock:
            reserved = client_id in self._registered_ids
        if reserved:
            raise AuthError(
                f"client id {client_id!r} is registered to a token; "
                "present the token to authenticate as it"
            )
        return AuthenticatedClient(client_id=client_id, quota=self.default_quota)
