"""The gateway client SDK: submit, stream, resume — from another process.

:class:`GatewayClient` is the programmatic mirror of the in-process
:class:`~repro.serve.ParseService` surface, spoken over the gateway
wire: ``submit()`` returns a :class:`RemoteTicket`, ``ticket.events()``
iterates the live progress stream, ``result()`` fetches the finished
:class:`~repro.pipeline.report.ParseReport` JSON.  One background reader
thread demultiplexes the connection: ``event`` frames fan out to their
ticket's local buffer, everything else answers the single in-flight
request (requests/replies are strictly ordered per connection, so no
correlation ids are needed).

Failure semantics are explicit:

* an admission refusal raises :class:`GatewayRejected` with the
  machine-checkable ``reason`` and the server's ``retry_after`` hint;
* a dropped connection raises :class:`GatewayConnectionLost` from any
  blocked ``events()``/``wait()`` — but the server-side ticket keeps
  running, so a *new* client connects and calls
  ``resume(ticket_id, after_seq=ticket.last_seq)`` to pick the stream
  back up without duplicates (per-ticket ``seq`` is gapless).
"""

from __future__ import annotations

import queue
import socket
import threading
from typing import Any, Iterator, Mapping

from repro.gateway import protocol
from repro.gateway.protocol import MessageChannel, ProtocolError
from repro.obs import tracing as _tracing
from repro.serve.events import ProgressEvent


class GatewayError(RuntimeError):
    """A gateway request failed (error reply, timeout, or protocol fault)."""


class GatewayRejected(GatewayError):
    """Admission refused — the wire's 429.

    Attributes
    ----------
    reason:
        One of the ``REJECT_*`` constants in :mod:`repro.gateway.protocol`.
    retry_after:
        Server backoff hint in seconds, when retrying can help.
    """

    def __init__(
        self, reason: str, retry_after: float | None = None, detail: str = ""
    ) -> None:
        hint = f" (retry after {retry_after}s)" if retry_after is not None else ""
        super().__init__(f"submission rejected: {reason}{hint}"
                         + (f" — {detail}" if detail else ""))
        self.reason = reason
        self.retry_after = retry_after
        self.detail = detail


class GatewayConnectionLost(GatewayError):
    """The connection dropped mid-stream; resume by ticket id to continue."""


class RemoteTicket:
    """Client-side handle to one gateway ticket: a buffered event stream.

    The reader thread appends events as they arrive; ``events()`` replays
    the buffer then blocks for more, ending at the terminal event exactly
    like the in-process :meth:`ParseTicket.events`.
    """

    def __init__(self, ticket_id: str, trace_id: str | None = None) -> None:
        self.id = ticket_id
        #: Trace id the gateway assigned (``None`` against a gateway
        #: predating tracing); also present in every event payload.
        self.trace_id = trace_id
        self._cond = threading.Condition()
        self._events: list[ProgressEvent] = []
        self._lost = False

    # -- reader-thread side -------------------------------------------- #
    def _deliver(self, event: ProgressEvent) -> None:
        with self._cond:
            # Resume replays may overlap events already buffered locally;
            # seq makes the dedup exact.
            if self._events and event.seq <= self._events[-1].seq:
                return
            self._events.append(event)
            self._cond.notify_all()

    def _mark_lost(self) -> None:
        with self._cond:
            self._lost = True
            self._cond.notify_all()

    # -- consumer side -------------------------------------------------- #
    @property
    def last_seq(self) -> int:
        """Highest event seq seen so far (``-1`` before any event) — the
        value to hand ``resume(after_seq=...)`` after a reconnect."""
        with self._cond:
            return self._events[-1].seq if self._events else -1

    @property
    def terminal_event(self) -> ProgressEvent | None:
        with self._cond:
            if self._events and self._events[-1].terminal:
                return self._events[-1]
            return None

    @property
    def done(self) -> bool:
        return self.terminal_event is not None

    def events(self, timeout: float | None = None) -> Iterator[ProgressEvent]:
        """Yield events in order, ending at the terminal one.

        Raises :class:`GatewayConnectionLost` if the connection dies
        before the stream finishes, and :class:`TimeoutError` when no
        event arrives within ``timeout`` (per event, not per stream).
        """
        index = 0
        while True:
            with self._cond:
                while index >= len(self._events):
                    if self._lost:
                        raise GatewayConnectionLost(
                            f"connection lost while streaming ticket {self.id}"
                        )
                    if not self._cond.wait(timeout):
                        raise TimeoutError(
                            f"no event within {timeout}s for ticket {self.id}"
                        )
                event = self._events[index]
            index += 1
            yield event
            if event.terminal:
                return

    def wait(self, timeout: float | None = None) -> ProgressEvent:
        """Block until the ticket ends; return its terminal event."""
        deadline_left = timeout
        for event in self.events(timeout=deadline_left):
            if event.terminal:
                return event
        raise GatewayError(f"ticket {self.id} stream ended without a terminal event")


class GatewayClient:
    """One connection to a :class:`~repro.gateway.server.GatewayServer`.

    Usage::

        with GatewayClient("10.0.0.5", 9100, token="s3cret") as client:
            ticket = client.submit(request)
            for event in ticket.events():
                print(event.kind, event.payload)
            report = client.result(ticket)

    The client is thread-safe: many threads may submit and stream
    concurrently over the one connection (requests are serialized, event
    streams are demultiplexed by ticket id).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        token: str | None = None,
        client: str | None = None,
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.token = token
        self.requested_client = client
        self.timeout = timeout
        self.client_id = ""
        self.quota: dict[str, Any] = {}
        self._channel: MessageChannel | None = None
        self._reader: threading.Thread | None = None
        self._replies: "queue.Queue[dict[str, Any] | None]" = queue.Queue()
        self._rpc_lock = threading.Lock()
        #: True while one request awaits its reply.  The reader uses it to
        #: tell a reply apart from an unsolicited server frame (e.g. a
        #: connection-level ``error`` with no RPC in flight) — enqueueing
        #: the latter would misattribute it to the *next* request.
        self._rpc_pending = False
        self._pending_lock = threading.Lock()
        self._route_lock = threading.Lock()
        self._tickets: dict[str, RemoteTicket] = {}
        self._orphan_events: dict[str, list[ProgressEvent]] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    # Connection lifecycle
    # ------------------------------------------------------------------ #
    def connect(self) -> "GatewayClient":
        """Dial, handshake, and start the demultiplexing reader."""
        if self._channel is not None:
            return self
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # The connect timeout stays on the socket through the handshake —
        # a server that accepts the TCP connection but never answers the
        # hello must not hang connect() forever.  Only the established,
        # event-streaming connection goes blocking (below).
        channel = MessageChannel(sock)
        try:
            channel.send(protocol.hello_message(self.token, self.requested_client))
            reply = channel.recv()
        except TimeoutError:
            channel.close()
            raise GatewayError(
                f"no handshake reply from gateway within {self.timeout}s"
            ) from None
        if reply is None:
            channel.close()
            raise GatewayError("gateway closed the connection during handshake")
        if reply.get("type") != protocol.HELLO_ACK:
            channel.close()
            raise GatewayError(
                reply.get("message", f"handshake refused: {reply!r}")
            )
        self.client_id = str(reply.get("client_id", ""))
        self.quota = dict(reply.get("quota") or {})
        sock.settimeout(None)
        self._channel = channel
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-gateway-client-reader", daemon=True
        )
        self._reader.start()
        return self

    def close(self) -> None:
        """Say goodbye and drop the connection (tickets keep running)."""
        if self._closed:
            return
        self._closed = True
        if self._channel is not None:
            try:
                self._channel.send({"type": protocol.BYE})
            except (ProtocolError, OSError):
                pass
            self._channel.close()

    def __enter__(self) -> "GatewayClient":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Reader thread: demultiplex events vs request replies
    # ------------------------------------------------------------------ #
    def _read_loop(self) -> None:
        assert self._channel is not None
        try:
            while True:
                message = self._channel.recv()
                if message is None:
                    return
                kind = message.get("type")
                if kind == protocol.EVENT:
                    self._route_event(message)
                elif kind == protocol.BYE:
                    return
                else:
                    with self._pending_lock:
                        pending = self._rpc_pending
                    if pending:
                        self._replies.put(message)
                    # else: an unsolicited frame (connection-level error)
                    # with no request awaiting it — drop rather than hand
                    # it to the next unrelated _rpc() as its "reply".
        except (ProtocolError, OSError):
            return
        finally:
            self._on_connection_end()

    def _route_event(self, message: dict[str, Any]) -> None:
        event = ProgressEvent.from_json_dict(dict(message.get("event") or {}))
        with self._route_lock:
            ticket = self._tickets.get(event.ticket_id)
            if ticket is None:
                # The streamer can outrun submit()'s bookkeeping: hold
                # events until the ticket handle registers.
                self._orphan_events.setdefault(event.ticket_id, []).append(event)
                return
        ticket._deliver(event)

    def _register(self, ticket: RemoteTicket) -> RemoteTicket:
        with self._route_lock:
            existing = self._tickets.get(ticket.id)
            if existing is not None:
                return existing
            self._tickets[ticket.id] = ticket
            orphans = self._orphan_events.pop(ticket.id, [])
        for event in orphans:
            ticket._deliver(event)
        return ticket

    def _on_connection_end(self) -> None:
        with self._route_lock:
            tickets = list(self._tickets.values())
        for ticket in tickets:
            ticket._mark_lost()
        self._replies.put(None)  # unblock any in-flight request

    # ------------------------------------------------------------------ #
    # Requests
    # ------------------------------------------------------------------ #
    def _rpc(self, message: Mapping[str, Any]) -> dict[str, Any]:
        if self._channel is None:
            raise GatewayError("client is not connected (call connect())")
        with self._rpc_lock:
            with self._pending_lock:
                self._rpc_pending = True
            try:
                try:
                    self._channel.send(message)
                except (ProtocolError, OSError) as exc:
                    raise GatewayConnectionLost(str(exc)) from exc
                try:
                    reply = self._replies.get(timeout=self.timeout)
                except queue.Empty:
                    raise GatewayError(
                        f"no reply from gateway within {self.timeout}s"
                    ) from None
            finally:
                with self._pending_lock:
                    self._rpc_pending = False
        if reply is None:
            raise GatewayConnectionLost("connection lost awaiting a reply")
        return reply

    def submit(
        self,
        request: Mapping[str, Any] | Any,
        priority: int = 0,
    ) -> RemoteTicket:
        """Submit one request; returns the live :class:`RemoteTicket`.

        ``request`` is a :class:`~repro.pipeline.request.ParseRequest` or
        its JSON dict.  Raises :class:`GatewayRejected` on refusal.
        """
        payload = (
            request.to_json_dict()
            if hasattr(request, "to_json_dict")
            else dict(request)
        )
        # Propagate the caller's active trace (if any) so the gateway
        # continues it instead of minting a new trace id; old gateways
        # ignore the field.
        current = _tracing.current_trace()
        trace = current.to_json_dict() if current is not None else None
        reply = self._rpc(protocol.submit_message(payload, priority, trace=trace))
        return self._accept_ticket(reply)

    def resume(self, ticket_id: str, after_seq: int = -1) -> RemoteTicket:
        """Re-attach to a ticket after a reconnect, replaying events
        after ``after_seq`` (use the old handle's ``last_seq``)."""
        reply = self._rpc(protocol.resume_message(ticket_id, after_seq))
        return self._accept_ticket(reply)

    def _accept_ticket(self, reply: dict[str, Any]) -> RemoteTicket:
        kind = reply.get("type")
        if kind == protocol.SUBMITTED:
            trace_id = reply.get("trace_id")
            return self._register(
                RemoteTicket(
                    str(reply["ticket_id"]),
                    trace_id=str(trace_id) if trace_id is not None else None,
                )
            )
        if kind == protocol.REJECTED:
            raise GatewayRejected(
                str(reply.get("reason", "unknown")),
                reply.get("retry_after"),
                str(reply.get("detail", "")),
            )
        raise GatewayError(str(reply.get("message", f"unexpected reply: {reply!r}")))

    def result(
        self,
        ticket: RemoteTicket | str,
        timeout: float | None = None,
        include_text: bool = False,
    ) -> dict[str, Any]:
        """Wait for a ticket to finish and fetch its report JSON.

        Raises :class:`GatewayError` when the ticket failed or was
        cancelled (the terminal event's payload is in the message).
        """
        if isinstance(ticket, RemoteTicket):
            terminal = ticket.wait(timeout=timeout if timeout is not None else None)
            if terminal.kind != "completed":
                raise GatewayError(
                    f"ticket {ticket.id} ended {terminal.kind}: "
                    f"{terminal.payload.get('error', '')}"
                )
            ticket_id = ticket.id
        else:
            ticket_id = ticket
        reply = self._rpc(
            {
                "type": protocol.FETCH_RESULT,
                "ticket_id": ticket_id,
                "include_text": include_text,
            }
        )
        if reply.get("type") != protocol.RESULT:
            raise GatewayError(
                str(reply.get("message", f"unexpected reply: {reply!r}"))
            )
        return dict(reply["report"])

    def stats(self) -> dict[str, Any]:
        """Fetch the gateway's metrics snapshot (``stats`` round trip)."""
        reply = self._rpc({"type": protocol.STATS})
        if reply.get("type") != protocol.STATS:
            raise GatewayError(
                str(reply.get("message", f"unexpected reply: {reply!r}"))
            )
        reply.pop("type", None)
        return reply

    def trace(self, ticket: RemoteTicket | str) -> dict[str, Any]:
        """Fetch the recorded span list of one of this client's tickets.

        Returns ``{"ticket_id", "trace_id", "state", "spans"}`` — render
        the spans with :func:`repro.obs.tracing.build_tree` or ``repro
        obs trace``.  Raises :class:`GatewayError` for an unknown or
        foreign ticket.
        """
        ticket_id = ticket.id if isinstance(ticket, RemoteTicket) else ticket
        reply = self._rpc(protocol.trace_message(ticket_id))
        if reply.get("type") != protocol.TRACE_RESULT:
            raise GatewayError(
                str(reply.get("message", f"unexpected reply: {reply!r}"))
            )
        reply.pop("type", None)
        return reply

    def profile(self, ticket: RemoteTicket | str) -> dict[str, Any]:
        """Fetch the sampled collapsed-stack profile of one of this
        client's tickets.

        Returns ``{"ticket_id", "state", "profile"}`` where ``profile``
        is the :meth:`repro.obs.Profile.to_dict` payload, or ``None``
        when the gateway ran without profiling enabled.  Raises
        :class:`GatewayError` for an unknown or foreign ticket — and for
        gateways predating the PROFILE RPC, which answer with a protocol
        error (capability tolerance, like :meth:`trace`).
        """
        ticket_id = ticket.id if isinstance(ticket, RemoteTicket) else ticket
        reply = self._rpc(protocol.profile_message(ticket_id))
        if reply.get("type") != protocol.PROFILE_RESULT:
            raise GatewayError(
                str(reply.get("message", f"unexpected reply: {reply!r}"))
            )
        reply.pop("type", None)
        return reply

    def metrics(self, format: str = "json") -> dict[str, Any] | str:
        """Scrape the gateway's metrics registry.

        ``format="json"`` returns the snapshot dict; ``format="text"``
        returns the Prometheus exposition string.
        """
        reply = self._rpc(protocol.metrics_message(format))
        if reply.get("type") != protocol.METRICS_RESULT:
            raise GatewayError(
                str(reply.get("message", f"unexpected reply: {reply!r}"))
            )
        if format == "text":
            return str(reply.get("text", ""))
        return dict(reply.get("metrics") or {})
