"""Training-dataset assembly from parsed documents.

The motivation of the paper is to turn large PDF collections into
high-quality, trillion-token-scale text datasets for LLM training.  This
subpackage implements that final stage of the pipeline:

* :mod:`repro.datasets.records` — the per-document record format produced by a
  parsing campaign (text, provenance, quality, resource usage).
* :mod:`repro.datasets.jsonl` — sharded JSONL serialisation with a manifest
  (the paper's workers write parsed text as JSONL files; see Figure 2).
* :mod:`repro.datasets.quality` — record-level quality filters (CLS I-style
  junk detection, length and quality thresholds) assembled into a pipeline.
* :mod:`repro.datasets.dedup` — exact and near-duplicate detection (MinHash +
  LSH over word shingles).
* :mod:`repro.datasets.tokens` — token accounting and goodput (accepted tokens
  per resource unit, the measure the introduction argues for).
* :mod:`repro.datasets.assembly` — the :class:`DatasetBuilder` that runs
  parse → filter → dedup → shard and reports what survived each stage.
"""

from repro.datasets.assembly import DatasetBuilder, DatasetBuildConfig, DatasetReport
from repro.datasets.dedup import (
    DedupReport,
    NearDuplicateDetector,
    content_fingerprint,
    exact_duplicate_groups,
    normalize_for_dedup,
)
from repro.datasets.jsonl import JsonlShardManifest, ShardedJsonlWriter, read_jsonl, write_jsonl
from repro.datasets.quality import (
    FilterDecision,
    FilterPipeline,
    FilterReport,
    JunkTextFilter,
    LengthFilter,
    QualityThresholdFilter,
    RecordFilter,
)
from repro.datasets.records import ParsedRecord, record_from_parse
from repro.datasets.tokens import TokenAccount, account_records, goodput_table

__all__ = [
    "DatasetBuildConfig",
    "DatasetBuilder",
    "DatasetReport",
    "DedupReport",
    "FilterDecision",
    "FilterPipeline",
    "FilterReport",
    "JsonlShardManifest",
    "JunkTextFilter",
    "LengthFilter",
    "NearDuplicateDetector",
    "ParsedRecord",
    "QualityThresholdFilter",
    "RecordFilter",
    "ShardedJsonlWriter",
    "TokenAccount",
    "account_records",
    "content_fingerprint",
    "exact_duplicate_groups",
    "goodput_table",
    "normalize_for_dedup",
    "read_jsonl",
    "record_from_parse",
    "write_jsonl",
]
