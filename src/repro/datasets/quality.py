"""Record-level quality filtering of assembled datasets.

Training an LLM on badly parsed text is worse than training on less text
(Section 1 of the paper), so a parsing campaign's output passes through a
filter pipeline before it becomes a dataset.  Filters mirror the signals the
paper uses elsewhere: the CLS I junk-text statistics, the accepted-token BLEU
threshold, and simple length/failure rules.  Every rejection is attributed to
the filter and reason that caused it so that campaigns can audit their losses.
"""

from __future__ import annotations

import abc
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.cls1 import ValidationClassifier, ValidationConfig
from repro.datasets.records import ParsedRecord
from repro.metrics.accepted_tokens import DEFAULT_BLEU_THRESHOLD


@dataclass(frozen=True)
class FilterDecision:
    """Outcome of one filter on one record."""

    accepted: bool
    reason: str = ""

    @classmethod
    def accept(cls) -> "FilterDecision":
        return cls(accepted=True)

    @classmethod
    def reject(cls, reason: str) -> "FilterDecision":
        return cls(accepted=False, reason=reason)


class RecordFilter(abc.ABC):
    """A single accept/reject rule over parsed records."""

    #: Short name used in rejection accounting.
    name: str = "filter"

    @abc.abstractmethod
    def decide(self, record: ParsedRecord) -> FilterDecision:
        """Judge one record."""

    def __call__(self, record: ParsedRecord) -> FilterDecision:
        return self.decide(record)


class ParseSucceededFilter(RecordFilter):
    """Rejects records whose parse failed outright."""

    name = "parse_succeeded"

    def decide(self, record: ParsedRecord) -> FilterDecision:
        if not record.succeeded:
            return FilterDecision.reject("parse failed")
        if not record.text.strip():
            return FilterDecision.reject("empty parse")
        return FilterDecision.accept()


class LengthFilter(RecordFilter):
    """Rejects records outside a token-count window.

    Very short parses are usually failed extractions; absurdly long ones are
    typically concatenation or repetition artefacts.
    """

    name = "length"

    def __init__(self, min_tokens: int = 50, max_tokens: int | None = 2_000_000) -> None:
        if min_tokens < 0:
            raise ValueError("min_tokens must be non-negative")
        if max_tokens is not None and max_tokens < min_tokens:
            raise ValueError("max_tokens must be at least min_tokens")
        self.min_tokens = min_tokens
        self.max_tokens = max_tokens

    def decide(self, record: ParsedRecord) -> FilterDecision:
        if record.n_tokens < self.min_tokens:
            return FilterDecision.reject(f"too short ({record.n_tokens} tokens)")
        if self.max_tokens is not None and record.n_tokens > self.max_tokens:
            return FilterDecision.reject(f"too long ({record.n_tokens} tokens)")
        return FilterDecision.accept()


class JunkTextFilter(RecordFilter):
    """Rejects records whose text fails the CLS I validity rules.

    Reuses :class:`repro.core.cls1.ValidationClassifier`: scrambled words,
    whitespace injection, and vocabulary-free text are rejected with the
    validator's own reasons.
    """

    name = "junk_text"

    def __init__(self, config: ValidationConfig | None = None) -> None:
        self.validator = ValidationClassifier(config)

    def decide(self, record: ParsedRecord) -> FilterDecision:
        verdict = self.validator.validate(record.text, n_pages=max(1, record.n_pages))
        if verdict.is_valid:
            return FilterDecision.accept()
        return FilterDecision.reject("; ".join(verdict.reasons) or "invalid text")


class QualityThresholdFilter(RecordFilter):
    """Rejects records whose quality estimate falls below a threshold.

    This is the accepted-token criterion applied at assembly time.  Records
    with no quality estimate are kept by default (their quality is unknown,
    not known-bad); set ``require_known=True`` for a stricter policy.
    """

    name = "quality_threshold"

    def __init__(
        self,
        threshold: float = DEFAULT_BLEU_THRESHOLD,
        require_known: bool = False,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must lie in [0, 1]")
        self.threshold = threshold
        self.require_known = require_known

    def decide(self, record: ParsedRecord) -> FilterDecision:
        if record.quality is None:
            if self.require_known:
                return FilterDecision.reject("no quality estimate")
            return FilterDecision.accept()
        if record.quality < self.threshold:
            return FilterDecision.reject(
                f"quality {record.quality:.2f} below threshold {self.threshold:.2f}"
            )
        return FilterDecision.accept()


@dataclass
class FilterReport:
    """Outcome of running a filter pipeline over a record collection."""

    accepted: list[ParsedRecord] = field(default_factory=list)
    rejected: list[tuple[ParsedRecord, str, str]] = field(default_factory=list)
    rejections_by_filter: Counter = field(default_factory=Counter)

    @property
    def n_input(self) -> int:
        return len(self.accepted) + len(self.rejected)

    @property
    def n_accepted(self) -> int:
        return len(self.accepted)

    @property
    def acceptance_rate(self) -> float:
        """Fraction of input records that survived every filter."""
        if self.n_input == 0:
            return 0.0
        return self.n_accepted / self.n_input

    def rejection_reasons(self, filter_name: str) -> list[str]:
        """Reasons recorded for one filter's rejections."""
        return [reason for _, name, reason in self.rejected if name == filter_name]

    def summary(self) -> dict[str, object]:
        """Headline numbers for logs and reports."""
        return {
            "n_input": self.n_input,
            "n_accepted": self.n_accepted,
            "acceptance_rate": round(self.acceptance_rate, 4),
            "rejections_by_filter": dict(self.rejections_by_filter),
        }


class FilterPipeline:
    """Applies filters in order; the first rejection wins."""

    def __init__(self, filters: Sequence[RecordFilter]) -> None:
        self.filters = list(filters)

    @classmethod
    def default(
        cls,
        quality_threshold: float = DEFAULT_BLEU_THRESHOLD,
        min_tokens: int = 50,
    ) -> "FilterPipeline":
        """The standard assembly pipeline: failures, length, junk text, quality."""
        return cls(
            [
                ParseSucceededFilter(),
                LengthFilter(min_tokens=min_tokens),
                JunkTextFilter(),
                QualityThresholdFilter(threshold=quality_threshold),
            ]
        )

    def decide(self, record: ParsedRecord) -> tuple[FilterDecision, str]:
        """Judge one record; returns the decision and the deciding filter's name."""
        for record_filter in self.filters:
            decision = record_filter.decide(record)
            if not decision.accepted:
                return decision, record_filter.name
        return FilterDecision.accept(), ""

    def apply(self, records: Iterable[ParsedRecord]) -> FilterReport:
        """Run the pipeline over a record collection."""
        report = FilterReport()
        for record in records:
            decision, filter_name = self.decide(record)
            if decision.accepted:
                report.accepted.append(record)
            else:
                report.rejected.append((record, filter_name, decision.reason))
                report.rejections_by_filter[filter_name] += 1
        return report
