"""End-to-end dataset assembly: parse → filter → dedup → shard.

:class:`DatasetBuilder` is the library-level counterpart of a full parsing
campaign's output stage.  Given a corpus and a parser (or AdaParse engine) it
produces parsed records, pushes them through the quality-filter pipeline and
the near-duplicate detector, writes the survivors as sharded JSONL with a
manifest, and reports what happened at every stage (counts, token accounting,
goodput).

Parsing runs through :class:`repro.pipeline.ParsePipeline`: results stream
in α-budgeted batches (records are built incrementally rather than from a
fully materialised result list) on a configurable execution backend
(``DatasetBuildConfig.backend``: serial, thread, process, or the
simulated-HPC adapter).
"""

from __future__ import annotations

from dataclasses import InitVar, dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.cache import CachePolicy
from repro.cache.stats import CacheStats, CacheStatsRecorder
from repro.datasets.dedup import DedupReport, NearDuplicateDetector
from repro.datasets.jsonl import JsonlShardManifest, ShardedJsonlWriter
from repro.datasets.quality import FilterPipeline, FilterReport
from repro.datasets.records import ParsedRecord, record_from_parse
from repro.datasets.tokens import TokenAccount, account_records
from repro.documents.corpus import Corpus
from repro.documents.document import SciDocument
from repro.documents.sources import DocumentSource
from repro.metrics.accepted_tokens import DEFAULT_BLEU_THRESHOLD
from repro.metrics.bundle import evaluate_parse
from repro.parsers.base import Parser, ParseResult
from repro.pipeline.pipeline import ParsePipeline


@dataclass(frozen=True)
class DatasetBuildConfig:
    """Knobs of one dataset build.

    Attributes
    ----------
    output_dir:
        Directory the JSONL shards and manifest are written to; ``None`` skips
        writing (useful for in-memory analyses and tests).
    quality_threshold:
        Acceptance threshold used by the quality filter and token accounting.
    min_tokens:
        Minimum token count a record must have to survive the length filter.
    dedup:
        Whether to run near-duplicate detection.
    dedup_similarity:
        Jaccard similarity above which two records count as duplicates.
    max_records_per_shard, max_mb_per_shard:
        Shard roll-over limits of the JSONL writer.
    evaluate_against_ground_truth:
        When true, each record's quality is the document BLEU against the
        corpus ground truth ("reference"); otherwise records carry no quality
        estimate unless the caller provides predictions.
    backend:
        Execution backend of the parse stage by registry name (``serial``,
        ``thread``, ``process``, ``hpc``), or ``"auto"``.
    backend_options:
        Backend construction options (e.g. ``{"n_jobs": 8}``; with
        ``backend="auto"`` that option resolves to the thread backend).
    cache:
        Cache policy of the parse stage (``off``/``read``/``write``/
        ``readwrite``).  With ``readwrite`` a rebuild over the same corpus
        reuses every cached parse instead of re-running the parsers — the
        cache lives on the builder's :class:`~repro.pipeline.ParsePipeline`.
    """

    output_dir: str | None = None
    quality_threshold: float = DEFAULT_BLEU_THRESHOLD
    min_tokens: int = 50
    dedup: bool = True
    dedup_similarity: float = 0.8
    max_records_per_shard: int = 50_000
    max_mb_per_shard: float = 64.0
    evaluate_against_ground_truth: bool = True
    backend: str = "auto"
    backend_options: dict[str, Any] = field(default_factory=dict)
    cache: str = "off"
    #: Removed field (hard error): parallelism now lives in
    #: ``backend_options={"n_jobs": N}``.
    n_jobs: InitVar[Any] = None

    def __post_init__(self, n_jobs: Any) -> None:
        if n_jobs is not None:
            raise TypeError(
                "DatasetBuildConfig.n_jobs was removed; request parallelism with "
                "backend='thread' (or 'process') and backend_options={'n_jobs': N}"
            )
        if not 0.0 <= self.quality_threshold <= 1.0:
            raise ValueError("quality_threshold must lie in [0, 1]")
        if self.min_tokens < 0:
            raise ValueError("min_tokens must be non-negative")
        if not 0.0 < self.dedup_similarity <= 1.0:
            raise ValueError("dedup_similarity must lie in (0, 1]")
        from repro.pipeline.backends.base import validate_backend_spec

        validate_backend_spec(self.backend, self.backend_options)
        CachePolicy.coerce(self.cache)  # raises on unknown policies


@dataclass
class DatasetReport:
    """Everything one dataset build produced and measured."""

    parser_name: str
    n_documents: int
    records: list[ParsedRecord] = field(default_factory=list)
    filter_report: FilterReport = field(default_factory=FilterReport)
    dedup_report: DedupReport = field(default_factory=DedupReport)
    final_records: list[ParsedRecord] = field(default_factory=list)
    token_account: TokenAccount = field(default_factory=TokenAccount)
    manifest: JsonlShardManifest | None = None
    cache_stats: CacheStats = field(default_factory=CacheStats)

    @property
    def n_final(self) -> int:
        """Number of records in the assembled dataset."""
        return len(self.final_records)

    @property
    def retention_rate(self) -> float:
        """Fraction of parsed documents that made it into the dataset."""
        if self.n_documents == 0:
            return 0.0
        return self.n_final / self.n_documents

    def summary(self) -> dict[str, object]:
        """Stage-by-stage headline numbers."""
        return {
            "parser": self.parser_name,
            "n_documents": self.n_documents,
            "n_after_filters": self.filter_report.n_accepted,
            "n_after_dedup": self.n_final,
            "retention_rate": round(self.retention_rate, 4),
            "rejections_by_filter": dict(self.filter_report.rejections_by_filter),
            "duplicate_rate": round(self.dedup_report.duplicate_rate, 4),
            "tokens": self.token_account.as_dict(),
            "manifest": None if self.manifest is None else self.manifest.to_json_dict(),
            "cache": self.cache_stats.to_json_dict() if self.cache_stats.any_activity else None,
        }


class DatasetBuilder:
    """Assembles an LLM-training dataset from a corpus and a parser."""

    def __init__(
        self,
        parser: Parser,
        config: DatasetBuildConfig | None = None,
        filter_pipeline: FilterPipeline | None = None,
        deduplicator: NearDuplicateDetector | None = None,
        pipeline: ParsePipeline | None = None,
    ) -> None:
        self.parser = parser
        self.config = config or DatasetBuildConfig()
        self.pipeline = pipeline or ParsePipeline()
        self.filter_pipeline = filter_pipeline or FilterPipeline.default(
            quality_threshold=self.config.quality_threshold,
            min_tokens=self.config.min_tokens,
        )
        self.deduplicator = deduplicator or NearDuplicateDetector(
            similarity_threshold=self.config.dedup_similarity
        )

    # ------------------------------------------------------------------ #
    # Record construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _materialise(corpus: "Corpus | DocumentSource | Iterable[SciDocument]") -> list[SciDocument]:
        """Documents of a corpus, a document source, or a plain iterable."""
        if isinstance(corpus, DocumentSource):
            return list(corpus.iter_documents())
        return list(corpus)

    def _records_from_corpus(
        self,
        corpus: "Corpus | DocumentSource | Iterable[SciDocument]",
        cache_recorder: CacheStatsRecorder,
    ) -> list[ParsedRecord]:
        # Streamed: results arrive one α-budgeted batch at a time, so the
        # full ParseResult list is never materialised alongside the records.
        # The documents are materialised once so one-shot iterables cannot be
        # consumed by the parse stream and the pairing loop interleaved.
        documents = self._materialise(corpus)
        stream = self.pipeline.iter_parse(
            self.parser,
            iter(documents),
            cache_policy=self.config.cache,
            cache_recorder=cache_recorder,
            backend=self.config.backend,
            backend_options=self.config.backend_options,
        )
        records: list[ParsedRecord] = []
        for document, result in zip(documents, stream):
            bundle = None
            if self.config.evaluate_against_ground_truth:
                bundle = evaluate_parse(document.ground_truth_pages(), result.page_texts)
            records.append(record_from_parse(document, result, bundle=bundle))
        return records

    def build_from_results(
        self, corpus: Corpus, results: list[ParseResult]
    ) -> DatasetReport:
        """Assemble from pre-computed parse results (e.g. a campaign replay)."""
        documents = list(corpus)
        if len(documents) != len(results):
            raise ValueError("corpus and results must have equal length")
        records = []
        for document, result in zip(documents, results):
            bundle = None
            if self.config.evaluate_against_ground_truth:
                bundle = evaluate_parse(document.ground_truth_pages(), result.page_texts)
            records.append(record_from_parse(document, result, bundle=bundle))
        return self._assemble(records)

    # ------------------------------------------------------------------ #
    # Assembly
    # ------------------------------------------------------------------ #
    def build(
        self, corpus: "Corpus | DocumentSource | Iterable[SciDocument]"
    ) -> DatasetReport:
        """Parse the documents and assemble the dataset.

        Accepts a :class:`~repro.documents.corpus.Corpus`, any
        :class:`~repro.documents.sources.DocumentSource` (an HTML
        directory, a crawl dump, …), or a plain document iterable.  With
        ``config.cache != "off"`` the parse stage runs through the
        pipeline's content-addressed cache, so rebuilding over an unchanged
        corpus (tweaked filters, different shard sizes, …) skips parsing
        entirely; the report's ``cache_stats`` records the reuse.
        """
        cache_recorder = CacheStatsRecorder()
        records = self._records_from_corpus(corpus, cache_recorder)
        if CachePolicy.coerce(self.config.cache).writes:
            self.pipeline.cache.flush()
        report = self._assemble(records)
        report.cache_stats = cache_recorder.snapshot()
        return report

    def _assemble(self, records: list[ParsedRecord]) -> DatasetReport:
        config = self.config
        report = DatasetReport(parser_name=self.parser.name, n_documents=len(records), records=records)
        report.filter_report = self.filter_pipeline.apply(records)
        surviving = report.filter_report.accepted
        if config.dedup:
            report.dedup_report = self.deduplicator.find_duplicates(surviving)
            surviving = report.dedup_report.kept
        else:
            report.dedup_report = DedupReport(kept=list(surviving))
        report.final_records = surviving
        report.token_account = account_records(surviving, threshold=config.quality_threshold)
        if config.output_dir is not None:
            report.manifest = self._write(surviving)
        return report

    def _write(self, records: list[ParsedRecord]) -> JsonlShardManifest:
        assert self.config.output_dir is not None
        writer = ShardedJsonlWriter(
            Path(self.config.output_dir),
            prefix=f"{self.parser.name}-shard",
            max_records_per_shard=self.config.max_records_per_shard,
            max_mb_per_shard=self.config.max_mb_per_shard,
        )
        with writer:
            for record in records:
                writer.write(record.to_json_dict())
        writer.manifest.extra.update(
            {
                "parser": self.parser.name,
                "quality_threshold": self.config.quality_threshold,
                "n_records": len(records),
            }
        )
        writer.manifest.save()
        return writer.manifest


def load_dataset(directory: str | Path) -> list[ParsedRecord]:
    """Load an assembled dataset back into records (via its manifest)."""
    manifest = JsonlShardManifest.load(directory)
    return [ParsedRecord.from_json_dict(payload) for payload in manifest.iter_records()]
