"""Sharded JSONL serialisation of parsed-document records.

Large parsing campaigns cannot write one file per document (the paper's I/O
optimisations exist precisely because millions of small files overwhelm a
shared parallel filesystem), so assembled datasets are written as a directory
of JSONL *shards* plus a ``manifest.json`` describing them.  Shards roll over
on a record-count or byte-size limit, whichever is hit first.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping

MANIFEST_FILENAME = "manifest.json"


def write_jsonl(path: str | Path, records: Iterable[Mapping[str, object]]) -> int:
    """Write records to a single JSONL file, returning the number written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(dict(record), ensure_ascii=False) + "\n")
            count += 1
    return count


def read_jsonl(path: str | Path) -> list[dict[str, object]]:
    """Read every record of a JSONL file."""
    path = Path(path)
    records: list[dict[str, object]] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: invalid JSON line") from exc
    return records


def iter_jsonl(path: str | Path) -> Iterator[dict[str, object]]:
    """Stream records of a JSONL file without loading it entirely."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


@dataclass
class ShardInfo:
    """Bookkeeping of one written shard."""

    path: str
    n_records: int
    n_bytes: int

    def to_json_dict(self) -> dict[str, object]:
        return {"path": self.path, "n_records": self.n_records, "n_bytes": self.n_bytes}


@dataclass
class JsonlShardManifest:
    """Manifest of a sharded JSONL dataset directory."""

    directory: str
    shards: list[ShardInfo] = field(default_factory=list)
    extra: dict[str, object] = field(default_factory=dict)

    @property
    def n_records(self) -> int:
        """Total records across all shards."""
        return sum(s.n_records for s in self.shards)

    @property
    def n_bytes(self) -> int:
        """Total serialised bytes across all shards."""
        return sum(s.n_bytes for s in self.shards)

    def to_json_dict(self) -> dict[str, object]:
        return {
            "directory": self.directory,
            "n_records": self.n_records,
            "n_bytes": self.n_bytes,
            "shards": [s.to_json_dict() for s in self.shards],
            "extra": dict(self.extra),
        }

    def save(self, path: str | Path | None = None) -> Path:
        """Write the manifest (defaults to ``<directory>/manifest.json``)."""
        path = Path(path) if path is not None else Path(self.directory) / MANIFEST_FILENAME
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json_dict(), indent=2), encoding="utf-8")
        return path

    @classmethod
    def load(cls, directory: str | Path) -> "JsonlShardManifest":
        """Load the manifest of a dataset directory."""
        directory = Path(directory)
        payload = json.loads((directory / MANIFEST_FILENAME).read_text(encoding="utf-8"))
        manifest = cls(directory=str(directory), extra=dict(payload.get("extra", {})))
        for shard in payload.get("shards", []):
            manifest.shards.append(
                ShardInfo(
                    path=str(shard["path"]),
                    n_records=int(shard["n_records"]),
                    n_bytes=int(shard["n_bytes"]),
                )
            )
        return manifest

    def iter_records(self) -> Iterator[dict[str, object]]:
        """Stream every record of the dataset, shard by shard."""
        base = Path(self.directory)
        for shard in self.shards:
            yield from iter_jsonl(base / shard.path)


class ShardedJsonlWriter:
    """Writes records into rolling JSONL shards under one directory.

    Usable as a context manager::

        with ShardedJsonlWriter("out/", max_records_per_shard=10_000) as writer:
            for record in records:
                writer.write(record.to_json_dict())
        manifest = writer.manifest
    """

    def __init__(
        self,
        directory: str | Path,
        prefix: str = "shard",
        max_records_per_shard: int = 50_000,
        max_mb_per_shard: float = 64.0,
    ) -> None:
        if max_records_per_shard < 1:
            raise ValueError("max_records_per_shard must be positive")
        if max_mb_per_shard <= 0:
            raise ValueError("max_mb_per_shard must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.prefix = prefix
        self.max_records_per_shard = max_records_per_shard
        self.max_bytes_per_shard = int(max_mb_per_shard * 1024 * 1024)
        self.manifest = JsonlShardManifest(directory=str(self.directory))
        self._handle = None
        self._current_records = 0
        self._current_bytes = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    def _shard_name(self, index: int) -> str:
        return f"{self.prefix}-{index:05d}.jsonl"

    def _open_new_shard(self) -> None:
        self._finish_current_shard()
        name = self._shard_name(len(self.manifest.shards))
        self._handle = (self.directory / name).open("w", encoding="utf-8")
        self._current_records = 0
        self._current_bytes = 0

    def _finish_current_shard(self) -> None:
        if self._handle is None:
            return
        name = Path(self._handle.name).name
        self._handle.close()
        self.manifest.shards.append(
            ShardInfo(path=name, n_records=self._current_records, n_bytes=self._current_bytes)
        )
        self._handle = None

    # ------------------------------------------------------------------ #
    def write(self, record: Mapping[str, object]) -> None:
        """Append one record, rolling over to a new shard when limits are hit."""
        if self._closed:
            raise RuntimeError("writer is closed")
        line = json.dumps(dict(record), ensure_ascii=False) + "\n"
        encoded = line.encode("utf-8")
        needs_new = (
            self._handle is None
            or self._current_records >= self.max_records_per_shard
            or (self._current_bytes > 0 and self._current_bytes + len(encoded) > self.max_bytes_per_shard)
        )
        if needs_new:
            self._open_new_shard()
        assert self._handle is not None
        self._handle.write(line)
        self._current_records += 1
        self._current_bytes += len(encoded)

    def write_many(self, records: Iterable[Mapping[str, object]]) -> int:
        """Append many records; returns how many were written."""
        count = 0
        for record in records:
            self.write(record)
            count += 1
        return count

    def close(self, extra: Mapping[str, object] | None = None) -> JsonlShardManifest:
        """Finish the open shard and write the manifest."""
        if self._closed:
            return self.manifest
        self._finish_current_shard()
        if extra:
            self.manifest.extra.update(dict(extra))
        self.manifest.save()
        self._closed = True
        return self.manifest

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "ShardedJsonlWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
