"""Token accounting and goodput.

The introduction of the paper argues that the right figure of merit for a
parsing campaign is *goodput*: accepted textual tokens produced per resource
unit, not raw documents per second.  This module aggregates token counts and
compute charges over parsed records and reports goodput per CPU-hour,
GPU-hour, and node-hour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.datasets.records import ParsedRecord
from repro.metrics.accepted_tokens import DEFAULT_BLEU_THRESHOLD
from repro.utils.tables import Table

#: Reference node shape used for node-hour goodput (a Polaris node).
DEFAULT_NODE_CPU_CORES = 32
DEFAULT_NODE_GPUS = 4


@dataclass(frozen=True)
class TokenAccount:
    """Aggregate token and compute accounting of a record collection.

    Attributes
    ----------
    n_documents:
        Number of records accounted.
    n_tokens:
        Total parsed tokens.
    n_accepted_tokens:
        Tokens belonging to records whose quality clears the acceptance
        threshold (records with unknown quality contribute nothing here).
    cpu_seconds, gpu_seconds:
        Total compute charged across the records.
    threshold:
        Acceptance threshold used.
    """

    n_documents: int = 0
    n_tokens: int = 0
    n_accepted_tokens: int = 0
    cpu_seconds: float = 0.0
    gpu_seconds: float = 0.0
    threshold: float = DEFAULT_BLEU_THRESHOLD

    # ------------------------------------------------------------------ #
    @property
    def acceptance_rate(self) -> float:
        """Accepted fraction of all parsed tokens."""
        if self.n_tokens == 0:
            return 0.0
        return self.n_accepted_tokens / self.n_tokens

    @property
    def compute_seconds(self) -> float:
        """CPU plus GPU seconds."""
        return self.cpu_seconds + self.gpu_seconds

    def goodput_per_cpu_hour(self) -> float:
        """Accepted tokens per CPU-core-hour."""
        if self.cpu_seconds <= 0:
            return 0.0
        return self.n_accepted_tokens / (self.cpu_seconds / 3600.0)

    def goodput_per_gpu_hour(self) -> float:
        """Accepted tokens per GPU-hour (0 when no GPU time was charged)."""
        if self.gpu_seconds <= 0:
            return 0.0
        return self.n_accepted_tokens / (self.gpu_seconds / 3600.0)

    def goodput_per_node_hour(
        self,
        cpu_cores: int = DEFAULT_NODE_CPU_CORES,
        gpus: int = DEFAULT_NODE_GPUS,
    ) -> float:
        """Accepted tokens per node-hour on a reference node.

        The node-hours consumed are estimated as the larger of the CPU-side
        and GPU-side occupancy (whichever resource is the bottleneck under
        perfect intra-node parallelism).
        """
        if cpu_cores < 1 or gpus < 1:
            raise ValueError("cpu_cores and gpus must be positive")
        cpu_node_hours = self.cpu_seconds / 3600.0 / cpu_cores
        gpu_node_hours = self.gpu_seconds / 3600.0 / gpus
        node_hours = max(cpu_node_hours, gpu_node_hours)
        if node_hours <= 0:
            return 0.0
        return self.n_accepted_tokens / node_hours

    def as_dict(self) -> dict[str, object]:
        """Headline numbers for reports."""
        return {
            "n_documents": self.n_documents,
            "n_tokens": self.n_tokens,
            "n_accepted_tokens": self.n_accepted_tokens,
            "acceptance_rate": round(self.acceptance_rate, 4),
            "cpu_seconds": round(self.cpu_seconds, 2),
            "gpu_seconds": round(self.gpu_seconds, 2),
            "goodput_per_node_hour": round(self.goodput_per_node_hour(), 1),
        }

    # ------------------------------------------------------------------ #
    def merged(self, other: "TokenAccount") -> "TokenAccount":
        """Combine two accounts (e.g. across shards or campaign partitions)."""
        if abs(self.threshold - other.threshold) > 1e-12:
            raise ValueError("cannot merge accounts with different thresholds")
        return TokenAccount(
            n_documents=self.n_documents + other.n_documents,
            n_tokens=self.n_tokens + other.n_tokens,
            n_accepted_tokens=self.n_accepted_tokens + other.n_accepted_tokens,
            cpu_seconds=self.cpu_seconds + other.cpu_seconds,
            gpu_seconds=self.gpu_seconds + other.gpu_seconds,
            threshold=self.threshold,
        )


def account_records(
    records: Iterable[ParsedRecord],
    threshold: float = DEFAULT_BLEU_THRESHOLD,
) -> TokenAccount:
    """Aggregate a record collection into a :class:`TokenAccount`."""
    n_documents = 0
    n_tokens = 0
    n_accepted = 0
    cpu_seconds = 0.0
    gpu_seconds = 0.0
    for record in records:
        n_documents += 1
        n_tokens += record.n_tokens
        cpu_seconds += record.cpu_seconds
        gpu_seconds += record.gpu_seconds
        if record.quality is not None and record.quality >= threshold:
            n_accepted += record.n_tokens
    return TokenAccount(
        n_documents=n_documents,
        n_tokens=n_tokens,
        n_accepted_tokens=n_accepted,
        cpu_seconds=cpu_seconds,
        gpu_seconds=gpu_seconds,
        threshold=threshold,
    )


def goodput_table(
    accounts: dict[str, TokenAccount],
    title: str = "Goodput: accepted tokens per resource unit",
) -> Table:
    """Tabulate token accounts of several parsers/engines side by side."""
    table = Table(
        title=title,
        columns=[
            "Parser",
            "Documents",
            "Tokens",
            "Accepted tokens",
            "Acceptance",
            "Tokens/node-hour",
        ],
    )
    for name, account in accounts.items():
        table.add_row(
            {
                "Parser": name,
                "Documents": account.n_documents,
                "Tokens": account.n_tokens,
                "Accepted tokens": account.n_accepted_tokens,
                "Acceptance": account.acceptance_rate * 100.0,
                "Tokens/node-hour": account.goodput_per_node_hour(),
            }
        )
    return table


def accepted_token_counts(
    qualities: Sequence[float | None],
    token_counts: Sequence[int],
    threshold: float = DEFAULT_BLEU_THRESHOLD,
) -> int:
    """Accepted-token count over parallel quality/token sequences.

    Convenience for callers that have not built records; ``None`` qualities
    never count as accepted.
    """
    if len(qualities) != len(token_counts):
        raise ValueError("qualities and token_counts must have equal length")
    return int(
        sum(
            count
            for quality, count in zip(qualities, token_counts)
            if quality is not None and quality >= threshold
        )
    )
