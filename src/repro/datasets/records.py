"""The per-document record format of an assembled text dataset.

A :class:`ParsedRecord` is what a parsing campaign ultimately produces for
each document: the parsed text, which parser produced it, how much compute it
cost, and — when ground truth or a selector prediction is available — a
quality estimate that downstream filtering can act on.  Records are plain
JSON-serialisable objects so that campaigns can stream them into the sharded
JSONL writer without holding a corpus in memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.documents.document import SciDocument
from repro.metrics.bundle import MetricBundle
from repro.metrics.tokenize import word_tokenize
from repro.parsers.base import ParseResult

#: How the ``quality`` field of a record was obtained.
QUALITY_SOURCES = ("reference", "predicted", "unknown")


@dataclass
class ParsedRecord:
    """One parsed document, ready for dataset assembly.

    Attributes
    ----------
    doc_id:
        Identifier of the source document.
    text:
        Parsed document text (concatenated pages).
    parser_name:
        Name of the parser (or AdaParse engine) that produced the text.
    n_pages:
        Number of pages the parse produced.
    n_tokens:
        Word-token count of ``text``.
    quality:
        Quality estimate in ``[0, 1]`` (document BLEU when ground truth is
        available, a selector prediction otherwise), or ``None`` when unknown.
    quality_source:
        One of :data:`QUALITY_SOURCES` — how ``quality`` was obtained.
    cpu_seconds, gpu_seconds:
        Compute charged to this document (used for goodput accounting).
    succeeded:
        Whether the parse completed without error.
    metadata:
        Free-form provenance (publisher, domain, year, ...), JSON-serialisable.
    """

    doc_id: str
    text: str
    parser_name: str
    n_pages: int
    n_tokens: int
    quality: float | None = None
    quality_source: str = "unknown"
    cpu_seconds: float = 0.0
    gpu_seconds: float = 0.0
    succeeded: bool = True
    metadata: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.quality_source not in QUALITY_SOURCES:
            raise ValueError(
                f"quality_source must be one of {QUALITY_SOURCES}, got {self.quality_source!r}"
            )
        if self.quality is not None and not 0.0 <= self.quality <= 1.0:
            raise ValueError(f"quality must lie in [0, 1], got {self.quality}")

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_json_dict(self) -> dict[str, object]:
        """JSON-serialisable dictionary form (one JSONL line)."""
        return {
            "doc_id": self.doc_id,
            "text": self.text,
            "parser_name": self.parser_name,
            "n_pages": self.n_pages,
            "n_tokens": self.n_tokens,
            "quality": self.quality,
            "quality_source": self.quality_source,
            "cpu_seconds": self.cpu_seconds,
            "gpu_seconds": self.gpu_seconds,
            "succeeded": self.succeeded,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, object]) -> "ParsedRecord":
        """Inverse of :meth:`to_json_dict`."""
        return cls(
            doc_id=str(data["doc_id"]),
            text=str(data["text"]),
            parser_name=str(data["parser_name"]),
            n_pages=int(data["n_pages"]),  # type: ignore[arg-type]
            n_tokens=int(data["n_tokens"]),  # type: ignore[arg-type]
            quality=None if data.get("quality") is None else float(data["quality"]),  # type: ignore[arg-type]
            quality_source=str(data.get("quality_source", "unknown")),
            cpu_seconds=float(data.get("cpu_seconds", 0.0)),  # type: ignore[arg-type]
            gpu_seconds=float(data.get("gpu_seconds", 0.0)),  # type: ignore[arg-type]
            succeeded=bool(data.get("succeeded", True)),
            metadata=dict(data.get("metadata", {})),  # type: ignore[arg-type]
        )

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def compute_seconds(self) -> float:
        """CPU plus GPU seconds charged to this record."""
        return self.cpu_seconds + self.gpu_seconds

    @property
    def has_known_quality(self) -> bool:
        """Whether any quality estimate (reference or predicted) is attached."""
        return self.quality is not None


def record_from_parse(
    document: SciDocument,
    result: ParseResult,
    bundle: MetricBundle | None = None,
    predicted_quality: float | None = None,
) -> ParsedRecord:
    """Build a record from a parse of a document.

    Parameters
    ----------
    document:
        The source document (provides provenance metadata).
    result:
        The parser output.
    bundle:
        Reference metrics of the parse; when given, the record's quality is the
        document BLEU with source ``"reference"``.
    predicted_quality:
        Selector-predicted quality; used (with source ``"predicted"``) when no
        reference bundle is available.
    """
    if bundle is not None:
        quality: float | None = float(min(1.0, max(0.0, bundle.bleu)))
        source = "reference"
    elif predicted_quality is not None:
        quality = float(min(1.0, max(0.0, predicted_quality)))
        source = "predicted"
    else:
        quality = None
        source = "unknown"
    text = result.text
    meta = document.metadata
    return ParsedRecord(
        doc_id=document.doc_id,
        text=text,
        parser_name=result.parser_name,
        n_pages=result.n_pages,
        n_tokens=len(word_tokenize(text)),
        quality=quality,
        quality_source=source,
        cpu_seconds=result.usage.cpu_seconds,
        gpu_seconds=result.usage.gpu_seconds,
        succeeded=result.succeeded,
        metadata={
            "publisher": meta.publisher,
            "domain": meta.domain,
            "subcategory": meta.subcategory,
            "year": meta.year,
            "producer": meta.producer,
            "pdf_format": meta.pdf_format,
        },
    )
