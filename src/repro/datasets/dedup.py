"""Exact and near-duplicate detection for assembled datasets.

Scientific collections overlap heavily (preprint servers, publisher mirrors,
revised versions), and duplicate text skews LLM training.  This module
provides

* exact duplicate grouping over a whitespace/case-normalised hash, and
* near-duplicate detection with MinHash signatures over word shingles and an
  LSH banding index, so that candidate pairs are found without comparing every
  pair of documents.

Everything is deterministic: hashes come from :mod:`repro.utils.hashing`, and
the MinHash permutations are fixed affine maps over a 61-bit Mersenne prime.
"""

from __future__ import annotations

import re
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.datasets.records import ParsedRecord
from repro.utils.hashing import stable_hash

_WHITESPACE_RE = re.compile(r"\s+")

#: Modulus of the MinHash permutations (a Mersenne prime, 2^61 - 1).
_MERSENNE_61 = (1 << 61) - 1


def normalize_for_dedup(text: str) -> str:
    """Canonical form used for duplicate detection (case and whitespace folded)."""
    return _WHITESPACE_RE.sub(" ", text.strip().lower())


def content_fingerprint(text: str) -> int:
    """Stable 64-bit fingerprint of the normalised text (exact-dup key)."""
    return stable_hash("dedup-fingerprint", normalize_for_dedup(text))


def exact_duplicate_groups(texts: Sequence[str]) -> list[list[int]]:
    """Indices of texts sharing a fingerprint, for groups of size ≥ 2."""
    groups: dict[int, list[int]] = defaultdict(list)
    for index, text in enumerate(texts):
        groups[content_fingerprint(text)].append(index)
    return [members for members in groups.values() if len(members) >= 2]


def word_shingles(text: str, k: int = 5) -> set[int]:
    """Hashed ``k``-word shingles of the normalised text.

    Texts shorter than ``k`` words produce a single shingle over all words so
    that even tiny documents have a non-empty shingle set.
    """
    if k < 1:
        raise ValueError("k must be positive")
    words = normalize_for_dedup(text).split()
    if not words:
        return set()
    if len(words) < k:
        return {stable_hash("shingle", " ".join(words))}
    return {
        stable_hash("shingle", " ".join(words[i : i + k]))
        for i in range(len(words) - k + 1)
    }


def jaccard_similarity(a: set[int], b: set[int]) -> float:
    """Exact Jaccard similarity of two shingle sets."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    intersection = len(a & b)
    union = len(a) + len(b) - intersection
    return intersection / union


@dataclass(frozen=True)
class MinHasher:
    """MinHash signatures with fixed affine permutations.

    Attributes
    ----------
    n_hashes:
        Signature length; more hashes give better Jaccard estimates.
    seed:
        Seed of the permutation coefficients.
    """

    n_hashes: int = 96
    seed: int = 13

    def _coefficients(self) -> tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng(self.seed)
        a = rng.integers(1, _MERSENNE_61, size=self.n_hashes, dtype=np.int64)
        b = rng.integers(0, _MERSENNE_61, size=self.n_hashes, dtype=np.int64)
        return a, b

    def signature(self, shingles: set[int]) -> np.ndarray:
        """MinHash signature of one shingle set (``n_hashes`` int64 values)."""
        if not shingles:
            return np.full(self.n_hashes, _MERSENNE_61, dtype=np.int64)
        a, b = self._coefficients()
        values = np.asarray(sorted(shingles), dtype=np.uint64) % _MERSENNE_61
        # (n_hashes, n_shingles) permuted values; min over shingles.
        permuted = (
            a[:, None].astype(np.uint64) * values[None, :] + b[:, None].astype(np.uint64)
        ) % _MERSENNE_61
        return permuted.min(axis=1).astype(np.int64)

    @staticmethod
    def estimate_similarity(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
        """Estimated Jaccard similarity from two signatures."""
        if sig_a.shape != sig_b.shape:
            raise ValueError("signatures must have equal length")
        if sig_a.size == 0:
            return 0.0
        return float(np.mean(sig_a == sig_b))


class LshIndex:
    """Banded LSH index over MinHash signatures.

    Signatures are split into ``n_bands`` bands of equal width; documents that
    collide in at least one band become candidate pairs.  With 96 hashes and
    16 bands (width 6) the collision probability crosses 50 % near a Jaccard
    similarity of ``(1/16)^(1/6) ≈ 0.63``.
    """

    def __init__(self, n_hashes: int = 96, n_bands: int = 16) -> None:
        if n_hashes % n_bands != 0:
            raise ValueError("n_hashes must be divisible by n_bands")
        self.n_hashes = n_hashes
        self.n_bands = n_bands
        self.band_width = n_hashes // n_bands
        self._buckets: dict[tuple[int, int], list[str]] = defaultdict(list)
        self._signatures: dict[str, np.ndarray] = {}

    def add(self, key: str, signature: np.ndarray) -> None:
        """Index one document's signature under ``key``."""
        if signature.shape != (self.n_hashes,):
            raise ValueError(f"signature must have length {self.n_hashes}")
        if key in self._signatures:
            raise KeyError(f"key {key!r} already indexed")
        self._signatures[key] = signature
        for band in range(self.n_bands):
            chunk = signature[band * self.band_width : (band + 1) * self.band_width]
            bucket = (band, stable_hash("lsh-band", band, *chunk.tolist()))
            self._buckets[bucket].append(key)

    def __len__(self) -> int:
        return len(self._signatures)

    def candidate_pairs(self) -> set[tuple[str, str]]:
        """All (key_a, key_b) pairs that collide in at least one band."""
        pairs: set[tuple[str, str]] = set()
        for members in self._buckets.values():
            if len(members) < 2:
                continue
            ordered = sorted(members)
            for i in range(len(ordered)):
                for j in range(i + 1, len(ordered)):
                    pairs.add((ordered[i], ordered[j]))
        return pairs

    def signature_of(self, key: str) -> np.ndarray:
        return self._signatures[key]


@dataclass
class DedupReport:
    """Outcome of duplicate detection over a record collection."""

    kept: list[ParsedRecord] = field(default_factory=list)
    dropped: list[ParsedRecord] = field(default_factory=list)
    clusters: list[list[str]] = field(default_factory=list)

    @property
    def n_input(self) -> int:
        return len(self.kept) + len(self.dropped)

    @property
    def duplicate_rate(self) -> float:
        """Fraction of input records dropped as duplicates."""
        if self.n_input == 0:
            return 0.0
        return len(self.dropped) / self.n_input

    def summary(self) -> dict[str, object]:
        return {
            "n_input": self.n_input,
            "n_kept": len(self.kept),
            "n_dropped": len(self.dropped),
            "n_clusters": len(self.clusters),
            "duplicate_rate": round(self.duplicate_rate, 4),
        }


class NearDuplicateDetector:
    """Finds duplicate clusters and keeps one representative per cluster.

    Within each cluster the representative is the record with the highest
    quality estimate (unknown quality ranks lowest), breaking ties by token
    count and then document id — so re-parses of the same content keep the
    best available version.
    """

    def __init__(
        self,
        similarity_threshold: float = 0.8,
        shingle_size: int = 5,
        n_hashes: int = 96,
        n_bands: int = 16,
    ) -> None:
        if not 0.0 < similarity_threshold <= 1.0:
            raise ValueError("similarity_threshold must lie in (0, 1]")
        self.similarity_threshold = similarity_threshold
        self.shingle_size = shingle_size
        self.hasher = MinHasher(n_hashes=n_hashes)
        self.n_bands = n_bands

    # ------------------------------------------------------------------ #
    @staticmethod
    def _preference_key(record: ParsedRecord) -> tuple[float, int, str]:
        quality = record.quality if record.quality is not None else -1.0
        return (quality, record.n_tokens, record.doc_id)

    def _cluster(self, edges: Iterable[tuple[str, str]], keys: Sequence[str]) -> list[list[str]]:
        """Connected components over duplicate edges (union-find)."""
        parent = {key: key for key in keys}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(x: str, y: str) -> None:
            rx, ry = find(x), find(y)
            if rx != ry:
                parent[ry] = rx

        for a, b in edges:
            union(a, b)
        components: dict[str, list[str]] = defaultdict(list)
        for key in keys:
            components[find(key)].append(key)
        return [sorted(members) for members in components.values() if len(members) >= 2]

    # ------------------------------------------------------------------ #
    def find_duplicates(self, records: Sequence[ParsedRecord]) -> DedupReport:
        """Detect duplicates and pick one representative per cluster."""
        report = DedupReport()
        if not records:
            return report
        by_id: dict[str, ParsedRecord] = {}
        for record in records:
            if record.doc_id in by_id:
                raise ValueError(f"duplicate doc_id in input: {record.doc_id!r}")
            by_id[record.doc_id] = record

        shingles = {r.doc_id: word_shingles(r.text, k=self.shingle_size) for r in records}
        index = LshIndex(n_hashes=self.hasher.n_hashes, n_bands=self.n_bands)
        for record in records:
            index.add(record.doc_id, self.hasher.signature(shingles[record.doc_id]))

        # Exact duplicates are always edges; candidate pairs are verified with
        # the true Jaccard similarity of their shingle sets.
        edges: list[tuple[str, str]] = []
        for group in exact_duplicate_groups([r.text for r in records]):
            ids = [records[i].doc_id for i in group]
            edges.extend((ids[0], other) for other in ids[1:])
        for key_a, key_b in index.candidate_pairs():
            similarity = jaccard_similarity(shingles[key_a], shingles[key_b])
            if similarity >= self.similarity_threshold:
                edges.append((key_a, key_b))

        clusters = self._cluster(edges, [r.doc_id for r in records])
        report.clusters = clusters
        dropped_ids: set[str] = set()
        for cluster in clusters:
            members = [by_id[doc_id] for doc_id in cluster]
            keep = max(members, key=self._preference_key)
            dropped_ids.update(m.doc_id for m in members if m.doc_id != keep.doc_id)
        for record in records:
            if record.doc_id in dropped_ids:
                report.dropped.append(record)
            else:
                report.kept.append(record)
        return report
