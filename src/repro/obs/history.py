"""Bounded in-process metrics history: the data behind ``obs metrics --watch``.

:class:`MetricsHistory` periodically snapshots a
:class:`~repro.obs.metrics.MetricsRegistry` into a fixed-capacity ring
buffer of *flattened* samples (``"metric{label=value,...}" -> number``),
so memory is O(capacity × series) regardless of uptime.  From any two
samples it derives deltas and per-second rates, clamping negative deltas
to zero so a :meth:`~repro.obs.metrics.MetricsRegistry.reset` (or a
process restart behind the same scrape endpoint) reads as a fresh start
rather than a huge negative rate.

Sampling can be driven manually (:meth:`MetricsHistory.sample`, which
the ``--watch`` loop does per tick) or by a background daemon thread
(:meth:`start` / :meth:`stop`) for long-lived daemons that want history
available on demand.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Mapping

from repro.obs import metrics as _metrics

__all__ = ["MetricsHistory", "flatten_snapshot"]


def _series_key(name: str, labels: Mapping[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def flatten_snapshot(snapshot: Mapping[str, Any]) -> dict[str, float]:
    """A registry snapshot as a flat ``series-key -> number`` map.

    Counters and gauges flatten to their value; histograms flatten to
    ``_count`` and ``_sum`` series (bucket detail stays in the full
    snapshot — history tracks trends, not distributions).
    """
    flat: dict[str, float] = {}
    for name, body in snapshot.items():
        kind = body.get("type")
        for series in body.get("values", ()):
            labels = series.get("labels", {})
            if kind == "histogram":
                flat[_series_key(f"{name}_count", labels)] = float(
                    series.get("count", 0)
                )
                flat[_series_key(f"{name}_sum", labels)] = float(
                    series.get("sum", 0.0)
                )
            else:
                flat[_series_key(name, labels)] = float(series.get("value", 0.0))
    return flat


class MetricsHistory:
    """A ring buffer of timestamped flattened registry samples."""

    def __init__(
        self,
        registry: "_metrics.MetricsRegistry | None" = None,
        capacity: int = 256,
    ) -> None:
        if capacity < 2:
            raise ValueError("history needs capacity >= 2 to compute deltas")
        self.registry = registry if registry is not None else _metrics.default_registry()
        self._lock = threading.Lock()
        self._samples: "deque[tuple[float, dict[str, float]]]" = deque(
            maxlen=capacity
        )
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None

    # -- sampling ------------------------------------------------------- #
    def sample(self) -> dict[str, float]:
        """Take one sample now; returns the flattened snapshot."""
        flat = flatten_snapshot(self.registry.snapshot())
        with self._lock:
            self._samples.append((time.time(), flat))
        return flat

    def start(self, interval: float = 5.0) -> "MetricsHistory":
        """Start a background sampler thread at ``interval`` seconds."""
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        if self._thread is not None:
            raise RuntimeError("history sampler already started")
        self._stop.clear()

        def loop() -> None:
            self.sample()
            while not self._stop.wait(interval):
                self.sample()

        self._thread = threading.Thread(
            target=loop, name="repro-obs-history", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsHistory":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- reading -------------------------------------------------------- #
    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def latest(self) -> "tuple[float, dict[str, float]] | None":
        with self._lock:
            return self._samples[-1] if self._samples else None

    def samples(self) -> list[tuple[float, dict[str, float]]]:
        with self._lock:
            return list(self._samples)

    def delta(self, span: int = 1) -> dict[str, float]:
        """Per-series change between the latest sample and ``span`` back.

        Negative deltas (registry reset, counter restart) clamp to zero.
        Series present only in the newer sample count from zero; series
        that vanished (reset dropped them) are omitted rather than
        reported as negative.
        """
        with self._lock:
            if len(self._samples) < 2:
                return {}
            span = max(1, min(span, len(self._samples) - 1))
            _, old = self._samples[-1 - span]
            _, new = self._samples[-1]
        return {
            key: max(0.0, value - old.get(key, 0.0)) for key, value in new.items()
        }

    def rate(self, span: int = 1) -> dict[str, float]:
        """Per-second :meth:`delta` over the sampled wall interval."""
        with self._lock:
            if len(self._samples) < 2:
                return {}
            span = max(1, min(span, len(self._samples) - 1))
            old_ts, old = self._samples[-1 - span]
            new_ts, new = self._samples[-1]
        elapsed = max(1e-9, new_ts - old_ts)
        return {
            key: max(0.0, value - old.get(key, 0.0)) / elapsed
            for key, value in new.items()
        }

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()
