"""Labeled counters, gauges and histograms with Prometheus-style export.

The model is deliberately small: a :class:`MetricsRegistry` owns named
metrics; each metric owns a map from label-value tuples to numbers (or
bucket arrays, for histograms).  A process-wide default registry backs
the module-level helpers (:func:`counter` / :func:`gauge` /
:func:`histogram`) that the instrumented subsystems use, so one
``render_text()`` call exposes the whole process.

Two properties matter more than features:

* **Thread safety** — every mutation happens under the owning metric's
  lock; instruments are called from service worker threads, backend
  pools, gateway readers and cluster reader threads concurrently.
* **A near-zero disabled path** — every mutator checks the registry's
  ``enabled`` flag before taking its lock, so
  ``set_enabled(False)`` reduces instrumentation to one attribute load
  and a branch (``bench_obs_overhead.py`` gates the difference).

Metric names follow Prometheus conventions (``repro_<area>_<what>`` with
``_total`` on counters and base-unit suffixes like ``_seconds``).
"""

from __future__ import annotations

import json
import os
import re
import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "counter",
    "default_registry",
    "gauge",
    "histogram",
    "render_text",
    "reset",
    "set_enabled",
    "snapshot",
]

#: Default histogram bucket upper bounds (seconds-oriented; ``+Inf`` is
#: implicit as the final catch-all bucket).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricError(ValueError):
    """Bad metric declaration or use (name clash, label mismatch, ...)."""


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _Metric:
    """Shared shape: a name, labels, and a value map keyed by label values."""

    kind = "untyped"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: Sequence[str],
    ) -> None:
        self.registry = registry
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._values: dict[tuple[str, ...], Any] = {}

    def _key(self, labels: Mapping[str, Any]) -> tuple[str, ...]:
        if len(labels) != len(self.labelnames) or any(
            name not in labels for name in self.labelnames
        ):
            raise MetricError(
                f"metric {self.name!r} takes labels {sorted(self.labelnames)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _sorted_items(self) -> list[tuple[tuple[str, ...], Any]]:
        with self._lock:
            return sorted(self._values.items())

    def _render_labels(self, key: tuple[str, ...], extra: str = "") -> str:
        pairs = [
            f'{name}="{_escape_label_value(value)}"'
            for name, value in zip(self.labelnames, key)
        ]
        if extra:
            pairs.append(extra)
        return "{" + ",".join(pairs) + "}" if pairs else ""

    def clear(self) -> None:
        with self._lock:
            self._values.clear()


class Counter(_Metric):
    """A monotonically increasing float, optionally labeled."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not self.registry.enabled:
            return
        if amount < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return float(self._values.get(self._key(labels), 0.0))

    def render(self) -> Iterable[str]:
        for key, value in self._sorted_items():
            yield f"{self.name}{self._render_labels(key)} {_format_value(value)}"

    def collect(self) -> list[dict[str, Any]]:
        return [
            {"labels": dict(zip(self.labelnames, key)), "value": value}
            for key, value in self._sorted_items()
        ]


class Gauge(_Metric):
    """A value that goes up and down (queue depths, in-flight counts)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        if not self.registry.enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not self.registry.enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return float(self._values.get(self._key(labels), 0.0))

    render = Counter.render
    collect = Counter.collect


class Histogram(_Metric):
    """Bucketed observations with sum and count (latency distributions)."""

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(registry, name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise MetricError(f"histogram {self.name!r} needs at least one bucket")
        self.buckets = bounds

    def observe(self, value: float, **labels: Any) -> None:
        if not self.registry.enabled:
            return
        key = self._key(labels)
        with self._lock:
            series = self._values.get(key)
            if series is None:
                # [per-bucket counts..., +Inf count, sum, count]
                series = self._values[key] = [0] * (len(self.buckets) + 1) + [0.0, 0]
            series[bisect_left(self.buckets, value)] += 1
            series[-2] += value
            series[-1] += 1

    def value(self, **labels: Any) -> dict[str, Any]:
        """One series as ``{"count": n, "sum": s, "buckets": {le: cumulative}}``."""
        key = self._key(labels)
        with self._lock:
            series = self._values.get(key)
            if series is None:
                return {"count": 0, "sum": 0.0, "buckets": {}}
            return self._series_dict(list(series))

    def _series_dict(self, series: list[Any]) -> dict[str, Any]:
        cumulative = 0
        buckets: dict[str, int] = {}
        for bound, count in zip(self.buckets, series):
            cumulative += count
            buckets[_format_value(bound)] = cumulative
        buckets["+Inf"] = cumulative + series[len(self.buckets)]
        return {"count": series[-1], "sum": series[-2], "buckets": buckets}

    def render(self) -> Iterable[str]:
        for key, series in self._sorted_items():
            data = self._series_dict(list(series))
            for bound, cumulative in data["buckets"].items():
                labels = self._render_labels(key, extra=f'le="{bound}"')
                yield f"{self.name}_bucket{labels} {cumulative}"
            yield f"{self.name}_sum{self._render_labels(key)} {_format_value(data['sum'])}"
            yield f"{self.name}_count{self._render_labels(key)} {data['count']}"

    def collect(self) -> list[dict[str, Any]]:
        return [
            {
                "labels": dict(zip(self.labelnames, key)),
                **self._series_dict(list(series)),
            }
            for key, series in self._sorted_items()
        ]


def _format_value(value: float) -> str:
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)


class MetricsRegistry:
    """A named collection of metrics with get-or-create declaration.

    Declaring the same name twice returns the existing metric, provided
    the kind and label names agree — instrumented modules can therefore
    declare their handles at import time without coordination.
    """

    def __init__(self, enabled: bool = True) -> None:
        #: Read un-locked on every instrument call — the fast path.
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    # -- declaration ---------------------------------------------------- #
    def _declare(self, cls: type, name: str, help: str, labelnames, **kwargs):
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise MetricError(f"invalid label name {label!r} on {name!r}")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                    raise MetricError(
                        f"metric {name!r} already declared as {existing.kind} "
                        f"with labels {existing.labelnames}"
                    )
                if kwargs.get("buckets") is not None:
                    declared = tuple(sorted(float(b) for b in kwargs["buckets"]))
                    if declared != existing.buckets:
                        raise MetricError(
                            f"histogram {name!r} already declared with buckets "
                            f"{existing.buckets}, redeclared with {declared}"
                        )
                return existing
            if kwargs.get("buckets", ...) is None:
                del kwargs["buckets"]  # None means "family default"
            metric = cls(self, name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._declare(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._declare(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: "Sequence[float] | None" = None,
    ) -> Histogram:
        """Declare (or fetch) a histogram.

        ``buckets`` set the upper bounds at declaration time;  ``None``
        means "whatever the metric was (or will be) declared with" —
        :data:`DEFAULT_BUCKETS` on first declaration.  Passing explicit
        buckets that disagree with an earlier declaration raises
        :class:`MetricError` (silently splitting a family across bucket
        layouts would corrupt the exposition).
        """
        return self._declare(Histogram, name, help, labelnames, buckets=buckets)

    # -- control -------------------------------------------------------- #
    def set_enabled(self, enabled: bool) -> None:
        self.enabled = bool(enabled)

    def reset(self) -> None:
        """Zero every series (declarations survive) — test isolation."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.clear()

    # -- export --------------------------------------------------------- #
    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def render_text(self) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> dict[str, Any]:
        """All series as a JSON-trivial dict (the ``obs metrics --json`` body)."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        return {
            metric.name: {
                "type": metric.kind,
                "help": metric.help,
                "values": metric.collect(),
            }
            for metric in metrics
        }

    def snapshot_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True)


#: The process-wide registry every built-in instrument publishes into.
#: ``REPRO_OBS_METRICS=0`` in the environment starts it disabled.
_DEFAULT_REGISTRY = MetricsRegistry(
    enabled=os.environ.get("REPRO_OBS_METRICS", "1") not in ("0", "false", "off")
)


def default_registry() -> MetricsRegistry:
    return _DEFAULT_REGISTRY


def counter(name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
    return _DEFAULT_REGISTRY.counter(name, help, labelnames)


def gauge(name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
    return _DEFAULT_REGISTRY.gauge(name, help, labelnames)


def histogram(
    name: str,
    help: str = "",
    labelnames: Sequence[str] = (),
    buckets: "Sequence[float] | None" = None,
) -> Histogram:
    return _DEFAULT_REGISTRY.histogram(name, help, labelnames, buckets)


def set_enabled(enabled: bool) -> None:
    _DEFAULT_REGISTRY.set_enabled(enabled)


def render_text() -> str:
    return _DEFAULT_REGISTRY.render_text()


def snapshot() -> dict[str, Any]:
    return _DEFAULT_REGISTRY.snapshot()


def reset() -> None:
    _DEFAULT_REGISTRY.reset()
