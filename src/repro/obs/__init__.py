"""repro.obs — the observability layer: metrics, tracing, structured logging.

Three pillars, one import:

* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry` of
  labeled counters / gauges / histograms with a process-wide default
  registry, Prometheus-style text exposition and a JSON snapshot.  The
  hot surfaces (cache, backends, service, cluster, gateway) publish
  into the default registry; their existing ``stats()`` APIs are
  unchanged and fed from the same call sites.
* :mod:`repro.obs.tracing` — :class:`TraceContext` (trace id + span id)
  propagated via contextvars locally and as optional, version-tolerant
  fields on the gateway and cluster wire frames; :func:`span` records
  timed spans into a bounded :class:`SpanRecorder` so one request can be
  followed gateway → service → backend → worker shard.
* :mod:`repro.obs.logging` — stdlib-``logging`` setup for the daemons:
  NDJSON or text to stderr, trace ids injected from the active context.

Everything here is stdlib-only and cheap to import, but the package is
still *lazily* reached: ``import repro`` does not import ``repro.obs``
(guarded by a test), and every instrument is a near no-op when metrics
or tracing are disabled (guarded by ``bench_obs_overhead.py``).
"""

from __future__ import annotations

from repro.obs import logging, metrics, tracing
from repro.obs.logging import get_logger, log_event
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.tracing import SpanRecorder, TraceContext, current_trace, span

__all__ = [
    "MetricsRegistry",
    "SpanRecorder",
    "TraceContext",
    "current_trace",
    "default_registry",
    "get_logger",
    "log_event",
    "logging",
    "metrics",
    "span",
    "tracing",
]
