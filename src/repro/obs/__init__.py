"""repro.obs — observability: metrics, tracing, logging, profiling, history.

Five pillars, one import:

* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry` of
  labeled counters / gauges / histograms with a process-wide default
  registry, Prometheus-style text exposition and a JSON snapshot.  The
  hot surfaces (cache, backends, service, cluster, gateway) publish
  into the default registry; their existing ``stats()`` APIs are
  unchanged and fed from the same call sites.
* :mod:`repro.obs.tracing` — :class:`TraceContext` (trace id + span id)
  propagated via contextvars locally and as optional, version-tolerant
  fields on the gateway and cluster wire frames; :func:`span` records
  timed spans into a bounded :class:`SpanRecorder` so one request can be
  followed gateway → service → backend → worker shard.
* :mod:`repro.obs.logging` — stdlib-``logging`` setup for the daemons:
  NDJSON or text to stderr, trace ids injected from the active context.
* :mod:`repro.obs.profiling` — :class:`PhaseTimer` phase attribution for
  the pipeline hot path (``ParseReport.phases``, merged across all
  backends including remote shards) and an opt-in :class:`StackSampler`
  whose collapsed-stack :class:`Profile` output backs ``obs profile``
  and the gateway ``PROFILE`` RPC.
* :mod:`repro.obs.history` — a bounded :class:`MetricsHistory` ring
  buffer over the default registry: timestamped flattened samples with
  delta/rate readouts, behind ``obs metrics --watch`` and ``obs top``.

Everything here is stdlib-only and cheap to import, but the package is
still *lazily* reached: ``import repro`` does not import ``repro.obs``
(guarded by a test), and every instrument is a near no-op when metrics,
tracing or phase attribution are disabled (guarded by
``bench_obs_overhead.py`` / ``bench_profile_overhead.py``).
"""

from __future__ import annotations

from repro.obs import history, logging, metrics, profiling, tracing
from repro.obs.history import MetricsHistory
from repro.obs.logging import get_logger, log_event
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.profiling import PhaseTimer, Profile, StackSampler
from repro.obs.tracing import SpanRecorder, TraceContext, current_trace, span

__all__ = [
    "MetricsHistory",
    "MetricsRegistry",
    "PhaseTimer",
    "Profile",
    "SpanRecorder",
    "StackSampler",
    "TraceContext",
    "current_trace",
    "default_registry",
    "get_logger",
    "history",
    "log_event",
    "logging",
    "metrics",
    "profiling",
    "span",
    "tracing",
]
