"""Distributed tracing: trace contexts, spans, and a bounded recorder.

A :class:`TraceContext` is two hex ids — the trace (one per request) and
the *active span* within it.  It travels three ways:

* **locally** via a contextvar: :func:`activate` installs a context for
  a code region, :func:`span` opens a timed child span and makes it the
  active context for its body;
* **across threads** via :func:`bind`: thread pools do not inherit
  contextvars, so the pipeline captures the active context once when it
  composes a batch worker and re-activates it inside whichever pool
  thread runs the batch;
* **across processes** as plain dicts (:meth:`TraceContext.to_json_dict`
  / :meth:`TraceContext.from_wire`) on optional, version-tolerant wire
  fields — old peers simply ignore them.

Finished spans land in a :class:`SpanRecorder` — bounded FIFO per trace
and across traces, so a long-lived daemon cannot leak.  Workers record
into a per-job recorder (:func:`use_recorder`), ship the span dicts back
inside ``batch_result`` frames, and the coordinator ingests them into
the process default — which is how ``obs trace`` on the gateway shows
gateway → service → backend → worker-shard in one tree.

Everything is a near no-op when no trace is active or tracing is
disabled (:func:`set_enabled`): :func:`span` then yields ``None``
without touching a lock or the clock.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from secrets import token_hex
from time import perf_counter
from typing import Any, Callable, Iterable, Iterator, Mapping

__all__ = [
    "SpanRecorder",
    "TraceContext",
    "activate",
    "bind",
    "build_tree",
    "current_trace",
    "current_trace_id",
    "default_recorder",
    "enabled",
    "ensure_trace",
    "record_span",
    "set_enabled",
    "span",
    "use_recorder",
]


@dataclass(frozen=True)
class TraceContext:
    """One trace id plus the currently active span id within it."""

    trace_id: str
    span_id: str

    @classmethod
    def new(cls) -> "TraceContext":
        return cls(trace_id=token_hex(8), span_id=token_hex(4))

    def child(self) -> "TraceContext":
        """Same trace, fresh span id (the active-span handoff)."""
        return TraceContext(self.trace_id, token_hex(4))

    def to_json_dict(self) -> dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, payload: Any) -> "TraceContext | None":
        """Parse an optional wire field; anything malformed is ``None``.

        Version tolerance in one place: peers that predate tracing send
        nothing, and garbage from any peer degrades to "no trace" rather
        than a protocol error.
        """
        if not isinstance(payload, Mapping):
            return None
        trace_id = str(payload.get("trace_id") or "")
        if not trace_id:
            return None
        return cls(trace_id=trace_id, span_id=str(payload.get("span_id") or ""))


class SpanRecorder:
    """Thread-safe, bounded storage of finished spans, grouped by trace.

    Traces evict oldest-first once ``max_traces`` is reached; within a
    trace, spans beyond ``max_spans_per_trace`` are counted as dropped
    rather than stored.  Span records are plain dicts (the wire schema)::

        {"name": ..., "trace_id": ..., "span_id": ..., "parent_id": ...,
         "start_ts": <wall clock>, "duration_s": ..., "status": "ok"|"error",
         "attributes": {...}}
    """

    def __init__(self, max_traces: int = 256, max_spans_per_trace: int = 2048) -> None:
        if max_traces < 1 or max_spans_per_trace < 1:
            raise ValueError("recorder bounds must be positive")
        self.max_traces = max_traces
        self.max_spans_per_trace = max_spans_per_trace
        self._lock = threading.Lock()
        #: trace id → spans, insertion-ordered for FIFO trace eviction.
        self._traces: dict[str, list[dict[str, Any]]] = {}
        self.dropped_spans = 0

    def record(self, span_record: Mapping[str, Any]) -> None:
        trace_id = str(span_record.get("trace_id") or "")
        if not trace_id:
            return
        with self._lock:
            spans = self._traces.get(trace_id)
            if spans is None:
                while len(self._traces) >= self.max_traces:
                    self._traces.pop(next(iter(self._traces)))
                spans = self._traces[trace_id] = []
            if len(spans) >= self.max_spans_per_trace:
                self.dropped_spans += 1
                return
            spans.append(dict(span_record))

    def ingest(self, span_records: Iterable[Mapping[str, Any]]) -> int:
        """Record span dicts that arrived over the wire; returns the count."""
        count = 0
        for span_record in span_records or ():
            if isinstance(span_record, Mapping):
                self.record(span_record)
                count += 1
        return count

    def spans(self, trace_id: str) -> list[dict[str, Any]]:
        with self._lock:
            return [dict(s) for s in self._traces.get(trace_id, ())]

    def trace_ids(self) -> list[str]:
        with self._lock:
            return list(self._traces)

    def tree(self, trace_id: str) -> list[dict[str, Any]]:
        """The trace as nested root nodes (see :func:`build_tree`)."""
        return build_tree(self.spans(trace_id))

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
            self.dropped_spans = 0


def build_tree(spans: Iterable[Mapping[str, Any]]) -> list[dict[str, Any]]:
    """Nest flat span records by ``parent_id``; orphans become roots.

    Children are ordered by wall-clock start so the tree reads as a
    timeline even when spans arrived out of order (worker spans are
    ingested after the coordinator's own).
    """
    nodes: dict[str, dict[str, Any]] = {}
    ordered: list[dict[str, Any]] = []
    for record in spans:
        node = dict(record)
        node["children"] = []
        span_id = str(node.get("span_id") or "")
        if span_id:
            nodes[span_id] = node
        ordered.append(node)
    roots: list[dict[str, Any]] = []
    for node in ordered:
        parent = nodes.get(str(node.get("parent_id") or ""))
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    def start(node: dict[str, Any]) -> float:
        return float(node.get("start_ts") or 0.0)
    for node in ordered:
        node["children"].sort(key=start)
    roots.sort(key=start)
    return roots


# ---------------------------------------------------------------------- #
# Ambient state: the active trace, the active recorder, the enable flag
# ---------------------------------------------------------------------- #
_CURRENT_TRACE: ContextVar[TraceContext | None] = ContextVar(
    "repro_obs_trace", default=None
)
_CURRENT_RECORDER: ContextVar[SpanRecorder | None] = ContextVar(
    "repro_obs_recorder", default=None
)
_DEFAULT_RECORDER = SpanRecorder()
_ENABLED = os.environ.get("REPRO_OBS_TRACING", "1") not in ("0", "false", "off")


def enabled() -> bool:
    return _ENABLED


def set_enabled(flag: bool) -> None:
    global _ENABLED
    _ENABLED = bool(flag)


def default_recorder() -> SpanRecorder:
    return _DEFAULT_RECORDER


def active_recorder() -> SpanRecorder:
    return _CURRENT_RECORDER.get() or _DEFAULT_RECORDER


def current_trace() -> TraceContext | None:
    return _CURRENT_TRACE.get()


def current_trace_id() -> str | None:
    context = _CURRENT_TRACE.get()
    return context.trace_id if context is not None else None


@contextmanager
def activate(context: TraceContext | None) -> Iterator[TraceContext | None]:
    """Install ``context`` as the active trace for the ``with`` body."""
    token = _CURRENT_TRACE.set(context)
    try:
        yield context
    finally:
        _CURRENT_TRACE.reset(token)


@contextmanager
def use_recorder(recorder: SpanRecorder) -> Iterator[SpanRecorder]:
    """Route spans in the ``with`` body to ``recorder`` (worker jobs)."""
    token = _CURRENT_RECORDER.set(recorder)
    try:
        yield recorder
    finally:
        _CURRENT_RECORDER.reset(token)


@contextmanager
def ensure_trace() -> Iterator[TraceContext | None]:
    """Yield the active trace, starting a fresh root one if none exists."""
    existing = _CURRENT_TRACE.get()
    if existing is not None or not _ENABLED:
        yield existing
        return
    with activate(TraceContext.new()) as context:
        yield context


@contextmanager
def span(
    name: str, attributes: Mapping[str, Any] | None = None
) -> Iterator[TraceContext | None]:
    """Open a timed child span of the active trace for the ``with`` body.

    With no active trace (or tracing disabled) this yields ``None`` and
    records nothing — library code can instrument unconditionally.  The
    body runs with the new span as the active context, so nested spans
    and :func:`repro.obs.logging` records parent/correlate correctly.
    An escaping exception marks the span ``status="error"``.
    """
    parent = _CURRENT_TRACE.get()
    if parent is None or not _ENABLED:
        yield None
        return
    context = parent.child()
    token = _CURRENT_TRACE.set(context)
    recorder = _CURRENT_RECORDER.get() or _DEFAULT_RECORDER
    start_ts = time.time()
    started = perf_counter()
    status = "ok"
    try:
        yield context
    except BaseException:
        status = "error"
        raise
    finally:
        _CURRENT_TRACE.reset(token)
        recorder.record(
            {
                "name": name,
                "trace_id": context.trace_id,
                "span_id": context.span_id,
                "parent_id": parent.span_id,
                "start_ts": round(start_ts, 6),
                "duration_s": round(perf_counter() - started, 6),
                "status": status,
                "attributes": dict(attributes or {}),
            }
        )


def record_span(
    name: str,
    *,
    parent: TraceContext,
    duration_s: float,
    attributes: Mapping[str, Any] | None = None,
    status: str = "ok",
    recorder: SpanRecorder | None = None,
) -> str | None:
    """Record an externally timed span (e.g. queue wait measured after the
    fact); returns the new span id, or ``None`` when tracing is disabled."""
    if not _ENABLED:
        return None
    context = parent.child()
    (recorder or active_recorder()).record(
        {
            "name": name,
            "trace_id": parent.trace_id,
            "span_id": context.span_id,
            "parent_id": parent.span_id,
            "start_ts": round(time.time() - duration_s, 6),
            "duration_s": round(duration_s, 6),
            "status": status,
            "attributes": dict(attributes or {}),
        }
    )
    return context.span_id


def bind(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Capture the active trace/recorder and re-activate them around every
    call to ``fn`` — the bridge into thread pools, which do not inherit
    contextvars.  With nothing to capture, ``fn`` is returned unwrapped."""
    context = _CURRENT_TRACE.get()
    if context is None or not _ENABLED:
        return fn
    recorder = _CURRENT_RECORDER.get()

    def bound(*args: Any, **kwargs: Any) -> Any:
        trace_token = _CURRENT_TRACE.set(context)
        recorder_token = _CURRENT_RECORDER.set(recorder) if recorder else None
        try:
            return fn(*args, **kwargs)
        finally:
            _CURRENT_TRACE.reset(trace_token)
            if recorder_token is not None:
                _CURRENT_RECORDER.reset(recorder_token)

    return bound
