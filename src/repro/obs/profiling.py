"""Phase attribution and sampling profiler: *where did the time go?*

Two instruments, both zero-dependency:

* :class:`PhaseTimer` — named, nestable wall+CPU phase accounting for the
  pipeline hot path.  A timer is made ambient with :func:`use_timer`
  (contextvar, so it survives ``await`` and can be re-bound into pool
  threads); instrumented code brackets work with the module-level
  :func:`phase` helper, which is a near no-op when no timer is active or
  phases are disabled (``REPRO_OBS_PHASES=0``).  Self time is computed
  per thread via a frame stack: a nested phase charges its wall time to
  the parent frame's ``child_wall``, so the parent's *self* seconds
  exclude it.  Tables from child workers (threads, processes, remote
  shards) fold back with :meth:`PhaseTimer.merge_table`, which also
  credits the merged work to the currently open phase — the pipeline's
  ``parse`` phase therefore reports orchestration overhead as self time
  and delegated work under the child phase names, on every backend.
* :class:`StackSampler` — an opt-in (``REPRO_OBS_PROFILING=1`` or
  ``--profile``) sampling profiler over :func:`sys._current_frames`,
  aggregating periodic stack snapshots of every thread in the process
  into a :class:`Profile` whose :meth:`~Profile.collapsed` output is
  flamegraph-compatible (``frame;frame;frame count`` lines).  Profiles
  are retained in a bounded process-wide :class:`ProfileStore` keyed by
  ticket/shard id, which backs the gateway ``PROFILE`` RPC and
  ``obs profile TICKET-ID``.

Phase tables are plain dicts of plain floats — JSON-trivial, mergeable
by key, and shippable inside cluster ``batch_result`` frames exactly
like trace spans.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator, Mapping

__all__ = [
    "PHASE_SECONDS_BUCKETS",
    "PhaseTimer",
    "Profile",
    "ProfileStore",
    "StackSampler",
    "current_timer",
    "default_store",
    "phase",
    "phase_seconds_histogram",
    "phases_enabled",
    "profiling_enabled",
    "record",
    "set_phases_enabled",
    "set_profiling_enabled",
    "use_timer",
]

#: Default buckets for the ``repro_phase_duration_seconds`` histogram.
#: Phase durations are dominated by sub-millisecond work (cache key
#: hashing, validation) with a long parse tail, so the family default is
#: finer at the bottom than :data:`repro.obs.metrics.DEFAULT_BUCKETS`.
PHASE_SECONDS_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    10.0,
)

_ROW_KEYS = ("total_s", "self_s", "cpu_s", "calls", "bytes")

_PHASES_ENABLED = os.environ.get("REPRO_OBS_PHASES", "1") not in ("0", "false", "off")
_PROFILING_ENABLED = os.environ.get("REPRO_OBS_PROFILING", "0") in ("1", "true", "on")


def phases_enabled() -> bool:
    """Whether phase attribution is globally enabled (default: yes)."""
    return _PHASES_ENABLED


def set_phases_enabled(enabled: bool) -> None:
    global _PHASES_ENABLED
    _PHASES_ENABLED = bool(enabled)


def profiling_enabled() -> bool:
    """Whether the sampling profiler is globally enabled (default: no)."""
    return _PROFILING_ENABLED


def set_profiling_enabled(enabled: bool) -> None:
    global _PROFILING_ENABLED
    _PROFILING_ENABLED = bool(enabled)


def phase_seconds_histogram():
    """The shared ``repro_phase_duration_seconds`` histogram handle."""
    from repro.obs import metrics as _metrics

    return _metrics.histogram(
        "repro_phase_duration_seconds",
        "Wall seconds spent per attributed pipeline phase",
        labelnames=("phase",),
        buckets=PHASE_SECONDS_BUCKETS,
    )


# ---------------------------------------------------------------------- #
# Phase attribution
# ---------------------------------------------------------------------- #
class PhaseTimer:
    """Accumulates per-phase wall/CPU seconds, thread-safe and nestable.

    The accumulated table maps phase name to a row of
    ``{"total_s", "self_s", "cpu_s", "calls", "bytes"}``.  ``total_s``
    includes nested phases; ``self_s`` excludes them, so summing
    ``self_s`` over all phases approximates the attributed wall time
    without double counting.  ``cpu_s`` is per-thread CPU time
    (:func:`time.thread_time`) and is *not* adjusted for nesting across
    threads — thread CPU clocks never include other threads' work.
    """

    __slots__ = ("_lock", "_phases", "_local")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._phases: dict[str, dict[str, float]] = {}
        self._local = threading.local()

    def _stack(self) -> list[list[float]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _accumulate(
        self,
        name: str,
        total_s: float,
        self_s: float,
        cpu_s: float,
        calls: int,
        n_bytes: int,
    ) -> None:
        with self._lock:
            row = self._phases.get(name)
            if row is None:
                row = self._phases[name] = dict.fromkeys(_ROW_KEYS, 0.0)
            row["total_s"] += total_s
            row["self_s"] += self_s
            row["cpu_s"] += cpu_s
            row["calls"] += calls
            row["bytes"] += n_bytes

    @contextmanager
    def phase(self, name: str, n_bytes: int = 0) -> Iterator[None]:
        """Time a phase; nested phases subtract from this one's self time."""
        stack = self._stack()
        # [start_wall, start_cpu, child_wall]
        frame = [time.perf_counter(), time.thread_time(), 0.0]
        stack.append(frame)
        try:
            yield
        finally:
            stack.pop()
            wall = time.perf_counter() - frame[0]
            cpu = time.thread_time() - frame[1]
            if stack:
                stack[-1][2] += wall
            self._accumulate(
                name,
                total_s=wall,
                self_s=max(0.0, wall - frame[2]),
                cpu_s=max(0.0, cpu),
                calls=1,
                n_bytes=n_bytes,
            )

    def record(
        self,
        name: str,
        seconds: float,
        cpu_seconds: float = 0.0,
        calls: int = 1,
        n_bytes: int = 0,
    ) -> None:
        """Accumulate externally measured leaf time under ``name``.

        For call sites that time themselves (tight loops amortising one
        record over many iterations).  The time is charged to the
        enclosing open phase's children, like a nested :meth:`phase`.
        """
        stack = self._stack()
        if stack:
            stack[-1][2] += seconds
        self._accumulate(
            name,
            total_s=seconds,
            self_s=seconds,
            cpu_s=cpu_seconds,
            calls=calls,
            n_bytes=n_bytes,
        )

    def merge_table(self, table: Mapping[str, Mapping[str, float]]) -> None:
        """Fold a child worker's snapshot into this timer.

        The merged table's attributed wall (summed ``self_s``) is charged
        to the calling thread's open phase — merging a shard's table
        inside the ``parse`` phase leaves ``parse`` self time covering
        only orchestration, with the delegated work under its own keys.
        """
        if not table:
            return
        covered = 0.0
        for name, row in table.items():
            self_s = float(row.get("self_s", 0.0))
            covered += self_s
            self._accumulate(
                str(name),
                total_s=float(row.get("total_s", 0.0)),
                self_s=self_s,
                cpu_s=float(row.get("cpu_s", 0.0)),
                calls=int(row.get("calls", 0)),
                n_bytes=int(row.get("bytes", 0)),
            )
        stack = self._stack()
        if stack:
            stack[-1][2] += covered

    def snapshot(self) -> dict[str, dict[str, float]]:
        """The accumulated table as a JSON-trivial dict, sorted by name."""
        with self._lock:
            return {
                name: dict(self._phases[name]) for name in sorted(self._phases)
            }

    def clear(self) -> None:
        with self._lock:
            self._phases.clear()


_CURRENT_TIMER: ContextVar["PhaseTimer | None"] = ContextVar(
    "repro_phase_timer", default=None
)


def current_timer() -> "PhaseTimer | None":
    """The ambient :class:`PhaseTimer`, or ``None``."""
    return _CURRENT_TIMER.get()


@contextmanager
def use_timer(timer: "PhaseTimer | None") -> Iterator["PhaseTimer | None"]:
    """Make ``timer`` ambient for the duration of the block."""
    token = _CURRENT_TIMER.set(timer)
    try:
        yield timer
    finally:
        _CURRENT_TIMER.reset(token)


@contextmanager
def phase(name: str, n_bytes: int = 0) -> Iterator[None]:
    """Time a phase on the ambient timer; no-op without one (or disabled)."""
    timer = _CURRENT_TIMER.get() if _PHASES_ENABLED else None
    if timer is None:
        yield
        return
    with timer.phase(name, n_bytes=n_bytes):
        yield


def record(
    name: str,
    seconds: float,
    cpu_seconds: float = 0.0,
    calls: int = 1,
    n_bytes: int = 0,
) -> None:
    """Record leaf time on the ambient timer; no-op without one."""
    timer = _CURRENT_TIMER.get() if _PHASES_ENABLED else None
    if timer is not None:
        timer.record(
            name, seconds, cpu_seconds=cpu_seconds, calls=calls, n_bytes=n_bytes
        )


# ---------------------------------------------------------------------- #
# Sampling profiler
# ---------------------------------------------------------------------- #
def _format_frame(frame: Any) -> str:
    code = frame.f_code
    filename = code.co_filename.rsplit("/", 1)[-1]
    return f"{filename}:{code.co_name}"


class Profile:
    """An aggregated set of sampled stacks (collapsed-stack counts)."""

    __slots__ = ("counts", "interval")

    def __init__(
        self,
        counts: "Mapping[str, int] | None" = None,
        interval: float = 0.01,
    ) -> None:
        #: ``"root;mid;leaf" -> sample count``
        self.counts: dict[str, int] = dict(counts or {})
        self.interval = float(interval)

    @property
    def n_samples(self) -> int:
        return sum(self.counts.values())

    def add_stack(self, stack: str, count: int = 1) -> None:
        self.counts[stack] = self.counts.get(stack, 0) + count

    def merge(self, other: "Profile") -> None:
        for stack, count in other.counts.items():
            self.add_stack(stack, count)

    def collapsed(self) -> str:
        """Flamegraph-compatible collapsed-stack lines, busiest first."""
        ordered = sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return "\n".join(f"{stack} {count}" for stack, count in ordered)

    def top(self, n: int = 10) -> list[tuple[str, int]]:
        """The ``n`` hottest leaf frames by inclusive-of-leaf sample count."""
        leaves: dict[str, int] = {}
        for stack, count in self.counts.items():
            leaf = stack.rsplit(";", 1)[-1]
            leaves[leaf] = leaves.get(leaf, 0) + count
        ordered = sorted(leaves.items(), key=lambda kv: (-kv[1], kv[0]))
        return ordered[: max(0, n)]

    def to_dict(self) -> dict[str, Any]:
        return {
            "interval": self.interval,
            "n_samples": self.n_samples,
            "counts": dict(self.counts),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Profile":
        counts = payload.get("counts") or {}
        return cls(
            counts={str(k): int(v) for k, v in counts.items()},
            interval=float(payload.get("interval", 0.01)),
        )


class StackSampler:
    """Periodic whole-process stack sampler (``sys._current_frames``).

    Samples *every* thread except its own at ``interval`` seconds and
    aggregates into a :class:`Profile`.  Overhead scales with thread
    count and stack depth, not with work done — a 10ms interval costs a
    few percent on a parse-dominated run (``bench_profile_overhead.py``
    gates it).  ``max_samples`` bounds memory for long-lived runs.
    """

    def __init__(self, interval: float = 0.01, max_samples: int = 200_000) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.interval = float(interval)
        self.max_samples = int(max_samples)
        self.profile = Profile(interval=self.interval)
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None
        self._taken = 0

    def _sample_once(self, own_ident: "int | None") -> None:
        for ident, frame in sys._current_frames().items():
            if ident == own_ident:
                continue
            parts: list[str] = []
            depth = 0
            while frame is not None and depth < 128:
                parts.append(_format_frame(frame))
                frame = frame.f_back
                depth += 1
            if parts:
                self.profile.add_stack(";".join(reversed(parts)))
                self._taken += 1

    def _loop(self) -> None:
        own = threading.get_ident()
        while not self._stop.wait(self.interval):
            if self._taken >= self.max_samples:
                break
            self._sample_once(own)

    def start(self) -> "StackSampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-obs-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> Profile:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        return self.profile

    def __enter__(self) -> "StackSampler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


class ProfileStore:
    """A bounded, process-wide id → :class:`Profile` map (oldest evicted)."""

    def __init__(self, max_profiles: int = 64) -> None:
        self.max_profiles = int(max_profiles)
        self._lock = threading.Lock()
        self._profiles: dict[str, Profile] = {}

    def put(self, key: str, profile: Profile) -> None:
        with self._lock:
            self._profiles.pop(key, None)
            self._profiles[key] = profile
            while len(self._profiles) > self.max_profiles:
                self._profiles.pop(next(iter(self._profiles)))

    def get(self, key: str) -> "Profile | None":
        with self._lock:
            return self._profiles.get(key)

    def merge_into(self, key: str, profile: Profile) -> None:
        """Merge ``profile`` into the stored entry (creating it if absent)."""
        with self._lock:
            existing = self._profiles.pop(key, None)
            if existing is None:
                existing = Profile(interval=profile.interval)
            existing.merge(profile)
            self._profiles[key] = existing
            while len(self._profiles) > self.max_profiles:
                self._profiles.pop(next(iter(self._profiles)))

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._profiles)

    def clear(self) -> None:
        with self._lock:
            self._profiles.clear()


_DEFAULT_STORE = ProfileStore()


def default_store() -> ProfileStore:
    return _DEFAULT_STORE
