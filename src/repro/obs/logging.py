"""Structured logging for the daemons: NDJSON or text, always to stderr.

The library itself never configures handlers — every ``repro.*`` logger
hangs off one ``repro`` root that carries a ``NullHandler``, so
importing and instrumenting is silent by default.  Daemons opt in with
:func:`setup` (the CLI's ``--log-level`` / ``--log-json`` flags), which
installs a single stderr handler:

* text mode — ``2026-08-08T12:00:00 INFO repro.gateway submit ok
  ticket=t-1 trace=ab12...``;
* JSON mode — one NDJSON object per record with ``ts`` / ``level`` /
  ``logger`` / ``event`` plus every structured field.

Either way the active :class:`~repro.obs.tracing.TraceContext`'s trace
id is injected automatically, which is what lets a gateway operator grep
one trace id across client events, gateway logs and span trees.

Keeping diagnostics on **stderr** is load-bearing: the daemon commands
promise that their machine-readable ready line is the only stdout
output, so pipe readers (the ``cluster`` spawner, CI smoke jobs) can
``readline()`` stdout without parsing around human chatter.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, IO

from repro.obs import tracing

__all__ = ["get_logger", "log_event", "setup"]

#: Every repro logger is a child of this root.
ROOT_LOGGER_NAME = "repro"

# Silence by default: library users who never call setup() see nothing,
# not logging's "no handler" warning.
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}


def get_logger(name: str = ROOT_LOGGER_NAME) -> logging.Logger:
    """A ``repro``-rooted logger (bare names are prefixed)."""
    if name != ROOT_LOGGER_NAME and not name.startswith(ROOT_LOGGER_NAME + "."):
        name = f"{ROOT_LOGGER_NAME}.{name}"
    return logging.getLogger(name)


def _record_fields(record: logging.LogRecord) -> dict[str, Any]:
    fields = getattr(record, "repro_fields", None)
    return dict(fields) if isinstance(fields, dict) else {}


def _record_trace_id(record: logging.LogRecord) -> str | None:
    explicit = getattr(record, "trace_id", None)
    if explicit:
        return str(explicit)
    return tracing.current_trace_id()


class JsonFormatter(logging.Formatter):
    """One NDJSON object per record; structured fields merged flat."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        trace_id = _record_trace_id(record)
        if trace_id:
            payload["trace_id"] = trace_id
        for key, value in _record_fields(record).items():
            payload.setdefault(key, value)
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, sort_keys=False)


class TextFormatter(logging.Formatter):
    """Human-oriented single line: timestamp, level, logger, event, k=v."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%Y-%m-%dT%H:%M:%S", time.localtime(record.created))
        parts = [stamp, record.levelname, record.name, record.getMessage()]
        for key, value in _record_fields(record).items():
            parts.append(f"{key}={value}")
        trace_id = _record_trace_id(record)
        if trace_id:
            parts.append(f"trace={trace_id}")
        line = " ".join(str(part) for part in parts)
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


def setup(
    level: str = "info",
    json_mode: bool = False,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """Configure the ``repro`` root logger for a daemon process.

    Idempotent: calling again replaces the handler this function
    installed (flag flips in tests, re-exec in daemons) instead of
    stacking duplicates.  Returns the configured root logger.
    """
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    logger.setLevel(_LEVELS.get(str(level).lower(), logging.INFO))
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if json_mode else TextFormatter())
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    for existing in list(logger.handlers):
        if getattr(existing, "_repro_obs_handler", False):
            logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.propagate = False
    return logger


def log_event(
    logger: logging.Logger, level: int | str, event: str, **fields: Any
) -> None:
    """Log ``event`` with structured ``fields`` (the preferred call shape:
    a stable event name plus k=v data, not a formatted sentence).

    ``level`` is a ``logging`` constant or its lowercase name.
    """
    if isinstance(level, str):
        level = _LEVELS.get(level.lower(), logging.INFO)
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={"repro_fields": fields})
