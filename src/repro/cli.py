"""Command-line interface of the reproduction.

Examples
--------
Build a corpus and write it to disk as SimPDF archives::

    adaparse-repro corpus --documents 200 --output /tmp/corpus

Regenerate the quality tables at a reduced scale::

    adaparse-repro tables --documents 240 --output results.md

Run the scalability sweep (Figure 5)::

    adaparse-repro scaling --nodes 1 2 4 8 16 --docs-per-node 100

Run the preference-alignment analysis (Section 7.1)::

    adaparse-repro alignment --documents 120

Assemble an LLM-training dataset (parse → filter → dedup → shard)::

    adaparse-repro dataset --documents 200 --parser pymupdf --output /tmp/dataset

Run the unified parsing pipeline and dump the ``ParseReport`` as JSON::

    adaparse-repro pipeline --documents 100 --parser pymupdf \
        --backend thread --backend-opt n_jobs=4

Parse a real document tree instead of the synthetic corpus — any
registered document source works (``--source KIND:VALUE``)::

    adaparse-repro pipeline --source html-dir:docs/site --parser pymupdf
    adaparse-repro dataset --source crawl-dump:/data/crawl --output /tmp/webset

Run the same corpus through worker processes or the simulated cluster::

    adaparse-repro pipeline --documents 100 --backend process --backend-opt n_jobs=4
    adaparse-repro pipeline --documents 100 --backend hpc --backend-opt n_nodes=16

Warm the persistent parse cache, inspect it, and run against it::

    adaparse-repro cache warm --dir /tmp/parse-cache --documents 200
    adaparse-repro cache stats --dir /tmp/parse-cache
    adaparse-repro pipeline --documents 200 --cache readwrite --cache-dir /tmp/parse-cache
    adaparse-repro cache purge --dir /tmp/parse-cache

Serve many concurrent requests from one backend + one cache (streams
NDJSON progress events; identical corpora dedup via cross-request
single-flight), or submit a single request the client-side way::

    adaparse-repro serve --documents 100 --requests 4 --backend async \
        --backend-opt n_jobs=8 --cache readwrite
    adaparse-repro submit --documents 50 --parser pymupdf --priority 5

Run a distributed cluster: worker daemons plus a coordinated request
(``cluster`` spawns local workers, runs end to end, and prints the
placement/dedup summary; ``worker`` is the long-running daemon mode)::

    adaparse-repro worker --port 9101 --backend thread --backend-opt n_jobs=2
    adaparse-repro cluster --workers 2 --documents 100 --parser pymupdf
    adaparse-repro pipeline --documents 100 --backend remote \
        --backend-opt workers=127.0.0.1:9101,127.0.0.1:9102

Observability: scrape a live gateway's metrics (Prometheus text or JSON,
one-shot or watched), pretty-print one ticket's distributed span tree or
sampled stack profile, and keep a live top view of the whole service::

    adaparse-repro obs metrics --host 127.0.0.1 --port 9900
    adaparse-repro obs metrics --host 127.0.0.1 --port 9900 --watch
    adaparse-repro obs trace TICKET-ID --port 9900
    adaparse-repro obs profile TICKET-ID --port 9900 --top 10
    adaparse-repro obs top --port 9900

Profile any run directly with ``--profile`` (collapsed stacks on
stderr; on ``serve``/``gateway``/``worker`` it samples per ticket/shard
instead, feeding the PROFILE RPC)::

    adaparse-repro pipeline --documents 100 --profile
    adaparse-repro cluster --workers 2 --documents 100 --profile

The daemon subcommands (``serve``/``gateway``/``worker``/``cluster``)
accept ``--log-level`` and ``--log-json``; structured logs go to stderr,
leaving stdout for machine-readable output (the ready line, reports).

Splice the benchmark harness's measured results into ``EXPERIMENTS.md``::

    adaparse-repro fill-experiments

All parsing subcommands are built on :class:`repro.pipeline.ParsePipeline`:
one facade resolves parser/engine names, batches documents, enforces the α
routing budget, and returns results plus routing telemetry.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _coerce_opt_value(raw: str):
    """Coerce a ``--backend-opt`` value: bool (``true``/``false``), int,
    float, then string."""
    lowered = raw.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for convert in (int, float):
        try:
            return convert(raw)
        except ValueError:
            continue
    return raw


def _parse_backend_opts(pairs: list[str] | None) -> dict:
    """Turn repeated ``--backend-opt key=value`` flags into an options dict."""
    options: dict = {}
    for pair in pairs or []:
        key, sep, raw = pair.partition("=")
        if not sep or not key.strip():
            raise SystemExit(
                f"invalid --backend-opt {pair!r}: expected key=value (e.g. n_jobs=4)"
            )
        options[key.strip()] = _coerce_opt_value(raw.strip())
    return options


def _validate_backend_spec_or_exit(backend: str, options: dict) -> None:
    """Fail fast — and cleanly — on a bad backend name or option.

    An unknown ``--backend-opt`` name (or a bad value) used to surface as
    a ``ValueError`` traceback out of ``ParseRequest``; a CLI user gets
    the message (which lists the known names/options) without the stack.
    """
    from repro.pipeline.backends.base import validate_backend_spec

    try:
        validate_backend_spec(backend, options)
    except (ValueError, TypeError) as exc:
        raise SystemExit(f"error: {exc}") from exc


def _backend_options_or_exit(args: argparse.Namespace) -> dict:
    """Backend options from the CLI flags, rejecting the removed ``--jobs``.

    ``--jobs`` finished its deprecation cycle: it now fails fast with the
    exact replacement spelling instead of folding into the options.
    """
    jobs = getattr(args, "jobs", None)
    if jobs is not None:
        backend = getattr(args, "backend", "auto")
        target = "thread" if backend in ("auto", "serial") else backend
        raise SystemExit(
            f"error: --jobs was removed; use --backend {target} "
            f"--backend-opt n_jobs={jobs}"
        )
    options = _parse_backend_opts(getattr(args, "backend_opt", None))
    _validate_backend_spec_or_exit(getattr(args, "backend", "auto"), options)
    return options


def _add_logging_arguments(parser: argparse.ArgumentParser) -> None:
    """The daemon logging flags (see :mod:`repro.obs.logging`)."""
    parser.add_argument(
        "--log-level",
        type=str,
        default="info",
        choices=["debug", "info", "warning", "error", "critical"],
        help="structured-log threshold (diagnostics go to stderr)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit logs as NDJSON (one JSON object per line) instead of text",
    )


def _setup_logging(args: argparse.Namespace) -> None:
    from repro.obs import logging as obs_logging

    obs_logging.setup(
        level=getattr(args, "log_level", "info"),
        json_mode=bool(getattr(args, "log_json", False)),
    )


def _add_profile_argument(
    parser: argparse.ArgumentParser, help: str | None = None
) -> None:
    parser.add_argument(
        "--profile",
        action="store_true",
        help=help
        or "run the sampling profiler and print collapsed stacks to stderr",
    )


def _start_profile_sampler(args: argparse.Namespace):
    """``--profile`` on a one-shot command: sample this process for the
    whole run.  Returns the running sampler, or ``None`` without the flag."""
    if not getattr(args, "profile", False):
        return None
    from repro.obs import profiling as _profiling

    _profiling.set_profiling_enabled(True)
    return _profiling.StackSampler().start()


def _print_profile(profile, key: str = "") -> None:
    """One collapsed-stack profile to stderr (stdout stays machine-readable)."""
    label = f" {key}" if key else ""
    print(
        f"# profile{label}: {profile.n_samples} sample(s) at "
        f"{profile.interval * 1000:.0f}ms",
        file=sys.stderr,
    )
    collapsed = profile.collapsed()
    if collapsed:
        print(collapsed, file=sys.stderr)
    sys.stderr.flush()


def _finish_profile_sampler(sampler) -> None:
    if sampler is not None:
        _print_profile(sampler.stop())


def _enable_service_profiling(args: argparse.Namespace) -> None:
    """``--profile`` on a daemon/service command: sample per ticket into the
    process :class:`~repro.obs.profiling.ProfileStore` (the PROFILE RPC)."""
    if getattr(args, "profile", False):
        from repro.obs import profiling as _profiling

        _profiling.set_profiling_enabled(True)


def _add_backend_arguments(
    parser: argparse.ArgumentParser, default: str = "auto"
) -> None:
    parser.add_argument(
        "--backend",
        type=str,
        default=default,
        help=f"execution backend: auto, serial, thread, process, hpc, async, "
        f"remote (default: {default})",
    )
    parser.add_argument(
        "--backend-opt",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="backend option (repeatable), e.g. n_jobs=4, n_nodes=16, "
        "mp_context=fork, max_window=32, adaptive=false, "
        "workers=127.0.0.1:9101,127.0.0.1:9102",
    )


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.documents.corpus import CorpusConfig, build_corpus
    from repro.documents.simpdf import SimPdfArchive

    corpus = build_corpus(CorpusConfig(n_documents=args.documents, seed=args.seed))
    print(f"built corpus: {corpus.described()}")
    if args.output:
        output = Path(args.output)
        output.mkdir(parents=True, exist_ok=True)
        archive_path = output / "corpus.simpdfarch"
        SimPdfArchive.write(archive_path, corpus.documents)
        print(f"wrote {len(corpus)} documents to {archive_path}")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.evaluation.reporting import ExperimentRecord, print_table
    from repro.evaluation.tables import (
        ExperimentScale,
        build_experiment_context,
        table1_born_digital,
        table2_scanned,
        table3_degraded_text,
        table4_selector_models,
    )

    scale = ExperimentScale(n_documents=args.documents, seed=args.seed)
    print(f"building experiment context ({args.documents} documents)...", flush=True)
    context = build_experiment_context(scale)
    record = ExperimentRecord()
    tables = {
        "table1": table1_born_digital(context),
        "table2": table2_scanned(context),
        "table3": table3_degraded_text(context),
    }
    if not args.skip_table4:
        tables["table4"] = table4_selector_models(context)
    for key, table in tables.items():
        print_table(table)
        record.add_table(key, table)
    if args.output:
        path = record.save(args.output)
        print(f"wrote report to {path}")
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.evaluation.figures import figure5_scalability, throughput_ratio_summary
    from repro.evaluation.reporting import print_table
    from repro.pipeline import ParsePipeline

    registry = ParsePipeline().registry
    series = figure5_scalability(
        registry, node_counts=args.nodes, docs_per_node=args.docs_per_node
    )
    print_table(series.to_table(), precision=2)
    print("single-node throughput relative to Nougat:", throughput_ratio_summary(series))
    return 0


def _cmd_alignment(args: argparse.Namespace) -> int:
    from repro.documents.corpus import CorpusConfig, build_corpus
    from repro.evaluation.alignment import preference_alignment_statistics
    from repro.parsers.registry import default_registry
    from repro.preferences.study import StudyConfig

    corpus = build_corpus(CorpusConfig(n_documents=args.documents, seed=args.seed))
    stats = preference_alignment_statistics(
        corpus, default_registry(), StudyConfig(n_pages=args.pages, seed=args.seed)
    )
    for key, value in stats.as_dict().items():
        print(f"{key}: {value}")
    return 0


def _add_cache_arguments(
    parser: argparse.ArgumentParser,
    policy_default: str | None = "off",
    dir_help: str = "persistent cache directory",
) -> None:
    """The shared cache flags: ``--cache`` (policy) and ``--cache-dir``.

    ``policy_default=None`` omits the policy flag for commands whose policy
    is fixed (``cache warm``) or carried by each submitted request
    (``gateway``, ``worker``).
    """
    if policy_default is not None:
        parser.add_argument(
            "--cache",
            type=str,
            default=policy_default,
            choices=["off", "read", "write", "readwrite"],
            help=f"parse-result cache policy (default: {policy_default})",
        )
    parser.add_argument("--cache-dir", type=str, default="", help=dir_help)


def resolve_cache_config(args: argparse.Namespace):
    """``(policy, cache)`` from the shared cache flags.

    ``cache`` is a :class:`~repro.cache.ParseCache` over the directory flag,
    or ``None`` for the pipeline's in-memory default.  Accepts both
    directory spellings (``--cache-dir``, and the ``cache`` subcommands'
    ``--dir``) so every subcommand resolves through this one helper.
    """
    policy = getattr(args, "cache", "off")
    directory = getattr(args, "cache_dir", "") or getattr(args, "dir", "")
    if directory:
        from repro.cache import ParseCache

        return policy, ParseCache(directory)
    return policy, None


def _add_source_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--source",
        type=str,
        default="",
        metavar="KIND:VALUE",
        help="document source, e.g. synthetic:200?seed=7, html-dir:docs/, "
        "markdown-dir:notes/, simpdf-dir:corpus/, crawl-dump:dump/ "
        "(overrides --documents/--seed)",
    )


def _cli_source(args: argparse.Namespace) -> str:
    """The request's source string: ``--source``, or the synthetic default."""
    return (
        getattr(args, "source", "")
        or f"synthetic:{args.documents}?seed={args.seed}"
    )


def _cmd_dataset(args: argparse.Namespace) -> int:
    from repro.datasets.assembly import DatasetBuildConfig, DatasetBuilder
    from repro.documents.sources import create_source, parse_source_arg
    from repro.pipeline import ENGINE_VARIANTS, ParsePipeline

    cache_policy, cache = resolve_cache_config(args)
    pipeline = ParsePipeline(cache=cache)
    try:
        source = create_source(parse_source_arg(_cli_source(args)))
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc
    if args.parser in ENGINE_VARIANTS:
        print("training the AdaParse engine on a small corpus...", flush=True)
    parser = pipeline.resolve_parser(args.parser)
    builder = DatasetBuilder(
        parser,
        DatasetBuildConfig(
            output_dir=args.output or None,
            quality_threshold=args.quality_threshold,
            min_tokens=args.min_tokens,
            backend=args.backend,
            backend_options=_backend_options_or_exit(args),
            cache=cache_policy,
        ),
        pipeline=pipeline,
    )
    info = source.describe()
    count = info.get("n_documents")
    print(
        f"assembling dataset from {info.get('kind')} source"
        f"{f' ({count} documents)' if count is not None else ''}"
        f" with {parser.name}...",
        flush=True,
    )
    sampler = _start_profile_sampler(args)
    try:
        report = builder.build(source)
    finally:
        _finish_profile_sampler(sampler)
    print(json.dumps(report.summary(), indent=2, default=str))
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    from repro.pipeline import ENGINE_VARIANTS, ParsePipeline, ParseRequest

    cache_policy, cache = resolve_cache_config(args)
    try:
        request = ParseRequest(
            parser=args.parser,
            source=_cli_source(args),
            batch_size=args.batch_size,
            alpha=args.alpha,
            backend=args.backend,
            backend_options=_backend_options_or_exit(args),
            cache=cache_policy,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc
    if args.parser in ENGINE_VARIANTS:
        print("training the AdaParse engine on a small corpus...", flush=True)
    sampler = _start_profile_sampler(args)
    try:
        report = ParsePipeline(cache=cache).run(request)
    finally:
        _finish_profile_sampler(sampler)
    payload = report.to_json_dict(include_text=args.include_text)
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        print(f"wrote ParseReport to {path}")
        print(json.dumps(report.summary(), indent=2))
    else:
        print(json.dumps(payload, indent=2))
    return 0


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    from repro.cache import ParseCache

    cache = ParseCache(args.dir)
    print(json.dumps(cache.describe(), indent=2))
    return 0


def _cmd_cache_purge(args: argparse.Namespace) -> int:
    from repro.cache import ParseCache

    cache = ParseCache(args.dir)
    removed = cache.purge(config_fingerprint=args.fingerprint or None)
    scope = f"fingerprint {args.fingerprint}" if args.fingerprint else "all entries"
    print(f"purged {removed} cache entr{'y' if removed == 1 else 'ies'} ({scope})")
    return 0


def _cmd_cache_warm(args: argparse.Namespace) -> int:
    from repro.cache import ParseCache
    from repro.pipeline import ENGINE_VARIANTS, ParsePipeline, ParseRequest

    if args.parser in ENGINE_VARIANTS:
        print("training the AdaParse engine on a small corpus...", flush=True)
    pipeline = ParsePipeline(cache=ParseCache(args.dir))
    try:
        report = pipeline.run(
            ParseRequest(
                parser=args.parser,
                source=_cli_source(args),
                backend=args.backend,
                backend_options=_backend_options_or_exit(args),
                cache="readwrite",
            )
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc
    print(json.dumps(report.summary(), indent=2))
    print(json.dumps(pipeline.cache.describe(), indent=2))
    return 0


def _ndjson_event_sink(quiet: bool = False):
    """A ProgressEvent sink that prints one NDJSON line per event, live.

    Each line is flushed as it is emitted: a piped consumer (``| jq``,
    a log shipper) sees events while the run is in progress, not in one
    burst when the process exits and stdio's block buffering drains.
    """
    import threading

    print_lock = threading.Lock()

    def sink(event) -> None:
        if quiet:
            return
        with print_lock:
            print(json.dumps(event.to_json_dict()), flush=True)

    return sink


class _GracefulShutdown:
    """Route SIGTERM (and keep SIGINT) onto the KeyboardInterrupt path.

    CLI commands that run a service or daemon wrap their main loop in
    ``try/except KeyboardInterrupt`` for a drain→close shutdown;
    installing this makes ``kill <pid>`` take the same graceful path a
    Ctrl-C does instead of dying mid-write with a traceback.
    """

    def __enter__(self) -> "_GracefulShutdown":
        import signal

        def _raise(signum, frame):
            raise KeyboardInterrupt

        try:
            self._previous = signal.signal(signal.SIGTERM, _raise)
        except ValueError:  # not the main thread (e.g. under a test runner)
            self._previous = None
        return self

    def __exit__(self, *exc_info: object) -> None:
        import signal

        if self._previous is not None:
            try:
                signal.signal(signal.SIGTERM, self._previous)
            except ValueError:
                pass


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the parse service over N concurrent requests, streaming events.

    The in-process demonstration of :class:`repro.serve.ParseService`:
    submissions share one backend and one cache, so identical corpora
    (the default; ``--distinct`` varies the seeds) are parsed exactly
    once with cross-request single-flight — the summary's
    ``cache_totals`` block shows the dedup.  SIGINT/SIGTERM drain
    gracefully: queued tickets are cancelled (their terminal events
    still stream), running requests finish, workers are joined.
    """
    from repro.pipeline import ENGINE_VARIANTS, ParsePipeline, ParseRequest
    from repro.serve import ParseService, ServiceConfig

    _setup_logging(args)
    _enable_service_profiling(args)
    options = _parse_backend_opts(args.backend_opt)
    _validate_backend_spec_or_exit(args.backend, options)
    if args.parser in ENGINE_VARIANTS:
        print("training the AdaParse engine on a small corpus...", flush=True)
    cache_policy, cache = resolve_cache_config(args)
    pipeline = ParsePipeline(cache=cache)
    config = ServiceConfig(
        backend=args.backend, backend_options=options, max_active=args.max_active
    )
    service = ParseService(
        pipeline=pipeline, config=config, event_sink=_ndjson_event_sink(args.quiet)
    )
    reports = {}
    with _GracefulShutdown():
        try:
            tickets = {}
            for i in range(args.requests):
                client = f"client-{i}"
                seed = args.seed + (i if args.distinct else 0)
                request = ParseRequest(
                    parser=args.parser,
                    source=args.source or f"synthetic:{args.documents}?seed={seed}",
                    batch_size=args.batch_size,
                    cache=cache_policy,
                )
                tickets[client] = service.submit(request, client=client)
            for client, ticket in tickets.items():
                reports[client] = ticket.result()
            summary = {
                "service": service.describe(),
                "tickets": {
                    client: {"ticket": tickets[client].id, **report.summary()}
                    for client, report in reports.items()
                },
                "cache_totals": {
                    "misses": sum(r.cache.misses for r in reports.values()),
                    "hits": sum(r.cache.hits for r in reports.values()),
                    "coalesced": sum(r.cache.coalesced for r in reports.values()),
                    "stores": sum(r.cache.stores for r in reports.values()),
                },
            }
        except KeyboardInterrupt:
            print(
                "interrupted: cancelling queued requests, draining running ones...",
                file=sys.stderr,
                flush=True,
            )
            service.close(drain=False)
            return 130
        finally:
            # Idempotent: a no-op after the interrupt path's close.  Also
            # covers failure exits (a request error re-raised by
            # result()), which must still release the backend and flush
            # the shared cache.
            service.close()
    if args.profile:
        # One profile per ticket, keyed the same way the gateway PROFILE
        # RPC keys them — collapsed stacks go to stderr, summary to stdout.
        from repro.obs import profiling as _profiling

        store = _profiling.default_store()
        for client, ticket in tickets.items():
            profile = store.get(ticket.id)
            if profile is not None:
                _print_profile(profile, key=f"{client}/{ticket.id}")
    print(json.dumps(summary, indent=2, default=str))
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit one request to a fresh service (the client-side smoke path).

    Progress events stream live (one flushed NDJSON line each, as they
    are emitted) rather than being replayed after the report lands.
    """
    from repro.pipeline import ENGINE_VARIANTS, ParsePipeline, ParseRequest
    from repro.serve import ParseService, ServiceConfig

    cache_policy, cache = resolve_cache_config(args)
    try:
        if args.request_file:
            payload = json.loads(Path(args.request_file).read_text(encoding="utf-8"))
            request = ParseRequest.from_json_dict(payload)
        else:
            request = ParseRequest(
                parser=args.parser,
                source=_cli_source(args),
                batch_size=args.batch_size,
                alpha=args.alpha,
                cache=cache_policy,
            )
    except (ValueError, KeyError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: invalid request: {exc}") from exc
    if args.host:
        # Remote mode: the request runs on a `repro gateway` daemon's
        # shared service; backend/cache flags describe *that* service and
        # are ignored here.
        return _submit_remote(args, request)
    options = _parse_backend_opts(args.backend_opt)
    _validate_backend_spec_or_exit(args.backend, options)
    if request.parser in ENGINE_VARIANTS:
        print("training the AdaParse engine on a small corpus...", flush=True)
    pipeline = ParsePipeline(cache=cache)
    config = ServiceConfig(backend=args.backend, backend_options=options, max_active=1)
    service = ParseService(
        pipeline=pipeline, config=config, event_sink=_ndjson_event_sink(args.quiet)
    )
    with _GracefulShutdown():
        try:
            ticket = service.submit(request, priority=args.priority, client=args.client)
            report = ticket.result()
        except KeyboardInterrupt:
            print(
                "interrupted: draining the parse service...", file=sys.stderr, flush=True
            )
            service.close(drain=False)
            return 130
        finally:
            service.close()  # idempotent; also runs on failure exits
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(report.to_json_dict(include_text=args.include_text), indent=2),
            encoding="utf-8",
        )
        print(f"wrote ParseReport to {path}")
    print(json.dumps(report.summary(), indent=2, default=str))
    return 0


def _submit_remote(args: argparse.Namespace, request) -> int:
    """Submit one request to a running gateway daemon and stream its events."""
    from repro.gateway import GatewayClient, GatewayError, GatewayRejected
    from repro.pipeline.report import ParseReport

    try:
        with GatewayClient(
            args.host, args.port, token=args.token or None, client=args.client
        ) as client:
            try:
                ticket = client.submit(request, priority=args.priority)
            except GatewayRejected as exc:
                hint = (
                    f" (retry after {exc.retry_after}s)"
                    if exc.retry_after is not None
                    else ""
                )
                print(f"rejected: {exc.reason}{hint}", file=sys.stderr, flush=True)
                return 75  # EX_TEMPFAIL: back off and retry
            for event in ticket.events():
                if not args.quiet:
                    print(json.dumps(event.to_json_dict()), flush=True)
            payload = client.result(ticket, include_text=args.include_text)
    except (GatewayError, OSError) as exc:
        raise SystemExit(f"error: gateway {args.host}:{args.port}: {exc}") from exc
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        print(f"wrote ParseReport to {path}")
    print(json.dumps(ParseReport.from_json_dict(payload).summary(), indent=2, default=str))
    return 0


def _cmd_gateway(args: argparse.Namespace) -> int:
    """Run the submission gateway daemon until SIGINT/SIGTERM (then drain)."""
    import os

    from repro.gateway import AuthRegistry, ClientQuota, GatewayServer
    from repro.obs.logging import get_logger, log_event
    from repro.pipeline import ParsePipeline
    from repro.serve import ParseService, ServiceConfig

    _setup_logging(args)
    _enable_service_profiling(args)
    options = _parse_backend_opts(args.backend_opt)
    _validate_backend_spec_or_exit(args.backend, options)
    quota = ClientQuota(
        max_active=args.client_max_active,
        rate_per_second=args.client_rate,
        burst=args.client_burst,
        max_request_bytes=args.max_request_bytes,
    )
    auth = AuthRegistry(allow_anonymous=not args.require_token, default_quota=quota)
    for spec in args.token or []:
        token, sep, client_id = spec.partition("=")
        if not sep or not token or not client_id:
            raise SystemExit(f"error: --token expects TOKEN=CLIENT, got {spec!r}")
        auth.register(token, client_id, quota)
    _, cache = resolve_cache_config(args)
    pipeline = ParsePipeline(cache=cache)
    config = ServiceConfig(
        backend=args.backend, backend_options=options, max_active=args.max_active
    )
    service = ParseService(pipeline=pipeline, config=config)
    gateway = GatewayServer(
        service,
        host=args.host,
        port=args.port,
        auth=auth,
        max_queue_depth=args.max_queue_depth,
        retry_after=args.retry_after,
    )
    gateway.start()
    with _GracefulShutdown():
        try:
            # The machine-readable ready line: clients (and spawning
            # scripts) read the bound address from here, so --port 0 just
            # works.  It is the ONLY stdout output of the daemon — every
            # diagnostic (and the final stopped summary) goes to stderr
            # through the structured logger, so a pipe reader can
            # readline() stdout without parsing around chatter.  Printed
            # inside the graceful-shutdown scope: a supervisor may SIGTERM
            # the instant it sees this line.
            print(
                json.dumps(
                    {
                        "event": "listening",
                        "address": gateway.address,
                        "pid": os.getpid(),
                        "backend": args.backend,
                        "max_active": args.max_active,
                        "max_queue_depth": args.max_queue_depth,
                        "tokens": auth.n_tokens,
                        "anonymous": auth.allow_anonymous,
                        "profiling": bool(args.profile),
                    }
                ),
                flush=True,
            )
            gateway.serve_forever()
        except KeyboardInterrupt:
            pass
    # Graceful exit for both signals: stop accepting, let open tickets
    # settle (their terminal events still stream), then close the service.
    gateway.stop(drain=True)
    stats = gateway.stats()
    service.close()
    log_event(get_logger("cli.gateway"), "info", "stopped", **stats)
    return 0


def _parse_worker_tags(pairs: list[str]) -> dict[str, str]:
    """``--tag key=value`` pairs into a tag dict (values coerced later)."""
    tags: dict[str, str] = {}
    for pair in pairs or []:
        key, sep, value = pair.partition("=")
        if not sep or not key.strip():
            raise SystemExit(f"error: --tag expects key=value, got {pair!r}")
        tags[key.strip()] = value.strip()
    return tags


def _cmd_worker(args: argparse.Namespace) -> int:
    """Run one cluster worker daemon until SIGINT/SIGTERM (then drain)."""
    import os

    from repro.cluster.worker import WorkerDaemon
    from repro.obs.logging import get_logger, log_event

    _setup_logging(args)
    _enable_service_profiling(args)
    options = _parse_backend_opts(args.backend_opt)
    _validate_backend_spec_or_exit(args.backend, options)
    _, cache = resolve_cache_config(args)
    daemon = WorkerDaemon(
        host=args.host,
        port=args.port,
        backend=args.backend,
        backend_options=options,
        cache=cache,
        name=args.name or None,
        slots=args.slots,
        heartbeat_interval=args.heartbeat_interval,
        tags=_parse_worker_tags(args.tag),
    )
    daemon.start()
    with _GracefulShutdown():
        try:
            # The machine-readable ready line: `cluster` (and any spawner)
            # reads the bound address from here, so --port 0 just works.
            # As with the gateway daemon, this line is the only stdout
            # output — diagnostics (and the final stopped summary) go to
            # stderr via the logger.  Printed inside the graceful-shutdown
            # scope so an immediate SIGTERM from the spawner still exits
            # gracefully.
            print(
                json.dumps(
                    {
                        "event": "listening",
                        "address": daemon.address,
                        "worker_id": daemon.name,
                        "pid": os.getpid(),
                        "backend": args.backend,
                        "cache": bool(cache),
                    }
                ),
                flush=True,
            )
            if args.join:
                from repro.cluster.protocol import ProtocolError

                try:
                    daemon.join(args.join)
                except (ProtocolError, ValueError, RuntimeError) as exc:
                    print(f"error: {exc}", file=sys.stderr, flush=True)
                    daemon.stop(drain=False)
                    return 1
            daemon.serve_forever()
        except KeyboardInterrupt:
            pass
    # Graceful exit for both signals: announce the departure (so the
    # coordinator records a leave, not a death), finish in-flight
    # shards, send BYE, join slot/reader threads, release the backend.
    if args.join:
        daemon.leave(args.join)
    daemon.stop(drain=True)
    if cache is not None:
        cache.flush()
    log_event(get_logger("cli.worker"), "info", "stopped", **daemon.describe())
    return 0


def _cmd_cluster_status(args: argparse.Namespace) -> int:
    """Query a running campaign's membership listener and print the JSON."""
    import socket as _socket

    from repro.cluster import protocol as _protocol
    from repro.cluster.protocol import MessageChannel, ProtocolError

    if not args.at:
        raise SystemExit(
            "error: cluster status needs --at HOST:PORT (the --listen "
            "address of the running campaign)"
        )
    host, _, port = args.at.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"error: --at must be host:port, got {args.at!r}")
    try:
        sock = _socket.create_connection((host, int(port)), timeout=5.0)
        channel = MessageChannel(sock)
        try:
            channel.send({"type": _protocol.STATUS})
            reply = channel.recv()
        finally:
            channel.close()
    except (OSError, ProtocolError) as exc:
        raise SystemExit(f"error: {exc}") from exc
    if reply is None or reply.get("type") != _protocol.STATUS_RESULT:
        raise SystemExit(f"error: unexpected status reply: {reply!r}")
    reply.pop("type", None)
    print(json.dumps(reply, indent=2, sort_keys=True, default=str))
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    """Spawn local workers (or join existing ones) and run one request.

    The end-to-end demonstration of ``repro.cluster`` and
    ``repro.elastic``: N worker processes, rendezvous shard placement,
    optional live membership (``--listen``), autoscaling
    (``--autoscale``), and a checkpoint ledger (``--ledger-dir``) — with
    a ``ParseReport`` whose ``execution.extra`` block carries the
    wire/dedup/fault/elastic telemetry this command summarises.
    """
    import os
    import signal
    import subprocess

    from repro.pipeline import ENGINE_VARIANTS, ParsePipeline, ParseRequest

    _setup_logging(args)
    if args.action == "status":
        return _cmd_cluster_status(args)
    if args.resume and not args.ledger_dir:
        raise SystemExit("error: --resume needs --ledger-dir (the campaign ledger)")
    procs: list[subprocess.Popen] = []
    addresses: list[str] = []
    try:
        if args.workers_at:
            addresses = [a.strip() for a in args.workers_at.split(",") if a.strip()]
        else:
            import repro

            env = dict(os.environ)
            src_root = str(Path(repro.__file__).resolve().parent.parent)
            env["PYTHONPATH"] = os.pathsep.join(
                [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
            )
            for i in range(args.workers):
                command = [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "worker",
                    "--port",
                    "0",
                    "--name",
                    f"cluster-worker-{i}",
                    "--backend",
                    args.worker_backend,
                ]
                if args.worker_jobs > 1:
                    command += ["--backend-opt", f"n_jobs={args.worker_jobs}"]
                if args.cache_dir:
                    command += ["--cache-dir", str(Path(args.cache_dir) / f"worker-{i}")]
                if args.profile:
                    command += ["--profile"]
                proc = subprocess.Popen(
                    command, env=env, stdout=subprocess.PIPE, text=True
                )
                procs.append(proc)
            for i, proc in enumerate(procs):
                assert proc.stdout is not None
                line = proc.stdout.readline()
                try:
                    ready = json.loads(line)
                    addresses.append(str(ready["address"]))
                except (json.JSONDecodeError, KeyError) as exc:
                    raise SystemExit(
                        f"error: worker {i} did not report a listening address "
                        f"(got {line!r}): {exc}"
                    ) from exc
            print(f"spawned {len(procs)} worker(s): {', '.join(addresses)}", flush=True)
        options: dict[str, object] = {
            "workers": ",".join(addresses),
            "window": args.window,
            "placement": args.placement,
        }
        if args.listen is not None:
            options["listen"] = args.listen
        if args.ledger_dir:
            options["ledger_dir"] = args.ledger_dir
            from repro.elastic.ledger import ShardLedger

            completed = len(ShardLedger(args.ledger_dir))
            if completed:
                print(
                    f"resuming from ledger {args.ledger_dir}: "
                    f"{completed} completed shard(s) will replay",
                    flush=True,
                )
            elif args.resume:
                print(
                    f"--resume: ledger {args.ledger_dir} is empty, "
                    f"running the campaign from the start",
                    flush=True,
                )
        if args.autoscale:
            options["autoscale"] = {
                "min_workers": args.min_workers,
                "max_workers": args.max_workers,
                "worker_backend": args.worker_backend,
                "worker_jobs": args.worker_jobs,
                "cache_dir": args.cache_dir or None,
            }
        _validate_backend_spec_or_exit("remote", options)
        cache_policy, cache = resolve_cache_config(args)
        try:
            request = ParseRequest(
                parser=args.parser,
                source=_cli_source(args),
                batch_size=args.batch_size,
                backend="remote",
                backend_options=options,
                cache=cache_policy,
            )
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from exc
        if args.parser in ENGINE_VARIANTS:
            print("training the AdaParse engine on a small corpus...", flush=True)
        from repro.pipeline.backends import BackendError

        sampler = _start_profile_sampler(args)
        with _GracefulShutdown():
            try:
                report = ParsePipeline(cache=cache).run(request)
            except BackendError as exc:
                raise SystemExit(f"error: {exc}") from exc
            finally:
                _finish_profile_sampler(sampler)
        if args.profile:
            # Workers ship their sampled profiles inside batch_result
            # frames; the coordinator merged them per shard.
            from repro.obs import profiling as _profiling

            store = _profiling.default_store()
            for key in sorted(store.keys()):
                shard_profile = store.get(key)
                if shard_profile is not None:
                    _print_profile(shard_profile, key=key)
        extra = report.execution.to_json_dict()["extra"]
        cluster = {
            key.removeprefix("cluster_"): value
            for key, value in sorted(extra.items())
            if key.startswith("cluster_")
        }
        summary = {**report.summary(), "cluster": cluster}
        print(json.dumps(summary, indent=2, default=str))
        if args.output:
            path = Path(args.output)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(summary, indent=2), encoding="utf-8")
            print(f"wrote cluster summary to {path}")
        return 0
    except KeyboardInterrupt:
        print("interrupted: stopping workers...", file=sys.stderr, flush=True)
        return 130
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in procs:
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5)


def _cmd_obs_metrics(args: argparse.Namespace) -> int:
    """Dump a metrics registry: this process's, or a live gateway's.

    Without ``--host`` the local process-default registry is rendered —
    mostly useful from tests and embedding code; the interesting mode is
    ``--host/--port``, which scrapes a running ``repro gateway`` daemon
    over the METRICS protocol message.  ``--watch`` polls instead of
    dumping once and prints per-interval deltas.
    """
    if args.watch:
        return _watch_metrics(args)
    if args.host:
        from repro.gateway import GatewayClient, GatewayError

        try:
            with GatewayClient(
                args.host, args.port, token=args.token or None, client=args.client
            ) as client:
                payload = client.metrics(format="json" if args.json else "text")
        except (GatewayError, OSError) as exc:
            raise SystemExit(f"error: {exc}") from exc
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            sys.stdout.write(str(payload))
            sys.stdout.flush()
        return 0
    from repro.obs import metrics as obs_metrics

    if args.json:
        print(json.dumps(obs_metrics.snapshot(), indent=2, sort_keys=True))
    else:
        sys.stdout.write(obs_metrics.render_text())
        sys.stdout.flush()
    return 0


def _format_number(value: float) -> str:
    """Compact numeric rendering for delta/rate tables (ints stay ints)."""
    if float(value) == int(value):
        return str(int(value))
    return f"{value:.4g}"


def _watch_loop(history, args: argparse.Namespace) -> int:
    """The ``obs metrics --watch`` poll-and-print loop.

    Each tick samples the registry into the :class:`MetricsHistory` ring
    buffer and prints the non-zero per-interval deltas (with per-second
    rates).  Runs until ``--count`` ticks, or forever until Ctrl-C.
    """
    import time as _time

    history.sample()
    ticks = 0
    try:
        while args.count <= 0 or ticks < args.count:
            _time.sleep(args.interval)
            history.sample()
            ticks += 1
            delta = {k: v for k, v in history.delta().items() if v}
            rate = history.rate()
            if args.json:
                print(
                    json.dumps(
                        {"tick": ticks, "delta": delta}, sort_keys=True
                    ),
                    flush=True,
                )
                continue
            stamp = _time.strftime("%H:%M:%S")
            print(f"-- {stamp}  ({len(delta)} changed series)")
            for key in sorted(delta):
                print(
                    f"  {key}  +{_format_number(delta[key])}"
                    f"  ({_format_number(rate.get(key, 0.0))}/s)"
                )
            sys.stdout.flush()
    except KeyboardInterrupt:
        pass
    return 0


def _watch_metrics(args: argparse.Namespace) -> int:
    """``obs metrics --watch``: per-interval deltas of a live registry."""
    from repro.obs.history import MetricsHistory

    if args.host:
        from repro.gateway import GatewayClient, GatewayError

        try:
            with GatewayClient(
                args.host, args.port, token=args.token or None, client=args.client
            ) as client:

                class _RemoteRegistry:
                    """Duck-typed registry: snapshot() scrapes the gateway."""

                    def snapshot(self) -> dict:
                        payload = client.metrics(format="json")
                        return payload if isinstance(payload, dict) else {}

                return _watch_loop(
                    MetricsHistory(registry=_RemoteRegistry()), args
                )
        except (GatewayError, OSError) as exc:
            raise SystemExit(f"error: {exc}") from exc
    return _watch_loop(MetricsHistory(), args)


def _format_span_tree(roots: list, indent: str = "") -> list[str]:
    """Render ``build_tree`` output as an indented duration-annotated tree."""
    lines: list[str] = []
    for node in roots:
        duration_ms = float(node.get("duration_s") or 0.0) * 1000.0
        attributes = node.get("attributes") or {}
        attr_text = (
            " " + " ".join(f"{k}={v}" for k, v in sorted(attributes.items()))
            if attributes
            else ""
        )
        status = node.get("status", "ok")
        flag = "" if status == "ok" else f" [{status}]"
        lines.append(
            f"{indent}{node.get('name', '?')}  {duration_ms:.1f}ms{flag}{attr_text}"
        )
        lines.extend(_format_span_tree(node.get("children") or [], indent + "  "))
    return lines


def _cmd_obs_trace(args: argparse.Namespace) -> int:
    """Fetch and pretty-print one ticket's distributed span tree."""
    from repro.gateway import GatewayClient, GatewayError
    from repro.obs.tracing import build_tree

    try:
        with GatewayClient(
            args.host, args.port, token=args.token or None, client=args.client
        ) as client:
            payload = client.trace(args.ticket_id)
    except (GatewayError, OSError) as exc:
        raise SystemExit(f"error: {exc}") from exc
    spans = payload.get("spans") or []
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if not spans:
        # An owned-but-untraced ticket used to print a bare header and
        # exit 0, indistinguishable from success in scripts.
        print(
            f"error: no spans recorded for ticket {args.ticket_id} "
            f"(state {payload.get('state')})",
            file=sys.stderr,
        )
        return 1
    print(
        f"ticket {payload.get('ticket_id')}  trace {payload.get('trace_id')}  "
        f"state {payload.get('state')}  ({len(spans)} span(s))"
    )
    for line in _format_span_tree(build_tree(spans)):
        print(line)
    return 0


def _cmd_obs_profile(args: argparse.Namespace) -> int:
    """Fetch and render one gateway ticket's sampled stack profile."""
    from repro.gateway import GatewayClient, GatewayError
    from repro.obs.profiling import Profile

    try:
        with GatewayClient(
            args.host, args.port, token=args.token or None, client=args.client
        ) as client:
            payload = client.profile(args.ticket_id)
    except (GatewayError, OSError) as exc:
        raise SystemExit(f"error: {exc}") from exc
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    raw = payload.get("profile")
    profile = Profile.from_dict(raw) if raw else None
    if profile is None or not profile.counts:
        # Same contract as `obs trace`: an owned ticket with nothing
        # recorded is a failure, not a silent empty success.
        print(
            f"error: no profile recorded for ticket {args.ticket_id} "
            f"(state {payload.get('state')}; was the gateway started "
            f"with --profile?)",
            file=sys.stderr,
        )
        return 1
    print(
        f"ticket {payload.get('ticket_id')}  state {payload.get('state')}  "
        f"({profile.n_samples} sample(s) at {profile.interval * 1000:.0f}ms)"
    )
    if args.top:
        width = max(len(frame) for frame, _ in profile.top(args.top))
        for frame, count in profile.top(args.top):
            share = 100.0 * count / max(1, profile.n_samples)
            print(f"  {frame:<{width}}  {count:>7}  {share:5.1f}%")
    else:
        print(profile.collapsed())
    return 0


def _gauge_total(snapshot: dict, name: str) -> "float | None":
    """Sum a counter/gauge over all its label sets; None when absent."""
    body = snapshot.get(name)
    if not body:
        return None
    return sum(float(s.get("value", 0.0)) for s in body.get("values", ()))


def _histogram_quantile(snapshot: dict, name: str, q: float) -> "float | None":
    """A quantile upper bound from a snapshot histogram's buckets.

    Aggregates cumulative bucket counts across label sets and returns
    the smallest bucket boundary covering quantile ``q`` — the standard
    Prometheus-style estimate (an upper bound, not an interpolation).
    """
    body = snapshot.get(name)
    if not body:
        return None
    merged: dict[float, float] = {}
    total = 0.0
    for series in body.get("values", ()):
        total += float(series.get("count", 0))
        for le, cumulative in (series.get("buckets") or {}).items():
            bound = float("inf") if le == "+Inf" else float(le)
            merged[bound] = merged.get(bound, 0.0) + float(cumulative)
    if total <= 0:
        return None
    target = q * total
    for bound in sorted(merged):
        if merged[bound] >= target:
            return bound
    return None


def _phase_shares(snapshot: dict) -> list[tuple[str, float, float]]:
    """``(phase, share, seconds)`` rows from the phase-duration histogram."""
    body = snapshot.get("repro_phase_duration_seconds")
    if not body:
        return []
    sums: dict[str, float] = {}
    for series in body.get("values", ()):
        phase_name = str((series.get("labels") or {}).get("phase", "?"))
        sums[phase_name] = sums.get(phase_name, 0.0) + float(
            series.get("sum", 0.0)
        )
    total = sum(sums.values())
    if total <= 0:
        return []
    rows = [(name, seconds / total, seconds) for name, seconds in sums.items()]
    rows.sort(key=lambda row: (-row[2], row[0]))
    return rows


def _render_top(
    address: str,
    snapshot: dict,
    flat: dict,
    previous: "dict | None",
    elapsed: float,
) -> str:
    """One ``obs top`` frame as plain text (the caller adds ANSI)."""
    import time as _time

    def _rate(series: str) -> "float | None":
        if previous is None:
            return None
        # Sum across label sets: flattened keys are `name` or `name{...}`.
        keys = [k for k in flat if k == series or k.startswith(series + "{")]
        if not keys:
            return None
        delta = sum(max(0.0, flat[k] - previous.get(k, 0.0)) for k in keys)
        return delta / max(1e-9, elapsed)

    def _cell(value: "float | None", fmt: str = "{:.1f}") -> str:
        return "-" if value is None else fmt.format(value)

    lines = [
        f"repro obs top — {address} — {_time.strftime('%H:%M:%S')}"
        f"  (interval {elapsed:.1f}s)",
        "",
    ]
    workers = _gauge_total(snapshot, "repro_elastic_workers")
    queue = _gauge_total(snapshot, "repro_service_queue_depth")
    active = _gauge_total(snapshot, "repro_service_active")
    in_flight = _gauge_total(snapshot, "repro_backend_in_flight")
    lines.append(
        f"  workers alive  {_cell(workers, '{:.0f}'):>8}"
        f"   queue depth  {_cell(queue, '{:.0f}'):>6}"
        f"   active  {_cell(active, '{:.0f}'):>4}"
        f"   batches in flight  {_cell(in_flight, '{:.0f}'):>4}"
    )
    docs_rate = _rate("repro_pipeline_documents_total")
    docs_total = _gauge_total(snapshot, "repro_pipeline_documents_total")
    lines.append(
        f"  docs/sec       {_cell(docs_rate):>8}"
        f"   docs total   {_cell(docs_total, '{:.0f}'):>6}"
    )
    hits = _gauge_total(snapshot, "repro_cache_hits_total")
    misses = _gauge_total(snapshot, "repro_cache_misses_total")
    if hits is not None or misses is not None:
        lookups = (hits or 0.0) + (misses or 0.0)
        ratio = 100.0 * (hits or 0.0) / lookups if lookups else None
        lines.append(
            f"  cache hit rate {_cell(ratio):>7}%"
            f"   (hits {_cell(hits, '{:.0f}')} / lookups"
            f" {_cell(lookups, '{:.0f}')})"
        )
    p95 = _histogram_quantile(
        snapshot, "repro_backend_batch_latency_seconds", 0.95
    )
    batch_rate = _rate("repro_backend_batches_completed_total")
    lines.append(
        f"  batch p95      {_cell(p95, '≤{:.3g}s'):>8}"
        f"   batches/sec  {_cell(batch_rate):>6}"
    )
    shares = _phase_shares(snapshot)
    if shares:
        lines.append("")
        lines.append(f"  {'phase':<20} {'share':>7} {'time(s)':>9}")
        for phase_name, share, seconds in shares:
            lines.append(
                f"  {phase_name:<20} {100.0 * share:>6.1f}% {seconds:>9.2f}"
            )
    return "\n".join(lines)


def _cmd_obs_top(args: argparse.Namespace) -> int:
    """A live text view of a gateway's service/cluster health (obs top).

    Curses-free: each frame repaints with ANSI clear-screen when stdout
    is a terminal, and appends frames sequentially when piped — so the
    output stays greppable from scripts and CI.
    """
    import time as _time

    from repro.gateway import GatewayClient, GatewayError
    from repro.obs.history import flatten_snapshot

    address = f"{args.host}:{args.port}"
    is_tty = sys.stdout.isatty()
    previous: "dict | None" = None
    previous_ts: "float | None" = None
    frames = 0
    try:
        with GatewayClient(
            args.host, args.port, token=args.token or None, client=args.client
        ) as client:
            while args.count <= 0 or frames < args.count:
                if frames:
                    _time.sleep(args.interval)
                snapshot = client.metrics(format="json")
                if not isinstance(snapshot, dict):
                    snapshot = {}
                flat = flatten_snapshot(snapshot)
                now = _time.time()
                elapsed = (
                    now - previous_ts if previous_ts is not None else args.interval
                )
                frame = _render_top(address, snapshot, flat, previous, elapsed)
                if is_tty:
                    sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
                else:
                    print(frame)
                    print()
                sys.stdout.flush()
                previous, previous_ts = flat, now
                frames += 1
    except KeyboardInterrupt:
        return 0
    except (GatewayError, OSError) as exc:
        raise SystemExit(f"error: gateway {address}: {exc}") from exc
    return 0


def _cmd_fill_experiments(args: argparse.Namespace) -> int:
    from repro.evaluation.measured import MeasuredStore, fill_experiments_file

    store = MeasuredStore(args.measured_dir)
    if not store.available():
        print(
            f"no measured fragments in {args.measured_dir}; "
            "run `pytest benchmarks/ --benchmark-only` first"
        )
        return 1
    result = fill_experiments_file(args.experiments_file, store)
    print(f"filled {result.n_filled} section(s): {', '.join(sorted(set(result.filled))) or '-'}")
    if result.missing:
        print(f"still missing: {', '.join(sorted(set(result.missing)))}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="adaparse-repro",
        description="AdaParse (MLSys 2025) reproduction: corpora, tables, figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    corpus = sub.add_parser("corpus", help="build a synthetic corpus (optionally write SimPDF archive)")
    corpus.add_argument("--documents", type=int, default=200)
    corpus.add_argument("--seed", type=int, default=2025)
    corpus.add_argument("--output", type=str, default="")
    corpus.set_defaults(func=_cmd_corpus)

    tables = sub.add_parser("tables", help="regenerate Tables 1-4")
    tables.add_argument("--documents", type=int, default=240)
    tables.add_argument("--seed", type=int, default=2025)
    tables.add_argument("--output", type=str, default="")
    tables.add_argument("--skip-table4", action="store_true")
    tables.set_defaults(func=_cmd_tables)

    scaling = sub.add_parser("scaling", help="run the Figure 5 scalability sweep")
    scaling.add_argument("--nodes", type=int, nargs="+", default=[1, 2, 4, 8, 16, 32, 64, 128])
    scaling.add_argument("--docs-per-node", type=int, default=100)
    scaling.set_defaults(func=_cmd_scaling)

    alignment = sub.add_parser("alignment", help="preference-alignment statistics (Section 7.1)")
    alignment.add_argument("--documents", type=int, default=120)
    alignment.add_argument("--pages", type=int, default=80)
    alignment.add_argument("--seed", type=int, default=2025)
    alignment.set_defaults(func=_cmd_alignment)

    dataset = sub.add_parser(
        "dataset", help="assemble an LLM-training dataset (parse, filter, dedup, shard)"
    )
    dataset.add_argument("--documents", type=int, default=200)
    dataset.add_argument("--seed", type=int, default=2025)
    dataset.add_argument(
        "--parser",
        type=str,
        default="pymupdf",
        help="parser or engine: pymupdf, pypdf, tesseract, grobid, nougat, marker, "
        "adaparse_ft, adaparse_llm",
    )
    dataset.add_argument("--output", type=str, default="", help="shard output directory")
    dataset.add_argument("--quality-threshold", type=float, default=0.35)
    dataset.add_argument("--min-tokens", type=int, default=50)
    _add_source_argument(dataset)
    _add_backend_arguments(dataset)
    dataset.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="removed; use --backend thread --backend-opt n_jobs=N",
    )
    _add_cache_arguments(dataset)
    _add_profile_argument(dataset)
    dataset.set_defaults(func=_cmd_dataset)

    pipe = sub.add_parser(
        "pipeline",
        help="run the unified parsing pipeline and dump the ParseReport as JSON",
    )
    pipe.add_argument("--documents", type=int, default=100)
    pipe.add_argument("--seed", type=int, default=2025)
    pipe.add_argument(
        "--parser",
        type=str,
        default="pymupdf",
        help="parser or engine: pymupdf, pypdf, tesseract, grobid, nougat, marker, "
        "adaparse_ft, adaparse_llm",
    )
    pipe.add_argument("--batch-size", type=int, default=None)
    pipe.add_argument("--alpha", type=float, default=None, help="engine α-budget override")
    _add_source_argument(pipe)
    _add_backend_arguments(pipe)
    pipe.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="removed; use --backend thread --backend-opt n_jobs=N",
    )
    pipe.add_argument("--include-text", action="store_true", help="embed page texts in the JSON")
    pipe.add_argument("--output", type=str, default="", help="write the report JSON here")
    _add_cache_arguments(pipe)
    _add_profile_argument(pipe)
    pipe.set_defaults(func=_cmd_pipeline)

    cache = sub.add_parser(
        "cache", help="inspect, purge, or warm the content-addressed parse cache"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)

    cache_stats = cache_sub.add_parser("stats", help="inventory of a cache directory")
    cache_stats.add_argument("--dir", type=str, default=".parse-cache", help="cache directory")
    cache_stats.set_defaults(func=_cmd_cache_stats)

    cache_purge = cache_sub.add_parser("purge", help="drop cache entries")
    cache_purge.add_argument("--dir", type=str, default=".parse-cache", help="cache directory")
    cache_purge.add_argument(
        "--fingerprint",
        type=str,
        default="",
        help="only purge entries of one parser config fingerprint",
    )
    cache_purge.set_defaults(func=_cmd_cache_purge)

    cache_warm = cache_sub.add_parser(
        "warm", help="pre-populate a cache directory by parsing a corpus"
    )
    cache_warm.add_argument("--dir", type=str, default=".parse-cache", help="cache directory")
    cache_warm.add_argument("--documents", type=int, default=100)
    cache_warm.add_argument("--seed", type=int, default=2025)
    cache_warm.add_argument(
        "--parser",
        type=str,
        default="pymupdf",
        help="parser or engine: pymupdf, pypdf, tesseract, grobid, nougat, marker, "
        "adaparse_ft, adaparse_llm",
    )
    _add_source_argument(cache_warm)
    _add_backend_arguments(cache_warm)
    cache_warm.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="removed; use --backend thread --backend-opt n_jobs=N",
    )
    cache_warm.set_defaults(func=_cmd_cache_warm)

    serve = sub.add_parser(
        "serve",
        help="run the parse service: N concurrent requests, one shared "
        "backend and cache, streamed NDJSON progress events",
    )
    serve.add_argument("--documents", type=int, default=50, help="documents per request")
    serve.add_argument("--seed", type=int, default=2025)
    serve.add_argument("--requests", type=int, default=4, help="concurrent requests to submit")
    serve.add_argument(
        "--parser",
        type=str,
        default="pymupdf",
        help="parser or engine: pymupdf, pypdf, tesseract, grobid, nougat, marker, "
        "adaparse_ft, adaparse_llm",
    )
    serve.add_argument("--batch-size", type=int, default=None)
    serve.add_argument("--max-active", type=int, default=4, help="requests executing at once")
    serve.add_argument(
        "--distinct",
        action="store_true",
        help="give each request its own corpus seed (default: identical corpora, "
        "showcasing cross-request single-flight)",
    )
    serve.add_argument("--quiet", action="store_true", help="suppress the NDJSON event stream")
    _add_source_argument(serve)
    _add_logging_arguments(serve)
    _add_backend_arguments(serve, default="async")
    _add_cache_arguments(serve, policy_default="readwrite")
    _add_profile_argument(
        serve,
        help="sample each ticket's execution and print per-ticket collapsed "
        "stacks to stderr",
    )
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="submit one request to a parse service and print its report "
        "(client-side smoke path)",
    )
    submit.add_argument("--documents", type=int, default=20)
    submit.add_argument("--seed", type=int, default=2025)
    submit.add_argument(
        "--parser",
        type=str,
        default="pymupdf",
        help="parser or engine: pymupdf, pypdf, tesseract, grobid, nougat, marker, "
        "adaparse_ft, adaparse_llm",
    )
    submit.add_argument("--batch-size", type=int, default=None)
    submit.add_argument("--alpha", type=float, default=None, help="engine α-budget override")
    submit.add_argument(
        "--request-file",
        type=str,
        default="",
        help="JSON file with a serialised ParseRequest (overrides the flags above)",
    )
    submit.add_argument("--priority", type=int, default=0, help="admission priority (higher first)")
    submit.add_argument("--client", type=str, default="cli", help="fair-share client identity")
    submit.add_argument("--quiet", action="store_true", help="suppress the NDJSON event stream")
    submit.add_argument("--include-text", action="store_true", help="embed page texts in --output")
    submit.add_argument("--output", type=str, default="", help="write the full report JSON here")
    _add_source_argument(submit)
    _add_backend_arguments(submit, default="async")
    _add_cache_arguments(submit)
    submit.add_argument(
        "--host",
        type=str,
        default="",
        help="submit to a running `repro gateway` daemon at this address "
        "instead of a fresh local service",
    )
    submit.add_argument("--port", type=int, default=0, help="gateway port (with --host)")
    submit.add_argument(
        "--token", type=str, default="", help="gateway auth token (with --host)"
    )
    submit.set_defaults(func=_cmd_submit)

    gateway = sub.add_parser(
        "gateway",
        help="run the networked submission gateway: remote clients submit "
        "requests over TCP onto one shared parse service "
        "(drains gracefully on SIGINT/SIGTERM)",
    )
    gateway.add_argument("--host", type=str, default="127.0.0.1", help="bind address")
    gateway.add_argument(
        "--port", type=int, default=0, help="bind port (0 picks a free one)"
    )
    gateway.add_argument(
        "--max-active", type=int, default=4, help="requests executing at once"
    )
    gateway.add_argument(
        "--max-queue-depth",
        type=int,
        default=16,
        help="tickets allowed to wait beyond --max-active before submissions "
        "are rejected saturated",
    )
    gateway.add_argument(
        "--retry-after",
        type=float,
        default=1.0,
        help="backoff hint (s) attached to saturated/quota rejections",
    )
    gateway.add_argument(
        "--token",
        action="append",
        default=None,
        metavar="TOKEN=CLIENT",
        help="register an auth token for a client id (repeatable)",
    )
    gateway.add_argument(
        "--require-token", action="store_true", help="refuse anonymous clients"
    )
    gateway.add_argument(
        "--client-max-active",
        type=int,
        default=4,
        help="per-client cap on concurrently open tickets",
    )
    gateway.add_argument(
        "--client-rate",
        type=float,
        default=0.0,
        help="per-client sustained submissions/s (0 disables rate limiting)",
    )
    gateway.add_argument(
        "--client-burst", type=int, default=8, help="per-client submission burst"
    )
    gateway.add_argument(
        "--max-request-bytes",
        type=int,
        default=1024 * 1024,
        help="largest submit frame accepted from one client",
    )
    _add_logging_arguments(gateway)
    _add_backend_arguments(gateway, default="async")
    _add_cache_arguments(
        gateway,
        policy_default=None,
        dir_help="persistent cache directory shared by every client's requests",
    )
    _add_profile_argument(
        gateway,
        help="sample each ticket's execution; profiles are served back over "
        "the PROFILE RPC (`repro obs profile TICKET-ID`)",
    )
    gateway.set_defaults(func=_cmd_gateway)

    worker = sub.add_parser(
        "worker",
        help="run one cluster worker daemon (parses shards for a coordinator; "
        "drains gracefully on SIGINT/SIGTERM)",
    )
    worker.add_argument("--host", type=str, default="127.0.0.1", help="bind address")
    worker.add_argument(
        "--port", type=int, default=0, help="bind port (0 picks a free one)"
    )
    worker.add_argument(
        "--name",
        type=str,
        default="",
        help="stable worker identity for rendezvous placement (default: "
        "derived from the bound address)",
    )
    worker.add_argument(
        "--slots", type=int, default=None, help="concurrent shards (default: backend workers)"
    )
    worker.add_argument(
        "--heartbeat-interval", type=float, default=1.0, help="liveness beacon period (s)"
    )
    worker.add_argument(
        "--join",
        type=str,
        default="",
        metavar="HOST:PORT",
        help="announce this worker to a running campaign's membership "
        "listener (the coordinator's --listen address); the worker joins "
        "mid-run and leaves gracefully on shutdown",
    )
    worker.add_argument(
        "--tag",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="capability tag advertised to coordinators (repeatable), e.g. "
        "--tag gpu=true --tag cpu_class=large; heavyweight-parser shards "
        "prefer workers whose tags satisfy them",
    )
    _add_logging_arguments(worker)
    _add_backend_arguments(worker, default="serial")
    _add_cache_arguments(
        worker,
        policy_default=None,
        dir_help="local parse-cache directory (a warm cache answers shards "
        "without re-parsing or re-transfer); several workers may share "
        "one directory — the disk store merges additively on flush, so "
        "concurrent writers are safe",
    )
    _add_profile_argument(
        worker,
        help="sample each shard's execution and ship the profile back to the "
        "coordinator inside batch_result",
    )
    worker.set_defaults(func=_cmd_worker)

    cluster = sub.add_parser(
        "cluster",
        help="spawn N local workers (or join --workers-at), run one request "
        "on the remote backend, and print the placement/dedup summary; "
        "`cluster status --at HOST:PORT` queries a live campaign",
    )
    cluster.add_argument(
        "action",
        nargs="?",
        choices=["run", "status"],
        default="run",
        help="run a campaign (default), or query a live coordinator's "
        "membership listener with status --at HOST:PORT",
    )
    cluster.add_argument("--workers", type=int, default=2, help="local workers to spawn")
    cluster.add_argument(
        "--workers-at",
        type=str,
        default="",
        help="join existing workers at host:port,host:port instead of spawning",
    )
    cluster.add_argument("--documents", type=int, default=50)
    cluster.add_argument("--seed", type=int, default=2025)
    cluster.add_argument(
        "--parser",
        type=str,
        default="pymupdf",
        help="parser or engine: pymupdf, pypdf, tesseract, grobid, nougat, marker, "
        "adaparse_ft, adaparse_llm",
    )
    cluster.add_argument("--batch-size", type=int, default=None)
    cluster.add_argument(
        "--window", type=int, default=2, help="in-flight shards per worker"
    )
    cluster.add_argument(
        "--placement",
        type=str,
        default="rendezvous",
        choices=["rendezvous", "balanced"],
        help="shard placement: cache-affine rendezvous hashing, or least-"
        "backlog balancing",
    )
    cluster.add_argument(
        "--worker-backend",
        type=str,
        default="serial",
        help="execution backend of each spawned worker",
    )
    cluster.add_argument(
        "--worker-jobs", type=int, default=1, help="n_jobs of each spawned worker"
    )
    _add_source_argument(cluster)
    _add_cache_arguments(
        cluster,
        dir_help="cache root: coordinator cache plus per-worker subdirectories "
        "(autoscaled workers share one directory — safe, since the disk "
        "store merges additively on flush)",
    )
    cluster.add_argument(
        "--at",
        type=str,
        default="",
        metavar="HOST:PORT",
        help="membership listener of the campaign to query (status action)",
    )
    cluster.add_argument(
        "--listen",
        type=int,
        default=None,
        metavar="PORT",
        help="start a membership listener so `worker --join` daemons can "
        "join mid-campaign (pass an explicit port to share with joiners; "
        "0 picks a free one, useful only with --autoscale)",
    )
    cluster.add_argument(
        "--autoscale",
        action="store_true",
        help="run the elastic autoscaler: spawn/drain local workers from "
        "queue-depth and batch-latency telemetry (implies --listen 0)",
    )
    cluster.add_argument(
        "--min-workers",
        type=int,
        default=1,
        help="autoscaler floor (workers kept alive even when idle)",
    )
    cluster.add_argument(
        "--max-workers",
        type=int,
        default=4,
        help="autoscaler ceiling (scale-up stops here)",
    )
    cluster.add_argument(
        "--ledger-dir",
        type=str,
        default="",
        help="checkpoint directory: completed shards are durably recorded "
        "to a shard ledger there, and a re-run with the same directory "
        "replays them instead of re-parsing (see --resume)",
    )
    cluster.add_argument(
        "--resume",
        action="store_true",
        help="resume a killed campaign from --ledger-dir (completed shards "
        "are skipped exactly-once; requires --ledger-dir)",
    )
    cluster.add_argument("--output", type=str, default="", help="write the summary JSON here")
    _add_logging_arguments(cluster)
    _add_profile_argument(
        cluster,
        help="sample the coordinator and every spawned worker; collapsed "
        "stacks (local run + per-shard worker profiles) go to stderr",
    )
    cluster.set_defaults(func=_cmd_cluster)

    obs = sub.add_parser(
        "obs",
        help="observability tools: metrics exposition, trace trees, stack "
        "profiles, and a live top view",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_metrics = obs_sub.add_parser(
        "metrics",
        help="dump a metrics registry (local process, or a live gateway "
        "with --host/--port); --watch polls and prints deltas",
    )
    obs_metrics.add_argument(
        "--host", type=str, default="", help="scrape a running gateway at this address"
    )
    obs_metrics.add_argument("--port", type=int, default=0, help="gateway port (with --host)")
    obs_metrics.add_argument("--token", type=str, default="", help="gateway auth token")
    obs_metrics.add_argument("--client", type=str, default="obs-cli", help="client identity")
    obs_metrics.add_argument(
        "--json",
        action="store_true",
        help="JSON snapshot instead of Prometheus text exposition "
        "(with --watch: one JSON delta object per tick)",
    )
    obs_metrics.add_argument(
        "--watch",
        action="store_true",
        help="poll the registry and print per-interval deltas instead of "
        "dumping once",
    )
    obs_metrics.add_argument(
        "--interval", type=float, default=2.0, help="--watch poll period (s)"
    )
    obs_metrics.add_argument(
        "--count",
        type=int,
        default=0,
        help="--watch ticks before exiting (0 = until Ctrl-C)",
    )
    obs_metrics.set_defaults(func=_cmd_obs_metrics)
    obs_trace = obs_sub.add_parser(
        "trace",
        help="pretty-print the recorded span tree of one gateway ticket",
    )
    obs_trace.add_argument("ticket_id", type=str, help="ticket id (from SUBMITTED/submit output)")
    obs_trace.add_argument("--host", type=str, default="127.0.0.1", help="gateway address")
    obs_trace.add_argument("--port", type=int, required=True, help="gateway port")
    obs_trace.add_argument("--token", type=str, default="", help="gateway auth token")
    obs_trace.add_argument(
        "--client",
        type=str,
        default="cli",
        help="client identity (must own the ticket; default matches `repro submit`)",
    )
    obs_trace.add_argument("--json", action="store_true", help="raw JSON instead of the tree")
    obs_trace.set_defaults(func=_cmd_obs_trace)
    obs_profile = obs_sub.add_parser(
        "profile",
        help="fetch one gateway ticket's sampled stack profile "
        "(collapsed flamegraph lines, or --top N hottest frames)",
    )
    obs_profile.add_argument(
        "ticket_id", type=str, help="ticket id (from SUBMITTED/submit output)"
    )
    obs_profile.add_argument("--host", type=str, default="127.0.0.1", help="gateway address")
    obs_profile.add_argument("--port", type=int, required=True, help="gateway port")
    obs_profile.add_argument("--token", type=str, default="", help="gateway auth token")
    obs_profile.add_argument(
        "--client",
        type=str,
        default="cli",
        help="client identity (must own the ticket; default matches `repro submit`)",
    )
    obs_profile.add_argument(
        "--top",
        type=int,
        default=0,
        metavar="N",
        help="print the N hottest leaf frames instead of collapsed stacks",
    )
    obs_profile.add_argument(
        "--json", action="store_true", help="raw JSON instead of text"
    )
    obs_profile.set_defaults(func=_cmd_obs_profile)
    obs_top = obs_sub.add_parser(
        "top",
        help="live service/cluster view of a running gateway (workers, "
        "queue depth, docs/sec, cache hit rate, p95 latency, phase shares)",
    )
    obs_top.add_argument("--host", type=str, default="127.0.0.1", help="gateway address")
    obs_top.add_argument("--port", type=int, required=True, help="gateway port")
    obs_top.add_argument("--token", type=str, default="", help="gateway auth token")
    obs_top.add_argument("--client", type=str, default="obs-cli", help="client identity")
    obs_top.add_argument(
        "--interval", type=float, default=2.0, help="refresh period (s)"
    )
    obs_top.add_argument(
        "--count",
        type=int,
        default=0,
        help="frames before exiting (0 = until Ctrl-C)",
    )
    obs_top.set_defaults(func=_cmd_obs_top)

    fill = sub.add_parser(
        "fill-experiments",
        help="splice measured benchmark results into EXPERIMENTS.md",
    )
    fill.add_argument("--experiments-file", type=str, default="EXPERIMENTS.md")
    fill.add_argument("--measured-dir", type=str, default="results/measured")
    fill.set_defaults(func=_cmd_fill_experiments)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":
    sys.exit(main())
