"""Recognition parsers: Tesseract and GROBID simulators.

OCR-based tools do not rely on the embedded layer: they transcribe the
rendered page images line by line.  They are robust to missing/scrambled text
layers but computationally much more expensive, and their character error rate
tracks the scan quality (Section 3.1.2 of the paper).
"""

from __future__ import annotations

import numpy as np

from repro.documents import noise
from repro.documents.document import PageContent, SciDocument
from repro.documents.rendering import latex_ocr_garble, table_reading_order
from repro.parsers.base import Parser, ParserCost


def _render_page_for_ocr(page: PageContent, severity: float, rng: np.random.Generator) -> str:
    """Ground-truth page as seen by a line-based OCR engine before noise."""
    blocks: list[str] = []
    for element in page.elements:
        if element.kind == "equation" and element.latex is not None:
            blocks.append(latex_ocr_garble(element.latex, severity, rng))
        elif element.kind == "table":
            blocks.append(table_reading_order(element.text, drop_separator_prob=0.7, rng=rng))
        else:
            blocks.append(element.text)
    return "\n".join(blocks)


class TesseractSim(Parser):
    """Simulated Tesseract OCR.

    Line-oriented LSTM OCR: high character accuracy on clean renders, smooth
    degradation with scan quality, garbled math, and a CPU-heavy cost profile
    (no GPU requirement).
    """

    name = "tesseract"
    version = "5.3"
    #: OCR transcribes rendered page images — PDF-family only.
    supported_doc_types = frozenset({"pdf"})
    cost = ParserCost(
        cpu_seconds_per_page=1.35,
        cpu_memory_mb=650.0,
        per_document_overhead_seconds=0.4,
        model_load_seconds=1.5,
        variability=0.25,
    )

    def _parse_pages(self, document: SciDocument, rng: np.random.Generator) -> list[str]:
        degradation = document.image_layer.degradation_score()
        pages: list[str] = []
        for page in document.pages:
            base_severity = 0.16 + 0.9 * degradation
            rendered = _render_page_for_ocr(page, base_severity, rng)
            out = noise.ocr_channel(rendered, severity=base_severity, rng=rng)
            # Severely degraded scans occasionally defeat layout analysis and a
            # column or paragraph is skipped entirely.
            if degradation > 0.45 and rng.random() < degradation * 0.35:
                out = noise.drop_words(out, rate=0.25 * degradation, rng=rng)
            pages.append(out)
        return pages


class GrobidSim(Parser):
    """Simulated GROBID: ML-assisted *structured* extraction.

    GROBID excels at bibliographic structure but, run as a full-text parser,
    returns only the body text it confidently segments: tables, captions,
    equations and much of the back matter are dropped.  That is why the paper
    reports by far the lowest coverage and BLEU for it while its output is
    still clean at the character level.
    """

    name = "grobid"
    version = "0.8"
    #: GROBID segments PDF page structure (with an OCR fallback) — PDF only.
    supported_doc_types = frozenset({"pdf"})
    cost = ParserCost(
        cpu_seconds_per_page=0.55,
        cpu_memory_mb=2200.0,
        per_document_overhead_seconds=0.8,
        model_load_seconds=6.0,
        variability=0.30,
    )

    #: Element kinds GROBID's segmenter keeps in the full-text output.
    _BODY_KINDS = ("paragraph", "citation_block", "heading")

    def _parse_pages(self, document: SciDocument, rng: np.random.Generator) -> list[str]:
        pages: list[str] = []
        usable_layer = document.text_layer.quality.is_usable
        for page_index, page in enumerate(document.pages):
            blocks: list[str] = []
            for element in page.elements:
                if element.kind not in self._BODY_KINDS:
                    # Non-body material is dropped almost always.
                    if rng.random() < 0.95:
                        continue
                if element.kind == "heading" and rng.random() < 0.3:
                    continue
                if element.kind == "citation_block" and rng.random() < 0.45:
                    continue
                if element.kind == "paragraph" and rng.random() < 0.18:
                    # Paragraphs misclassified as headers/footnotes are dropped.
                    continue
                text = element.text
                if not usable_layer:
                    # Without a usable embedded layer GROBID falls back to its
                    # own OCR pass, which is noticeably noisier.
                    severity = 0.3 + 0.5 * document.image_layer.degradation_score()
                    text = noise.ocr_channel(text, severity=severity, rng=rng)
                else:
                    text = noise.substitute_characters(text, rate=0.002, rng=rng)
                blocks.append(text)
            # Segmentation failures on layout-dense pages drop the whole page.
            dense = page.equation_fraction > 0.3 or len(page.elements) > 7
            if dense and rng.random() < 0.25:
                blocks = []
            pages.append("\n".join(blocks))
        return pages
