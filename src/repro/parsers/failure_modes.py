"""Named parser failure modes (Figure 1 of the paper).

Each function applies one failure mode to parser output text; the simulated
parsers compose them according to their characteristic error profiles, and the
``examples/failure_modes.py`` script demonstrates all of them on a single
document, mirroring Figure 1:

(a) whitespace injection, (b) word substitution, (c) character scrambling,
(d) character substitution, (e) corrupted SMILES, (f) LaTeX-to-plaintext
conversion, (g) dropped document page.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.documents import noise
from repro.documents.rendering import latex_to_prose

#: A SMILES-looking token: runs of organic-chemistry SMILES characters.
_SMILES_TOKEN_RE = re.compile(r"\(?[A-Za-z0-9@+\-\[\]\(\)=#$]{6,}\)?")
_SMILES_CHARS = set("CNOSPFIclnos0123456789()[]=#+-@")


def whitespace_injection(text: str, rng: np.random.Generator, severity: float = 0.5) -> str:
    """(a) Insert spurious spaces inside words."""
    return noise.inject_whitespace(text, rate=0.02 + 0.2 * severity, rng=rng)


def word_substitution(
    text: str,
    rng: np.random.Generator,
    severity: float = 0.5,
    vocabulary: tuple[str, ...] | None = None,
) -> str:
    """(b) Replace words with unrelated vocabulary items."""
    return noise.substitute_words(text, rate=0.01 + 0.08 * severity, rng=rng, vocabulary=vocabulary)


def character_scrambling(text: str, rng: np.random.Generator, severity: float = 0.5) -> str:
    """(c) Shuffle the interior characters of words."""
    return noise.scramble_characters(text, rate=0.05 + 0.5 * severity, rng=rng)


def character_substitution(text: str, rng: np.random.Generator, severity: float = 0.5) -> str:
    """(d) Replace characters with OCR-confusable look-alikes."""
    return noise.substitute_characters(text, rate=0.005 + 0.05 * severity, rng=rng)


def _looks_like_smiles(token: str) -> bool:
    stripped = token.strip("().,;")
    if len(stripped) < 6:
        return False
    specials = sum(1 for c in stripped if c in "()[]=#@")
    upper = sum(1 for c in stripped if c.isupper())
    return all(c in _SMILES_CHARS for c in stripped) and (specials >= 1 or upper >= len(stripped) / 2)


def smiles_corruption(text: str, rng: np.random.Generator, severity: float = 0.5) -> str:
    """(e) Corrupt SMILES-like identifiers (dropped ring closures, case flips)."""
    words = text.split(" ")
    out: list[str] = []
    for word in words:
        if _looks_like_smiles(word) and rng.random() < 0.3 + 0.6 * severity:
            corrupted = noise.corrupt_case(word, rate=0.3, rng=rng)
            corrupted = corrupted.replace("(", "", 1) if rng.random() < 0.5 else corrupted
            corrupted = noise.substitute_characters(corrupted, rate=0.2, rng=rng)
            out.append(corrupted)
        else:
            out.append(word)
    return " ".join(out)


def latex_plaintext_conversion(latex: str) -> str:
    """(f) Convert a LaTeX equation to plain prose (Marker-style)."""
    return latex_to_prose(latex)


def page_drop(
    page_texts: Sequence[str],
    rng: np.random.Generator,
    drop_probability: float = 0.05,
) -> list[str]:
    """(g) Drop whole pages (the most severe failure mode).

    Dropped pages are returned as empty strings so that page alignment (and
    therefore coverage accounting) is preserved.
    """
    out: list[str] = []
    for text in page_texts:
        if rng.random() < drop_probability:
            out.append("")
        else:
            out.append(text)
    # Never drop every page of a document: real parsers emit at least a
    # fragment, and an all-empty parse would be indistinguishable from a crash.
    if page_texts and all(t == "" for t in out):
        keep = int(rng.integers(0, len(page_texts)))
        out[keep] = page_texts[keep]
    return out


@dataclass(frozen=True)
class FailureMode:
    """Catalog entry pairing a Figure 1 label with its transformation."""

    label: str
    description: str
    apply: Callable[[str, np.random.Generator], str]


def catalog() -> list[FailureMode]:
    """The Figure 1 failure-mode catalog (text-level modes only).

    Page dropping operates on page lists rather than a single string and is
    therefore exposed separately via :func:`page_drop`.
    """
    return [
        FailureMode(
            label="(a) whitespace injection",
            description="spurious spaces inserted inside words",
            apply=lambda text, rng: whitespace_injection(text, rng, severity=0.8),
        ),
        FailureMode(
            label="(b) word substitution",
            description="words replaced with unrelated vocabulary",
            apply=lambda text, rng: word_substitution(text, rng, severity=0.8),
        ),
        FailureMode(
            label="(c) character scrambling",
            description="interior characters of words shuffled",
            apply=lambda text, rng: character_scrambling(text, rng, severity=0.8),
        ),
        FailureMode(
            label="(d) character substitution",
            description="characters replaced with OCR look-alikes",
            apply=lambda text, rng: character_substitution(text, rng, severity=0.8),
        ),
        FailureMode(
            label="(e) corrupted SMILES",
            description="molecular identifiers corrupted",
            apply=lambda text, rng: smiles_corruption(text, rng, severity=0.9),
        ),
        FailureMode(
            label="(f) LaTeX to plaintext conversion",
            description="equations verbalised into prose",
            apply=lambda text, rng: latex_plaintext_conversion(text),
        ),
    ]
