"""Simulated PDF parsers.

The paper benchmarks seven parsers spanning three families: text extraction
(PyMuPDF, pypdf), optical character recognition (Tesseract, GROBID), and
Vision-Transformer document models (Nougat, Marker).  The real tools are not
available offline, so each is re-implemented as a *behavioural simulator*:
it reads the same channel the real tool reads (the embedded text layer for
extraction, the rendered image layer for recognition), exhibits the same
characteristic failure modes (Figure 1), and consumes resources according to a
cost model calibrated to the paper's relative throughputs.
"""

from __future__ import annotations

from repro.parsers.base import Parser, ParseResult, ParserCost, ResourceUsage
from repro.parsers.extraction import PyMuPDFSim, PyPDFSim
from repro.parsers.ocr import GrobidSim, TesseractSim
from repro.parsers.vit import MarkerSim, NougatSim
from repro.parsers.registry import ParserRegistry, default_registry

__all__ = [
    "Parser",
    "ParseResult",
    "ParserCost",
    "ResourceUsage",
    "PyMuPDFSim",
    "PyPDFSim",
    "TesseractSim",
    "GrobidSim",
    "NougatSim",
    "MarkerSim",
    "ParserRegistry",
    "default_registry",
]
