"""Parser abstraction, parse results, and the resource-cost model.

The cost model is what couples parsing quality to the systems side of the
paper: the AdaParse budget optimiser (Appendix C) reasons about average
per-parser costs, and the HPC simulator charges each task the document's
simulated CPU/GPU seconds.  Costs are calibrated against the paper's relative
throughputs: PyMuPDF ≈ 135× Nougat and ≈ 13× pypdf on a single node, with
Nougat processing roughly 1–2 PDF/s on a 4-GPU node.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

import numpy as np

from repro.documents.document import SciDocument
from repro.utils.rng import rng_from

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports base)
    from repro.core.engine import RoutingDecision


@dataclass(frozen=True)
class ResourceUsage:
    """Resources consumed by one parse task.

    ``cpu_seconds`` are single-core seconds; ``gpu_seconds`` are single-GPU
    seconds.  Memory figures are peak working-set sizes.
    """

    cpu_seconds: float = 0.0
    gpu_seconds: float = 0.0
    cpu_memory_mb: float = 0.0
    gpu_memory_mb: float = 0.0

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(
            cpu_seconds=self.cpu_seconds + other.cpu_seconds,
            gpu_seconds=self.gpu_seconds + other.gpu_seconds,
            cpu_memory_mb=max(self.cpu_memory_mb, other.cpu_memory_mb),
            gpu_memory_mb=max(self.gpu_memory_mb, other.gpu_memory_mb),
        )

    def to_json_dict(self) -> dict[str, float]:
        """JSON view; the one serialisation shared by reports and the cache."""
        return {
            "cpu_seconds": self.cpu_seconds,
            "gpu_seconds": self.gpu_seconds,
            "cpu_memory_mb": self.cpu_memory_mb,
            "gpu_memory_mb": self.gpu_memory_mb,
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "ResourceUsage":
        return cls(
            cpu_seconds=float(payload.get("cpu_seconds", 0.0)),
            gpu_seconds=float(payload.get("gpu_seconds", 0.0)),
            cpu_memory_mb=float(payload.get("cpu_memory_mb", 0.0)),
            gpu_memory_mb=float(payload.get("gpu_memory_mb", 0.0)),
        )

    @property
    def total_compute_seconds(self) -> float:
        """CPU plus GPU seconds (the scalar the budget constraint uses)."""
        return self.cpu_seconds + self.gpu_seconds


@dataclass(frozen=True)
class ParserCost:
    """Static cost profile of a parser.

    Attributes
    ----------
    cpu_seconds_per_page, gpu_seconds_per_page:
        Mean per-page processing cost on the reference node.
    cpu_memory_mb, gpu_memory_mb:
        Peak memory per worker.
    model_load_seconds:
        One-time model initialisation cost (amortised by warm-started
        workers; paid per task by cold-started ones).
    per_document_overhead_seconds:
        Fixed per-document cost (file open, layout pass, serialisation).
    variability:
        Log-normal sigma of per-document cost noise (content heterogeneity).
    """

    cpu_seconds_per_page: float = 0.0
    gpu_seconds_per_page: float = 0.0
    cpu_memory_mb: float = 256.0
    gpu_memory_mb: float = 0.0
    model_load_seconds: float = 0.0
    per_document_overhead_seconds: float = 0.0
    variability: float = 0.15

    @property
    def uses_gpu(self) -> bool:
        """Whether the parser needs a GPU worker."""
        return self.gpu_seconds_per_page > 0.0 or self.gpu_memory_mb > 0.0

    def expected_document_usage(self, n_pages: int) -> ResourceUsage:
        """Expected resource usage for a document of ``n_pages`` pages."""
        return ResourceUsage(
            cpu_seconds=self.per_document_overhead_seconds + self.cpu_seconds_per_page * n_pages,
            gpu_seconds=self.gpu_seconds_per_page * n_pages,
            cpu_memory_mb=self.cpu_memory_mb,
            gpu_memory_mb=self.gpu_memory_mb,
        )

    def sample_document_usage(
        self, n_pages: int, rng: np.random.Generator, difficulty: float = 0.0
    ) -> ResourceUsage:
        """Sample a document's resource usage.

        ``difficulty`` in ``[0, 1]`` inflates costs for content-heavy documents
        (dense layouts and degraded scans take longer to process).
        """
        expected = self.expected_document_usage(n_pages)
        scale = float(np.exp(rng.normal(0.0, self.variability))) * (1.0 + 0.5 * difficulty)
        return ResourceUsage(
            cpu_seconds=expected.cpu_seconds * scale,
            gpu_seconds=expected.gpu_seconds * scale,
            cpu_memory_mb=expected.cpu_memory_mb,
            gpu_memory_mb=expected.gpu_memory_mb,
        )


@dataclass
class ParseResult:
    """Output of parsing one document with one parser."""

    parser_name: str
    doc_id: str
    page_texts: list[str]
    usage: ResourceUsage = field(default_factory=ResourceUsage)
    succeeded: bool = True
    error: str | None = None

    @property
    def text(self) -> str:
        """Concatenated document text."""
        return "\n".join(self.page_texts)

    @property
    def n_pages(self) -> int:
        return len(self.page_texts)

    @property
    def n_characters(self) -> int:
        return sum(len(t) for t in self.page_texts)

    def to_json_dict(self) -> dict:
        """Full-fidelity JSON view (page texts included; cache entry format)."""
        return {
            "parser_name": self.parser_name,
            "doc_id": self.doc_id,
            "page_texts": list(self.page_texts),
            "usage": self.usage.to_json_dict(),
            "succeeded": self.succeeded,
            "error": self.error,
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "ParseResult":
        return cls(
            parser_name=payload["parser_name"],
            doc_id=payload["doc_id"],
            page_texts=list(payload.get("page_texts", [])),
            usage=ResourceUsage.from_json_dict(payload.get("usage", {})),
            succeeded=bool(payload.get("succeeded", True)),
            error=payload.get("error"),
        )


class Parser(abc.ABC):
    """Abstract base class of all simulated parsers.

    Subclasses implement :meth:`_parse_pages`, producing per-page text from
    the channel they consume; the base class handles per-document random
    streams, resource accounting, and failure wrapping.
    """

    #: Unique parser name (used by the registry, tables, and seeds).
    name: str = "abstract"
    #: Parser version, part of the cache-key fingerprint: bump it when the
    #: parser's output for identical input changes.
    version: str = "1.0"
    #: Static cost profile.
    cost: ParserCost = ParserCost()
    #: Document types (:class:`~repro.documents.document.DocumentType`
    #: values) this parser can process.  Extraction parsers read the text
    #: layer and accept every type; recognition parsers (OCR/ViT) transcribe
    #: rendered page images, which only PDF-family documents have, and
    #: restrict this to ``{"pdf"}``.  The routing layer never sends a
    #: document to a parser that does not support its type.
    supported_doc_types: frozenset[str] = frozenset({"pdf", "html", "markdown"})

    def supports_doc_type(self, doc_type: str) -> bool:
        """Whether this parser can process documents of ``doc_type``."""
        return doc_type in self.supported_doc_types

    def document_rng(self, document: SciDocument, salt: str = "") -> np.random.Generator:
        """Deterministic random stream for (parser, document)."""
        return rng_from(document.seed, "parser", self.name, document.doc_id, salt)

    # ------------------------------------------------------------------ #
    # Parsing
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _parse_pages(self, document: SciDocument, rng: np.random.Generator) -> list[str]:
        """Produce the per-page text output for a document."""

    def content_difficulty(self, document: SciDocument) -> float:
        """Difficulty proxy in ``[0, 1]`` used to modulate cost (not quality)."""
        difficulty = 0.5 * document.equation_fraction
        difficulty += 0.5 * document.image_layer.degradation_score()
        return float(min(1.0, difficulty))

    def estimate_usage(self, document: SciDocument) -> ResourceUsage:
        """Expected resource usage (used by the budget optimiser and scheduler)."""
        return self.cost.expected_document_usage(document.n_pages)

    def parse(self, document: SciDocument) -> ParseResult:
        """Parse a document, returning text output and simulated resource usage."""
        rng = self.document_rng(document)
        usage = self.cost.sample_document_usage(
            document.n_pages, rng, difficulty=self.content_difficulty(document)
        )
        try:
            pages = self._parse_pages(document, rng)
        except Exception as exc:  # noqa: BLE001 - resilience is part of the design
            return ParseResult(
                parser_name=self.name,
                doc_id=document.doc_id,
                page_texts=["" for _ in range(document.n_pages)],
                usage=usage,
                succeeded=False,
                error=f"{type(exc).__name__}: {exc}",
            )
        return ParseResult(
            parser_name=self.name,
            doc_id=document.doc_id,
            page_texts=pages,
            usage=usage,
            succeeded=True,
        )

    def parse_many(self, documents: list[SciDocument]) -> list[ParseResult]:
        """Parse a batch of documents sequentially (library-level convenience)."""
        return [self.parse(doc) for doc in documents]

    def iter_parse(self, documents: Iterable[SciDocument]) -> Iterator[ParseResult]:
        """Stream parse results one document at a time.

        Unlike :meth:`parse_many` this never materialises the full result
        list: memory stays bounded by one document (engines override this
        with a bounded per-batch window).  Results are yielded in document
        order.
        """
        for document in documents:
            yield self.parse(document)

    def parse_with_telemetry(
        self, documents: Sequence[SciDocument]
    ) -> tuple[list[ParseResult], list["RoutingDecision"]]:
        """Parse a batch, returning results plus routing telemetry.

        Base parsers make no routing decisions, so the telemetry list is
        empty; AdaParse engines return one
        :class:`~repro.core.engine.RoutingDecision` per document.
        :class:`repro.pipeline.ParsePipeline` calls it per batch for
        non-engine parsers, so subclasses that override ``parse_many``
        (or this method) keep their behaviour under the pipeline.
        """
        return self.parse_many(list(documents)), []

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def config_fingerprint(self) -> str:
        """Stable fingerprint of everything that shapes this parser's output.

        The parse cache keys entries by ``(document content hash, parser
        config fingerprint)``, so the fingerprint must change whenever the
        parser would produce different output for identical input: class,
        name, :attr:`version`, and the cost model (whose variability drives
        the simulated usage sampling).  Engines extend this with α, batch
        size, and trained model weights.
        """
        from dataclasses import astuple

        from repro.utils.hashing import stable_hash_hex

        return stable_hash_hex(
            "parser-config",
            type(self).__name__,
            self.name,
            self.version,
            *astuple(self.cost),
            *sorted(self.supported_doc_types),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def single_node_throughput(
    cost: ParserCost,
    pages_per_document: float = 10.0,
    cpu_cores: int = 32,
    gpus: int = 4,
) -> float:
    """Ideal single-node throughput (documents/second) implied by a cost model.

    This mirrors the legend of Figure 3: it ignores I/O and scheduling overhead
    and assumes perfect intra-node parallelism over CPU cores or GPUs.
    """
    per_doc_cpu = cost.per_document_overhead_seconds + cost.cpu_seconds_per_page * pages_per_document
    per_doc_gpu = cost.gpu_seconds_per_page * pages_per_document
    rates = []
    if per_doc_cpu > 0:
        rates.append(cpu_cores / per_doc_cpu)
    if per_doc_gpu > 0:
        rates.append(gpus / per_doc_gpu)
    if not rates:
        return float("inf")
    return min(rates)
