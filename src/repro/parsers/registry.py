"""Parser registry: the set of parsers available to AdaParse and the harness."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.parsers.base import Parser
from repro.parsers.extraction import PyMuPDFSim, PyPDFSim
from repro.parsers.ocr import GrobidSim, TesseractSim
from repro.parsers.vit import MarkerSim, NougatSim

#: Canonical parser ordering used by tables and the selector's output head.
DEFAULT_PARSER_ORDER: tuple[str, ...] = (
    "marker",
    "nougat",
    "pymupdf",
    "pypdf",
    "grobid",
    "tesseract",
)


class ParserRegistry:
    """A named collection of parser instances.

    The registry fixes a stable ordering (needed because the selector model's
    regression head predicts one accuracy per parser, by position) and offers
    lookup by name.
    """

    def __init__(self, parsers: Iterable[Parser] = ()) -> None:
        self._parsers: dict[str, Parser] = {}
        for parser in parsers:
            self.register(parser)

    def register(self, parser: Parser) -> None:
        """Add a parser; names must be unique."""
        if parser.name in self._parsers:
            raise ValueError(f"parser {parser.name!r} is already registered")
        self._parsers[parser.name] = parser

    def get(self, name: str) -> Parser:
        """Look up a parser by name."""
        try:
            return self._parsers[name]
        except KeyError as exc:
            raise KeyError(
                f"unknown parser {name!r}; registered: {sorted(self._parsers)}"
            ) from exc

    def __contains__(self, name: str) -> bool:
        return name in self._parsers

    def __len__(self) -> int:
        return len(self._parsers)

    def __iter__(self) -> Iterator[Parser]:
        return iter(self._parsers.values())

    @property
    def names(self) -> list[str]:
        """Registered parser names in registration order."""
        return list(self._parsers)

    def subset(self, names: Iterable[str]) -> "ParserRegistry":
        """A new registry restricted to the given parser names."""
        return ParserRegistry(self.get(n) for n in names)


def default_registry() -> ParserRegistry:
    """The paper's six base parsers in canonical order."""
    instances: dict[str, Parser] = {
        "marker": MarkerSim(),
        "nougat": NougatSim(),
        "pymupdf": PyMuPDFSim(),
        "pypdf": PyPDFSim(),
        "grobid": GrobidSim(),
        "tesseract": TesseractSim(),
    }
    return ParserRegistry(instances[name] for name in DEFAULT_PARSER_ORDER)
