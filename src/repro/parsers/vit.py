"""Vision-Transformer parsers: Nougat and Marker simulators.

ViT document models decode text (including LaTeX math) end-to-end from page
images.  They are the highest-quality option on difficult documents but are
GPU-bound, orders of magnitude slower than extraction, and exhibit their own
failure modes — most severely, dropping entire pages when decoding degenerates
(Section 3.1.3 and Figure 1(g) of the paper).
"""

from __future__ import annotations

import numpy as np

from repro.documents import noise
from repro.documents.document import PageContent, SciDocument
from repro.documents.rendering import latex_to_prose
from repro.parsers.base import Parser, ParserCost
from repro.parsers.failure_modes import page_drop


def _nougat_page_render(page: PageContent, rng: np.random.Generator, severity: float) -> str:
    """Nougat's decoded markdown-ish text for one page before global noise."""
    blocks: list[str] = []
    for element in page.elements:
        if element.kind == "equation" and element.latex is not None:
            # Nougat is trained to emit LaTeX; small bracket/sub-script slips
            # appear as degradation grows.
            latex = element.latex
            if rng.random() < 0.10 + 0.4 * severity:
                latex = noise.substitute_characters(latex, rate=0.02 + 0.05 * severity, rng=rng)
            blocks.append(latex)
        elif element.kind == "heading":
            blocks.append("# " + element.text if rng.random() < 0.8 else element.text)
        elif element.kind == "table":
            # Tables decode into markdown; cell order is preserved but
            # separators, alignment and some cells differ from the ground truth.
            table = element.text.replace(" | ", " ")
            if rng.random() < 0.5:
                table = noise.drop_words(table, rate=0.08, rng=rng)
            blocks.append(table)
        elif element.kind == "reference_entry":
            # The autoregressive decoder tends to truncate long bibliographies.
            if rng.random() < 0.28 + 0.2 * severity:
                continue
            blocks.append(element.text)
        elif element.kind == "boilerplate":
            # Nougat is trained to skip licensing/front-matter boilerplate.
            if rng.random() < 0.6:
                continue
            blocks.append(element.text)
        else:
            blocks.append(element.text)
    return "\n".join(blocks)


class NougatSim(Parser):
    """Simulated Nougat (Swin-based ViT for academic documents).

    Reads page images at a fixed input resolution, decodes LaTeX faithfully,
    is fairly robust to the scan augmentations it was trained with, but
    occasionally drops entire pages and repeats/hallucinates short spans when
    decoding destabilises.  The cost model reflects ≈1–2 PDF/s on a 4-GPU
    node with a ≈15 s model-load time and a page batch size of 10.
    """

    name = "nougat"
    version = "0.1.17"
    #: ViT decoding starts from rendered page images — PDF-family only.
    supported_doc_types = frozenset({"pdf"})
    cost = ParserCost(
        cpu_seconds_per_page=0.04,
        gpu_seconds_per_page=0.45,
        cpu_memory_mb=1200.0,
        gpu_memory_mb=9500.0,
        model_load_seconds=15.0,
        per_document_overhead_seconds=0.25,
        variability=0.20,
    )

    #: Baseline probability of dropping a page on a clean render.
    page_drop_probability: float = 0.055

    def _parse_pages(self, document: SciDocument, rng: np.random.Generator) -> list[str]:
        degradation = document.image_layer.degradation_score()
        # Nougat was trained with scan-like augmentations, so the effective
        # severity grows sub-linearly with the degradation score.
        severity = 0.10 + 0.35 * degradation
        pages: list[str] = []
        for page in document.pages:
            out = _nougat_page_render(page, rng, severity)
            out = noise.substitute_characters(out, rate=0.006 + 0.02 * severity, rng=rng)
            out = noise.substitute_words(out, rate=0.012, rng=rng)
            out = noise.inject_whitespace(out, rate=0.01, rng=rng)
            if rng.random() < 0.15 + 0.3 * severity:
                # Decoder repetition: a short span is duplicated.
                words = out.split(" ")
                if len(words) > 30:
                    start = int(rng.integers(0, len(words) - 20))
                    span = words[start : start + int(rng.integers(5, 15))]
                    words[start:start] = span
                    out = " ".join(words)
            pages.append(out)
        drop_p = self.page_drop_probability + 0.08 * degradation
        return page_drop(pages, rng, drop_probability=drop_p)


class MarkerSim(Parser):
    """Simulated Marker: explicit layout detection followed by per-element OCR.

    Marker's layout stage gives it the highest page coverage of any parser in
    the paper's study, but it converts equations to plain text (failure mode
    (f)) and its per-element pipeline is the slowest and scales worst across
    nodes because of a serialised layout-coordination stage.
    """

    name = "marker"
    version = "0.2"
    #: Layout detection + per-element OCR over page images — PDF-family only.
    supported_doc_types = frozenset({"pdf"})
    cost = ParserCost(
        cpu_seconds_per_page=0.35,
        gpu_seconds_per_page=0.85,
        cpu_memory_mb=2400.0,
        gpu_memory_mb=11000.0,
        model_load_seconds=22.0,
        per_document_overhead_seconds=1.6,
        variability=0.30,
    )

    def _parse_pages(self, document: SciDocument, rng: np.random.Generator) -> list[str]:
        degradation = document.image_layer.degradation_score()
        severity = 0.12 + 0.5 * degradation
        pages: list[str] = []
        for page in document.pages:
            blocks: list[str] = []
            for element in page.elements:
                if element.kind == "equation" and element.latex is not None:
                    # texify fallback: equations become prose-like plain text.
                    blocks.append(latex_to_prose(element.latex))
                elif element.kind == "table":
                    blocks.append(element.text)
                elif element.kind == "heading":
                    blocks.append("## " + element.text)
                else:
                    blocks.append(element.text)
            out = "\n".join(blocks)
            out = noise.substitute_characters(out, rate=0.006 + 0.03 * severity, rng=rng)
            out = noise.substitute_words(out, rate=0.02, rng=rng)
            out = noise.inject_whitespace(out, rate=0.03, rng=rng)
            if degradation > 0.5 and rng.random() < 0.3:
                out = noise.drop_words(out, rate=0.08, rng=rng)
            pages.append(out)
        # Layout detection almost never loses a page outright.
        return page_drop(pages, rng, drop_probability=0.01 + 0.02 * degradation)
