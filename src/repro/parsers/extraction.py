"""Text-extraction parsers: PyMuPDF and pypdf simulators.

Extraction tools read the text embedded in the PDF.  They are extremely fast
and language-agnostic, but they can only be as good as the embedded layer:
missing, scrambled, or OCR-derived layers pass straight through to the output
(Section 3.1.1 of the paper).
"""

from __future__ import annotations

import numpy as np

from repro.documents import noise
from repro.documents.document import SciDocument, TextLayerQuality
from repro.parsers.base import Parser, ParserCost


class PyMuPDFSim(Parser):
    """Simulated PyMuPDF (MuPDF binding): the fast, high-quality extractor.

    The paper uses PyMuPDF both as the default parser (its output feeds the
    selection models) and as the lightweight arm of AdaParse.  Its cost model
    is calibrated to be roughly 135× faster than Nougat and 13× faster than
    pypdf on a single node.
    """

    name = "pymupdf"
    version = "1.24"
    cost = ParserCost(
        cpu_seconds_per_page=0.020,
        cpu_memory_mb=180.0,
        per_document_overhead_seconds=0.012,
        variability=0.20,
    )

    def _parse_pages(self, document: SciDocument, rng: np.random.Generator) -> list[str]:
        pages: list[str] = []
        for page_text in document.text_layer.page_texts:
            if not page_text:
                pages.append("")
                continue
            out = page_text
            # Extraction emits visual reading order; the only artefacts PyMuPDF
            # adds itself are occasional kerning-induced spaces and rare
            # reading-order swaps in dense two-column layouts.
            out = noise.inject_whitespace(out, rate=0.006, rng=rng)
            if rng.random() < 0.05:
                out = noise.swap_adjacent_words(out, rate=0.02, rng=rng)
            pages.append(out)
        return pages


class PyPDFSim(Parser):
    """Simulated pypdf: the pure-Python extractor.

    pypdf is slower than MuPDF and considerably less careful about whitespace
    and ligatures, which is why the paper reports a dramatically lower
    character accuracy rate (CAR) for it despite a similar word-level BLEU.
    """

    name = "pypdf"
    version = "4.2"
    cost = ParserCost(
        cpu_seconds_per_page=0.26,
        cpu_memory_mb=300.0,
        per_document_overhead_seconds=0.05,
        variability=0.25,
    )

    def _parse_pages(self, document: SciDocument, rng: np.random.Generator) -> list[str]:
        pages: list[str] = []
        for page_text in document.text_layer.page_texts:
            if not page_text:
                pages.append("")
                continue
            out = page_text
            # Moderate whitespace damage (spurious spaces inside words and
            # dropped spaces between words), broken ligatures, and pervasive
            # glyph-case/encoding slips.  Word-level metrics survive this far
            # better than character-level ones, which is why the paper reports
            # a respectable BLEU but a collapsed CAR for pypdf.
            out = noise.inject_whitespace(out, rate=0.05, rng=rng)
            out = noise.merge_words(out, rate=0.05, rng=rng)
            out = noise.break_ligatures(out, rate=0.8, rng=rng)
            out = noise.substitute_characters(out, rate=0.005, rng=rng)
            out = noise.corrupt_case(out, rate=0.30, rng=rng)
            if document.text_layer.quality is TextLayerQuality.NOISY:
                out = noise.scramble_characters(out, rate=0.02, rng=rng)
            pages.append(out)
        return pages
