"""The content-addressed parse-result cache.

:class:`ParseCache` combines three mechanisms:

1. a bounded in-memory LRU tier (:class:`repro.cache.memory.LruTier`) for
   the hot working set,
2. an optional sharded on-disk backend
   (:class:`repro.cache.disk.ShardedDiskStore`) that persists entries
   across processes with atomic write-then-rename and corruption-tolerant
   reads, and
3. a single-flight guard (:class:`repro.cache.singleflight.SingleFlight`)
   so concurrent workers that miss on the same key do the parse exactly
   once.

Entries are addressed by :class:`repro.cache.keys.CacheKey` — the
document's content hash plus the parser's configuration fingerprint — so a
change to α, model weights, or parser version keys to fresh slots and the
stale entries age out of the LRU (or are dropped with ``purge``).

:func:`cached_batch_worker` adapts the cache to the pipeline's batch
execution: hits are filled from the cache, misses are parsed as one
sub-batch (preserving the engine's per-batch α semantics for the documents
that actually run), and results are merged back in document order.
"""

from __future__ import annotations

import enum
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Sequence

from repro.cache.disk import ShardedDiskStore
from repro.cache.keys import CacheKey, parse_cache_key
from repro.cache.memory import LruTier
from repro.cache.singleflight import Flight, SingleFlight
from repro.cache.stats import CacheStatsRecorder
from repro.core.engine import RoutingDecision
from repro.documents.document import SciDocument
from repro.obs import profiling as _profiling
from repro.obs import tracing as _tracing
from repro.parsers.base import ParseResult, ResourceUsage


class CachePolicy(str, enum.Enum):
    """What a request allows the cache to do.

    ========== ===== ======
    policy     reads writes
    ========== ===== ======
    off        no    no
    read       yes   no
    write      no    yes
    readwrite  yes   yes
    ========== ===== ======

    ``read`` serves warm traffic without growing the cache (e.g. replaying
    against a frozen snapshot); ``write`` repopulates without trusting
    existing entries (e.g. after a parser upgrade you want measured fresh).
    """

    OFF = "off"
    READ = "read"
    WRITE = "write"
    READWRITE = "readwrite"

    @property
    def reads(self) -> bool:
        return self in (CachePolicy.READ, CachePolicy.READWRITE)

    @property
    def writes(self) -> bool:
        return self in (CachePolicy.WRITE, CachePolicy.READWRITE)

    @classmethod
    def coerce(cls, value: "CachePolicy | str") -> "CachePolicy":
        if isinstance(value, CachePolicy):
            return value
        try:
            return cls(value)
        except ValueError as exc:
            raise ValueError(
                f"unknown cache policy {value!r}; expected one of "
                f"{[p.value for p in cls]}"
            ) from exc


@dataclass
class CacheEntry:
    """One cached parse: the result, its routing decision, and provenance."""

    key: str
    result: ParseResult
    decision: RoutingDecision | None = None
    compute_seconds: float = 0.0
    stored_at: float = 0.0

    def fresh_result(self) -> ParseResult:
        """An independent copy of the result (callers may mutate theirs)."""
        return ParseResult(
            parser_name=self.result.parser_name,
            doc_id=self.result.doc_id,
            page_texts=list(self.result.page_texts),
            usage=self.result.usage,
            succeeded=self.result.succeeded,
            error=self.result.error,
        )

    # ------------------------------------------------------------------ #
    # Serialisation (the on-disk JSONL line)
    # ------------------------------------------------------------------ #
    def to_json_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "key": self.key,
            "compute_seconds": self.compute_seconds,
            "stored_at": self.stored_at,
            "result": self.result.to_json_dict(),
            "decision": None,
        }
        if self.decision is not None:
            payload["decision"] = {
                "doc_id": self.decision.doc_id,
                "chosen_parser": self.decision.chosen_parser,
                "stage": self.decision.stage,
                "predicted_improvement": self.decision.predicted_improvement,
                "doc_type": self.decision.doc_type,
            }
        return payload

    @classmethod
    def from_json_dict(cls, payload: dict[str, Any]) -> "CacheEntry":
        result = ParseResult.from_json_dict(payload["result"])
        decision = None
        decision_payload = payload.get("decision")
        if decision_payload is not None:
            decision = RoutingDecision(
                doc_id=decision_payload["doc_id"],
                chosen_parser=decision_payload["chosen_parser"],
                stage=decision_payload["stage"],
                predicted_improvement=float(
                    decision_payload.get("predicted_improvement", 0.0)
                ),
                doc_type=str(decision_payload.get("doc_type", "pdf")),
            )
        return cls(
            key=payload["key"],
            result=result,
            decision=decision,
            compute_seconds=float(payload.get("compute_seconds", 0.0)),
            stored_at=float(payload.get("stored_at", 0.0)),
        )


#: What a compute callable returns: the parse result and (for engines) the
#: routing decision that produced it.
ComputeOutput = tuple[ParseResult, RoutingDecision | None]

_NULL_RECORDER = CacheStatsRecorder()


class ParseCache:
    """Two-tier content-addressed cache with single-flight deduplication.

    Parameters
    ----------
    directory:
        Root of the sharded on-disk backend; ``None`` keeps the cache
        memory-only (still bounded, still single-flighted).
    n_shards:
        Number of hash-prefix shard files of the disk backend.
    max_memory_entries:
        Capacity of the in-memory LRU tier.
    flush_every:
        Auto-flush threshold of the disk backend (puts between flushes).
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        n_shards: int = 16,
        max_memory_entries: int = 4096,
        flush_every: int = 256,
    ) -> None:
        self.memory: LruTier[CacheEntry] = LruTier(max_entries=max_memory_entries)
        self.disk = (
            ShardedDiskStore(directory, n_shards=n_shards, flush_every=flush_every)
            if directory is not None
            else None
        )
        self.flights = SingleFlight()

    # ------------------------------------------------------------------ #
    # Tiered lookup / store
    # ------------------------------------------------------------------ #
    def lookup(
        self, key: CacheKey | str, recorder: CacheStatsRecorder | None = None
    ) -> CacheEntry | None:
        """Check memory then disk; promote disk hits into the memory tier."""
        raw = str(key)
        recorder = recorder or _NULL_RECORDER
        entry = self.memory.get(raw)
        if entry is not None:
            recorder.record_hit(time_saved_seconds=entry.compute_seconds)
            return entry
        if self.disk is not None:
            found = self.disk.get_with_size(raw)
            if found is not None:
                payload, nbytes = found
                try:
                    entry = CacheEntry.from_json_dict(payload)
                except (KeyError, TypeError, ValueError):
                    # A structurally valid JSON line with a broken schema:
                    # treat like a torn line and drop it.
                    self.disk.delete(raw)
                    return None
                self.memory.put(raw, entry)
                recorder.record_hit(
                    time_saved_seconds=entry.compute_seconds, bytes_read=nbytes
                )
                return entry
        return None

    def store(
        self,
        key: CacheKey | str,
        result: ParseResult,
        decision: RoutingDecision | None = None,
        compute_seconds: float = 0.0,
        recorder: CacheStatsRecorder | None = None,
    ) -> CacheEntry:
        """Insert a parse into both tiers (disk durable after ``flush``)."""
        raw = str(key)
        recorder = recorder or _NULL_RECORDER
        entry = CacheEntry(
            key=raw,
            result=result,
            decision=decision,
            compute_seconds=compute_seconds,
            stored_at=time.time(),
        )
        self.memory.put(raw, entry)
        bytes_written = 0
        if self.disk is not None:
            bytes_written = self.disk.put(raw, entry.to_json_dict())
        recorder.record_store(bytes_written=bytes_written)
        return entry

    # ------------------------------------------------------------------ #
    # Single-flight compute
    # ------------------------------------------------------------------ #
    def get_or_compute(
        self,
        key: CacheKey | str,
        compute: Callable[[], ComputeOutput],
        policy: CachePolicy | str = CachePolicy.READWRITE,
        recorder: CacheStatsRecorder | None = None,
    ) -> CacheEntry:
        """Serve ``key`` from the cache or compute it exactly once.

        Concurrent callers for the same key coalesce onto one computation
        regardless of policy; the policy only controls whether the cache is
        consulted before computing (``reads``) and whether the fresh entry
        is persisted (``writes``).
        """
        policy = CachePolicy.coerce(policy)
        recorder = recorder or _NULL_RECORDER
        if policy.reads:
            entry = self.lookup(key, recorder)
            if entry is not None:
                return entry
        raw = str(key)
        owner, flight = self.flights.begin(raw)
        if not owner:
            entry = flight.wait()
            recorder.record_coalesced(time_saved_seconds=entry.compute_seconds)
            return entry
        try:
            if policy.reads:
                # Double-check: a previous owner may have completed (and
                # stored) between our miss and our taking ownership.
                entry = self.lookup(key, recorder)
                if entry is not None:
                    self.flights.complete(raw, flight, entry)
                    return entry
            recorder.record_miss()
            started = perf_counter()
            result, decision = compute()
            elapsed = perf_counter() - started
            if policy.writes:
                entry = self.store(
                    raw, result, decision, compute_seconds=elapsed, recorder=recorder
                )
            else:
                entry = CacheEntry(
                    key=raw,
                    result=result,
                    decision=decision,
                    compute_seconds=elapsed,
                    stored_at=time.time(),
                )
            self.flights.complete(raw, flight, entry)
            return entry
        except BaseException as exc:
            self.flights.fail(raw, flight, exc)
            raise

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def flush(self) -> int:
        """Persist buffered disk writes; returns bytes written."""
        if self.disk is None:
            return 0
        return self.disk.flush()

    def purge(self, config_fingerprint: str | None = None) -> int:
        """Drop entries (all, or only one parser configuration's); returns count."""
        if config_fingerprint is None:
            removed = len(self.memory)
            self.memory.clear()
            if self.disk is not None:
                removed = max(removed, self.disk.purge())
            return removed

        def key_matches(raw: str) -> bool:
            try:
                return CacheKey.parse(raw).config_fingerprint == config_fingerprint
            except ValueError:
                return True  # malformed entries are purged too

        memory_removed = self.memory.purge(key_matches)
        if self.disk is not None:
            # The disk tier is a superset of the memory tier, so its count
            # is the authoritative one.
            return self.disk.purge(
                lambda payload: key_matches(str(payload.get("key", "")))
            )
        return memory_removed

    def describe(self) -> dict[str, Any]:
        """Inventory of the cache (the ``repro cache stats`` payload)."""
        description: dict[str, Any] = {
            "memory_entries": len(self.memory),
            "memory_capacity": self.memory.max_entries,
            "directory": None,
            "entries": len(self.memory),
            "shards": 0,
            "bytes_on_disk": 0,
            "corrupt_lines_skipped": 0,
            "parsers": {},
        }
        if self.disk is None:
            return description
        parsers: dict[str, int] = {}
        total = 0
        for payload in self.disk.iter_entries():
            total += 1
            name = str(payload.get("result", {}).get("parser_name", "?"))
            parsers[name] = parsers.get(name, 0) + 1
        description.update(
            {
                "directory": str(self.disk.directory),
                "entries": total,
                "shards": len(self.disk.shard_paths()),
                "bytes_on_disk": self.disk.bytes_on_disk(),
                "corrupt_lines_skipped": self.disk.corrupt_lines_skipped,
                "parsers": dict(sorted(parsers.items())),
            }
        )
        return description


# ---------------------------------------------------------------------- #
# Pipeline adapter
# ---------------------------------------------------------------------- #
#: A pipeline batch worker: documents in, (results, decisions) out.
BatchWorker = Callable[
    [list[SciDocument]], tuple[list[ParseResult], list[RoutingDecision]]
]


def cached_batch_worker(
    cache: ParseCache,
    policy: CachePolicy | str,
    config_fingerprint: str,
    inner: BatchWorker,
    recorder: CacheStatsRecorder | None = None,
) -> BatchWorker:
    """Wrap a batch worker with cache lookups and single-flight leases.

    Per batch: documents whose key is cached are filled from the cache;
    keys another worker is currently parsing are awaited (coalesced); the
    remaining documents are parsed as **one** sub-batch through ``inner``
    (so the engine's per-batch α budget applies to the documents that
    actually run) and, policy permitting, stored.  Results are merged back
    in the original document order, with per-document routing decisions
    replayed from the cache for hits.
    """
    policy = CachePolicy.coerce(policy)
    recorder = recorder or _NULL_RECORDER

    def run_batch(
        documents: list[SciDocument],
    ) -> tuple[list[ParseResult], list[RoutingDecision]]:
        n = len(documents)
        entries: list[CacheEntry | None] = [None] * n
        waits: list[tuple[int, Flight]] = []
        owned: deque[tuple[int, str, Flight]] = deque()  # begun, not yet settled
        owned_by_key: dict[str, int] = {}
        duplicates: list[tuple[int, int]] = []  # (slot, slot of owning occurrence)
        # Phase attribution accumulators: one leaf record per batch for
        # each of key hashing / lookup / store, instead of a (costlier)
        # nested phase bracket around every per-document operation.
        key_seconds = 0.0
        lookup_seconds = 0.0
        lookup_calls = 0
        store_seconds = 0.0
        store_calls = 0

        # Any exception while we hold unsettled flights must fail them, or
        # every other worker coalescing on those keys blocks forever.
        try:
            # The span's attributes mapping is snapshotted when the span
            # closes, so the hit/owned/wait tallies filled in after the
            # loop land on the recorded span.
            lookup_attrs: dict[str, int] = {"n_documents": n}
            with _tracing.span("cache.lookup", attributes=lookup_attrs):
                for i, document in enumerate(documents):
                    tick = perf_counter()
                    raw = str(parse_cache_key(document, config_fingerprint))
                    key_seconds += perf_counter() - tick
                    if policy.reads:
                        tick = perf_counter()
                        entry = cache.lookup(raw, recorder)
                        lookup_seconds += perf_counter() - tick
                        lookup_calls += 1
                        if entry is not None:
                            entries[i] = entry
                            continue
                    if raw in owned_by_key:
                        # Same key twice in one batch: the first occurrence
                        # parses, this one reuses its entry (waiting on our own
                        # flight would deadlock).
                        duplicates.append((i, owned_by_key[raw]))
                        continue
                    owner, flight = cache.flights.begin(raw)
                    if not owner:
                        waits.append((i, flight))
                        continue
                    owned.append((i, raw, flight))
                    owned_by_key[raw] = i
                    if policy.reads:
                        # Double-check: a previous owner may have completed (and
                        # stored) between our miss and our taking ownership.
                        tick = perf_counter()
                        entry = cache.lookup(raw, recorder)
                        lookup_seconds += perf_counter() - tick
                        lookup_calls += 1
                        if entry is not None:
                            owned.pop()
                            del owned_by_key[raw]
                            cache.flights.complete(raw, flight, entry)
                            entries[i] = entry
                lookup_attrs["hits"] = sum(1 for e in entries if e is not None)
                lookup_attrs["parsing"] = len(owned)
                lookup_attrs["coalescing"] = len(waits) + len(duplicates)

            # Parse everything this worker owns as a single sub-batch.
            if owned:
                sub_batch = [documents[i] for i, _, _ in owned]
                started = perf_counter()
                results, decisions = inner(sub_batch)
                elapsed = perf_counter() - started
                if len(results) != len(sub_batch):
                    raise RuntimeError(
                        f"batch worker returned {len(results)} results "
                        f"for {len(sub_batch)} documents"
                    )
                per_doc_seconds = elapsed / len(sub_batch)
                decision_by_doc = {d.doc_id: d for d in decisions}
                for result in results:
                    # Peek, settle, then pop: if store() raises (full disk,
                    # I/O error) the flight is still in `owned` and the
                    # handler below fails it for the waiters.
                    i, raw, flight = owned[0]
                    recorder.record_miss()
                    decision = decision_by_doc.get(result.doc_id)
                    if policy.writes:
                        tick = perf_counter()
                        entry = cache.store(
                            raw,
                            result,
                            decision,
                            compute_seconds=per_doc_seconds,
                            recorder=recorder,
                        )
                        store_seconds += perf_counter() - tick
                        store_calls += 1
                    else:
                        entry = CacheEntry(
                            key=raw,
                            result=result,
                            decision=decision,
                            compute_seconds=per_doc_seconds,
                            stored_at=time.time(),
                        )
                    entries[i] = entry
                    owned.popleft()
                    cache.flights.complete(raw, flight, entry)
        except BaseException as exc:
            while owned:
                _, raw, flight = owned.popleft()
                cache.flights.fail(raw, flight, exc)
            raise

        # Only after our own flights are settled do we wait on other
        # workers' flights (settle-before-wait makes deadlock impossible).
        for i, flight in waits:
            entry = flight.wait()
            recorder.record_coalesced(time_saved_seconds=entry.compute_seconds)
            entries[i] = entry
        for i, source in duplicates:
            entry = entries[source]
            assert entry is not None
            recorder.record_coalesced(time_saved_seconds=entry.compute_seconds)
            entries[i] = entry

        timer = _profiling.current_timer() if _profiling.phases_enabled() else None
        if timer is not None:
            timer.record(
                "cache.key", key_seconds, cpu_seconds=key_seconds, calls=n
            )
            if lookup_calls:
                timer.record(
                    "cache.lookup",
                    lookup_seconds,
                    cpu_seconds=lookup_seconds,
                    calls=lookup_calls,
                )
            if store_calls:
                timer.record(
                    "cache.store",
                    store_seconds,
                    cpu_seconds=store_seconds,
                    calls=store_calls,
                )

        results_out: list[ParseResult] = []
        decisions_out: list[RoutingDecision] = []
        for entry in entries:
            assert entry is not None
            results_out.append(entry.fresh_result())
            if entry.decision is not None:
                decisions_out.append(entry.decision)
        return results_out, decisions_out

    return run_batch
