"""Cache telemetry: the ``CacheStats`` block carried by ``ParseReport``.

Counters are accumulated through a thread-safe :class:`CacheStatsRecorder`
(the pipeline's worker threads all report into one recorder per run) and
snapshotted into an immutable-ish :class:`CacheStats` value for the report.
The same record calls also feed the process-wide :mod:`repro.obs.metrics`
registry, so per-run report stats and the global ``repro_cache_*`` series
can never drift apart.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.obs import metrics as _metrics

_CACHE_HITS = _metrics.counter(
    "repro_cache_hits_total", "Documents served from the parse cache."
)
_CACHE_MISSES = _metrics.counter(
    "repro_cache_misses_total", "Documents that had to be parsed (cache miss)."
)
_CACHE_COALESCED = _metrics.counter(
    "repro_cache_coalesced_total",
    "Documents deduplicated by the single-flight guard.",
)
_CACHE_STORES = _metrics.counter(
    "repro_cache_stores_total", "Entries written to the parse cache."
)
_CACHE_BYTES = _metrics.counter(
    "repro_cache_bytes_total",
    "Serialised entry bytes moved from/to the disk tier.",
    ("direction",),
)
_CACHE_TIME_SAVED = _metrics.counter(
    "repro_cache_time_saved_seconds_total",
    "Wall-clock parse cost the cache avoided repeating.",
)


@dataclass
class CacheStats:
    """What the cache did during one pipeline run.

    Attributes
    ----------
    hits:
        Documents served from the cache (memory or disk tier).
    misses:
        Documents that had to be parsed.
    coalesced:
        Documents whose parse was deduplicated by the single-flight guard
        (another worker was already parsing the same key).
    stores:
        Entries written to the cache.
    bytes_read, bytes_written:
        Serialised entry bytes moved from/to the disk tier.
    time_saved_seconds:
        Sum of the original wall-clock parse cost of every hit — the work
        the cache avoided repeating.
    """

    hits: int = 0
    misses: int = 0
    coalesced: int = 0
    stores: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    time_saved_seconds: float = 0.0

    @property
    def requests(self) -> int:
        """Total lookups the run issued against the cache."""
        return self.hits + self.misses + self.coalesced

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without parsing (hits + coalesces)."""
        if self.requests == 0:
            return 0.0
        return (self.hits + self.coalesced) / self.requests

    @property
    def any_activity(self) -> bool:
        """Whether the cache saw any traffic at all (False for policy off)."""
        return self.requests > 0 or self.stores > 0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            coalesced=self.coalesced + other.coalesced,
            stores=self.stores + other.stores,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
            time_saved_seconds=self.time_saved_seconds + other.time_saved_seconds,
        )

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "stores": self.stores,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "time_saved_seconds": self.time_saved_seconds,
            "hit_rate": round(self.hit_rate, 4),
        }

    @classmethod
    def from_json_dict(cls, payload: dict[str, Any]) -> "CacheStats":
        return cls(
            hits=int(payload.get("hits", 0)),
            misses=int(payload.get("misses", 0)),
            coalesced=int(payload.get("coalesced", 0)),
            stores=int(payload.get("stores", 0)),
            bytes_read=int(payload.get("bytes_read", 0)),
            bytes_written=int(payload.get("bytes_written", 0)),
            time_saved_seconds=float(payload.get("time_saved_seconds", 0.0)),
        )


class CacheStatsRecorder:
    """Thread-safe accumulator the cache reports into during a run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stats = CacheStats()

    def record_hit(self, time_saved_seconds: float = 0.0, bytes_read: int = 0) -> None:
        with self._lock:
            self._stats.hits += 1
            self._stats.time_saved_seconds += time_saved_seconds
            self._stats.bytes_read += bytes_read
        _CACHE_HITS.inc()
        if time_saved_seconds:
            _CACHE_TIME_SAVED.inc(time_saved_seconds)
        if bytes_read:
            _CACHE_BYTES.inc(bytes_read, direction="read")

    def record_miss(self) -> None:
        with self._lock:
            self._stats.misses += 1
        _CACHE_MISSES.inc()

    def record_coalesced(self, time_saved_seconds: float = 0.0) -> None:
        with self._lock:
            self._stats.coalesced += 1
            self._stats.time_saved_seconds += time_saved_seconds
        _CACHE_COALESCED.inc()
        if time_saved_seconds:
            _CACHE_TIME_SAVED.inc(time_saved_seconds)

    def record_store(self, bytes_written: int = 0) -> None:
        with self._lock:
            self._stats.stores += 1
            self._stats.bytes_written += bytes_written
        _CACHE_STORES.inc()
        if bytes_written:
            _CACHE_BYTES.inc(bytes_written, direction="written")

    def snapshot(self) -> CacheStats:
        """An independent copy of the counters so far."""
        with self._lock:
            return CacheStats(**vars(self._stats))
