"""The in-memory tier: a bounded, thread-safe LRU map of cache entries."""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Generic, TypeVar

_V = TypeVar("_V")


class LruTier(Generic[_V]):
    """Bounded LRU mapping from cache-key strings to entries.

    All operations take a single internal lock; the values themselves are
    treated as immutable (the cache hands out copies, never the stored
    object), so no further synchronisation is needed.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, _V] = OrderedDict()
        self.evictions = 0

    def get(self, key: str) -> _V | None:
        """Look up ``key``, refreshing its recency on a hit."""
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
            return value

    def put(self, key: str, value: _V) -> None:
        """Insert or refresh ``key``, evicting the least recently used entry."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def discard(self, key: str) -> None:
        with self._lock:
            self._entries.pop(key, None)

    def purge(self, predicate) -> int:
        """Drop entries whose *key* matches ``predicate``; returns the count."""
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries
