"""Single-flight guard: concurrent requests for one key do the work once.

When ``n_jobs`` pipeline workers miss the cache on the same key at the same
time, only the first becomes the *owner* and computes; the rest block on the
flight and receive the owner's result (or its exception).  This is the
classic ``singleflight`` pattern from Go's groupcache, adapted to threads.
"""

from __future__ import annotations

import threading
from typing import Any


class Flight:
    """One in-progress computation that late arrivals can wait on."""

    __slots__ = ("_event", "value", "error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None

    def complete(self, value: Any) -> None:
        self.value = value
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self._event.set()

    def wait(self, timeout: float | None = None) -> Any:
        """Block until the owner finishes; re-raise its exception on failure."""
        if not self._event.wait(timeout):
            raise TimeoutError("single-flight wait timed out")
        if self.error is not None:
            raise self.error
        return self.value


class SingleFlight:
    """Registry of in-progress flights keyed by cache-key string."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[str, Flight] = {}

    def begin(self, key: str) -> tuple[bool, Flight]:
        """Join the flight for ``key``.

        Returns ``(True, flight)`` when the caller became the owner and must
        eventually call :meth:`complete` or :meth:`fail`, or ``(False,
        flight)`` when another thread owns the computation and the caller
        should :meth:`Flight.wait` on it.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                return False, flight
            flight = Flight()
            self._flights[key] = flight
            return True, flight

    def complete(self, key: str, flight: Flight, value: Any) -> None:
        """Publish the owner's result and retire the flight."""
        with self._lock:
            self._flights.pop(key, None)
        flight.complete(value)

    def fail(self, key: str, flight: Flight, error: BaseException) -> None:
        """Propagate the owner's failure to all waiters and retire the flight."""
        with self._lock:
            self._flights.pop(key, None)
        flight.fail(error)

    def in_flight(self) -> int:
        with self._lock:
            return len(self._flights)
