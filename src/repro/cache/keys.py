"""Content-addressed cache keys for parse results.

A cache key answers one question: *would this parse produce byte-identical
output to a parse we already paid for?*  In this reproduction a parse is a
deterministic function of

* the document's **content channels** — the embedded text layer (what
  extraction parsers read), the image-layer degradations (what recognition
  parsers read), and the ground-truth pages they are derived from;
* the document's **identity** — ``doc_id`` and generation ``seed``, because
  the simulated parsers draw their per-document noise from
  ``rng_from(seed, "parser", name, doc_id)``; and
* the parser's **configuration fingerprint** — name, version, cost model,
  and for AdaParse engines the α budget, batch size, and trained model
  weights (see :meth:`repro.parsers.base.Parser.config_fingerprint`).

The content hash reuses the dataset-dedup hashing scheme
(:func:`repro.datasets.dedup.content_fingerprint` over the normalised text,
:func:`repro.utils.hashing.stable_hash` for the exact channels) rather than
introducing a second one, so a document hashes consistently whether it is
being deduplicated or cached.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.documents.document import SciDocument
from repro.utils.hashing import stable_hash, stable_hash_hex


#: Attribute the computed hash is memoised under on the document object.
#: Hashing a document's full text dominates a warm cache pass, and document
#: copies go through ``dataclasses.replace`` (fresh objects without the
#: attribute), so per-object memoisation is safe for the library's idioms.
_MEMO_ATTR = "_repro_cache_content_hash"


def document_content_hash(document: SciDocument) -> str:
    """Stable hex hash of everything a parse of ``document`` depends on.

    Combines the dedup-normalised content fingerprint (so the cache and the
    near-duplicate detector agree on what "same content" means) with the
    exact per-page texts, layer qualities, image-layer degradations, and the
    identity fields that seed the simulated parsers' noise channels.

    The hash is memoised on the document instance; callers that mutate a
    document's layers in place (rather than using ``with_text_layer`` /
    ``with_image_layer``) should delete the ``_repro_cache_content_hash``
    attribute to force a re-hash.
    """
    memoised = getattr(document, _MEMO_ATTR, None)
    if memoised is not None:
        return memoised
    value = _compute_content_hash(document)
    try:
        setattr(document, _MEMO_ATTR, value)
    except (AttributeError, TypeError):  # slotted/frozen document doubles
        pass
    return value


def _compute_content_hash(document: SciDocument) -> str:
    # Imported lazily: repro.datasets pulls in the assembly module (which
    # builds on the pipeline, which builds on this cache); deferring the
    # import keeps the module graph acyclic.
    from repro.datasets.dedup import content_fingerprint

    text = document.text_layer
    image = document.image_layer
    return stable_hash_hex(
        "parse-content",
        document.doc_id,
        document.seed,
        # Format family: routing eligibility (and thus engine output) depends
        # on it, so the same bytes under a different type must key apart.
        document.doc_type,
        # Normalised fingerprint: ties the cache to the dedup hashing scheme.
        content_fingerprint(text.text()),
        # Exact channels: two texts that normalise alike still key apart.
        stable_hash(*text.page_texts),
        stable_hash(*(page.ground_truth_text() for page in document.pages)),
        text.quality.value,
        text.producer,
        image.dpi,
        image.rotation_deg,
        image.blur_sigma,
        image.contrast,
        image.noise_level,
        image.jpeg_quality,
        image.is_scanned,
    )


@dataclass(frozen=True)
class CacheKey:
    """One cache slot: (document content hash, parser config fingerprint)."""

    content_hash: str
    config_fingerprint: str

    def __str__(self) -> str:
        return f"{self.content_hash}:{self.config_fingerprint}"

    @classmethod
    def parse(cls, raw: str) -> "CacheKey":
        """Rebuild a key from its ``str()`` form."""
        content_hash, _, fingerprint = raw.partition(":")
        if not content_hash or not fingerprint:
            raise ValueError(f"malformed cache key {raw!r}")
        return cls(content_hash=content_hash, config_fingerprint=fingerprint)


def parse_cache_key(document: SciDocument, config_fingerprint: str) -> CacheKey:
    """The cache key for parsing ``document`` under one parser configuration."""
    return CacheKey(
        content_hash=document_content_hash(document),
        config_fingerprint=config_fingerprint,
    )
