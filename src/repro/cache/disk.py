"""The persistent tier: hash-prefix-sharded JSONL files.

Layout: ``<directory>/shard-NNN.jsonl``, one JSON object per line, each
carrying its full cache key.  The design choices are the ones that matter at
scale:

* **Sharding** — entries are distributed over ``n_shards`` files by the
  content hash's prefix, so concurrent writers contend on different files
  and a purge or compaction never rewrites more than one shard at a time.
* **Atomic write-then-rename** — a shard is always rewritten to a
  ``*.tmp-*`` sibling and moved into place with :func:`os.replace`; readers
  never observe a half-written shard file.
* **Corruption-tolerant reads** — a torn line (crash mid-write, truncated
  copy) is skipped and counted, never fatal; the surviving entries remain
  usable.  Leftover temporary files from a crashed writer are ignored and
  cleaned up on the next flush.
* **Merge-on-flush** — flushing re-reads the shard file and overlays this
  store's writes (and tombstones) on top, so concurrent *processes*
  sharing a directory are additive: each flush preserves entries the other
  process landed since this store loaded the shard.  Races on the *same*
  key remain last-writer-wins, which is harmless for a content-addressed
  cache (both writers computed the same parse).

Entries are kept as their serialised JSONL lines (bytes), so each entry is
encoded exactly once per put and a flush is a plain join; reads parse on
demand and the parsed objects are promoted into the memory tier above.

Writes are buffered per shard and flushed either explicitly (the pipeline
flushes once per run) or automatically every ``flush_every`` puts.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Callable, Iterator

_SHARD_PREFIX = "shard-"
_SHARD_SUFFIX = ".jsonl"


class ShardedDiskStore:
    """Durable key → JSON-payload map sharded over JSONL files."""

    def __init__(
        self, directory: str | Path, n_shards: int = 16, flush_every: int = 256
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be positive")
        if flush_every < 1:
            raise ValueError("flush_every must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.n_shards = n_shards
        self.flush_every = flush_every
        self.corrupt_lines_skipped = 0
        self._locks = [threading.Lock() for _ in range(n_shards)]
        # Per shard: loaded serialised lines by key (None until first touch),
        # keys deleted since load (tombstones for merge-on-flush), dirty flag.
        self._entries: list[dict[str, bytes] | None] = [None] * n_shards
        self._deleted: list[set[str]] = [set() for _ in range(n_shards)]
        self._dirty = [False] * n_shards
        self._pending_puts = 0

    # ------------------------------------------------------------------ #
    # Shard files
    # ------------------------------------------------------------------ #
    def shard_path(self, index: int) -> Path:
        return self.directory / f"{_SHARD_PREFIX}{index:03d}{_SHARD_SUFFIX}"

    def shard_paths(self) -> list[Path]:
        """Existing shard files (sorted; temporary files excluded)."""
        return sorted(
            p
            for p in self.directory.glob(f"{_SHARD_PREFIX}*{_SHARD_SUFFIX}")
            if p.is_file()
        )

    def _parse_shard_file(self, index: int, count_corrupt: bool) -> dict[str, bytes]:
        """Read one shard file, skipping torn or malformed lines."""
        entries: dict[str, bytes] = {}
        path = self.shard_path(index)
        if not path.exists():
            return entries
        for line in path.read_bytes().split(b"\n"):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                key = payload["key"]
            except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError):
                if count_corrupt:
                    self.corrupt_lines_skipped += 1
                continue
            if not isinstance(payload, dict) or not isinstance(key, str):
                if count_corrupt:
                    self.corrupt_lines_skipped += 1
                continue
            # Later lines win: an append-style writer may have superseded
            # an entry.
            entries[key] = line
        return entries

    def _load_shard(self, index: int) -> dict[str, bytes]:
        loaded = self._entries[index]
        if loaded is None:
            loaded = self._parse_shard_file(index, count_corrupt=True)
            self._entries[index] = loaded
        return loaded

    def _write_shard(self, index: int) -> int:
        """Atomically rewrite one shard (merge-on-flush); returns bytes written."""
        entries = self._entries[index]
        assert entries is not None
        # Overlay our writes and tombstones on the *current* file contents,
        # so entries another process flushed since our load survive.
        merged = {
            key: line
            for key, line in self._parse_shard_file(index, count_corrupt=False).items()
            if key not in self._deleted[index]
        }
        merged.update(entries)
        self._entries[index] = merged
        self._deleted[index].clear()
        self._dirty[index] = False
        path = self.shard_path(index)
        if not merged:
            path.unlink(missing_ok=True)
            return 0
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}-{threading.get_ident()}")
        data = b"\n".join(merged.values()) + b"\n"
        with tmp.open("wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return len(data)

    def _sweep_temporaries(self) -> None:
        # Only this process's own temporaries: another live process sharing
        # the directory may be between fsync and rename on its tmp file.
        # (A crashed process's stragglers are harmless — never read as
        # shards — and reclaimed when a store with the same pid reuses the
        # name or the operator purges.)
        marker = f".tmp-{os.getpid()}-"
        for stray in self.directory.glob(f"{_SHARD_PREFIX}*{_SHARD_SUFFIX}.tmp-*"):
            if marker in stray.name:
                stray.unlink(missing_ok=True)

    # ------------------------------------------------------------------ #
    # Key-value interface
    # ------------------------------------------------------------------ #
    def shard_index_for(self, key: str) -> int:
        """Shard of a key string (first 8 hex chars of its content hash)."""
        prefix = key[:8]
        try:
            value = int(prefix, 16)
        except ValueError:
            value = sum(ord(c) for c in prefix)
        return value % self.n_shards

    def get(self, key: str) -> dict[str, Any] | None:
        found = self.get_with_size(key)
        return None if found is None else found[0]

    def get_with_size(self, key: str) -> tuple[dict[str, Any], int] | None:
        """The payload for ``key`` plus its serialised size in bytes."""
        index = self.shard_index_for(key)
        with self._locks[index]:
            line = self._load_shard(index).get(key)
        if line is None:
            return None
        return json.loads(line), len(line)

    def put(self, key: str, payload: dict[str, Any]) -> int:
        """Stage an entry; durable after the next :meth:`flush` (or auto-flush).

        Returns the entry's serialised size in bytes (the line is encoded
        exactly once, here).
        """
        line = json.dumps(payload, ensure_ascii=False, separators=(",", ":")).encode(
            "utf-8"
        )
        index = self.shard_index_for(key)
        with self._locks[index]:
            self._load_shard(index)[key] = line
            self._deleted[index].discard(key)
            self._dirty[index] = True
            self._pending_puts += 1
        if self._pending_puts >= self.flush_every:
            self.flush()
        return len(line)

    def delete(self, key: str) -> bool:
        index = self.shard_index_for(key)
        with self._locks[index]:
            removed = self._load_shard(index).pop(key, None) is not None
            if removed:
                self._deleted[index].add(key)
                self._dirty[index] = True
        return removed

    def flush(self) -> int:
        """Persist every dirty shard (write-then-rename); returns bytes written."""
        written = 0
        for index in range(self.n_shards):
            with self._locks[index]:
                if self._dirty[index]:
                    written += self._write_shard(index)
        self._pending_puts = 0
        self._sweep_temporaries()
        return written

    def purge(self, predicate: Callable[[dict[str, Any]], bool] | None = None) -> int:
        """Drop entries matching ``predicate`` (all when ``None``); returns count.

        Only shards that actually change are rewritten; a full purge removes
        the shard files outright.
        """
        removed = 0
        for index in range(self.n_shards):
            with self._locks[index]:
                entries = self._load_shard(index)
                if predicate is None:
                    removed += len(entries)
                    entries.clear()
                    self._deleted[index].clear()
                    self._dirty[index] = False
                    self.shard_path(index).unlink(missing_ok=True)
                    continue
                doomed = [
                    key for key, line in entries.items() if predicate(json.loads(line))
                ]
                for key in doomed:
                    del entries[key]
                    self._deleted[index].add(key)
                removed += len(doomed)
                if doomed or self._dirty[index]:
                    self._dirty[index] = True
                    self._write_shard(index)
        self._sweep_temporaries()
        return removed

    def iter_entries(self) -> Iterator[dict[str, Any]]:
        """Every persisted (and staged) entry across all shards."""
        for index in range(self.n_shards):
            with self._locks[index]:
                lines = list(self._load_shard(index).values())
            for line in lines:
                yield json.loads(line)

    def __len__(self) -> int:
        total = 0
        for index in range(self.n_shards):
            with self._locks[index]:
                total += len(self._load_shard(index))
        return total

    def bytes_on_disk(self) -> int:
        return sum(p.stat().st_size for p in self.shard_paths())
