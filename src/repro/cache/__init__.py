"""Content-addressed parse-result caching.

At production scale the same documents (and near-identical revisions) recur
constantly; the cheapest parse is the one you never repeat.  This subpackage
provides the cache the :class:`repro.pipeline.ParsePipeline` consults when a
:class:`~repro.pipeline.ParseRequest` carries a cache policy:

* :mod:`repro.cache.keys` — content hashing (built on the dataset-dedup
  hashing scheme) and the ``(content hash, config fingerprint)`` cache key.
* :mod:`repro.cache.memory` — the bounded in-memory LRU tier.
* :mod:`repro.cache.disk` — the sharded JSONL disk backend: hash-prefix
  shards, atomic write-then-rename, corruption-tolerant reads.
* :mod:`repro.cache.singleflight` — the guard that collapses concurrent
  parses of one key into a single computation.
* :mod:`repro.cache.stats` — the ``CacheStats`` telemetry block carried by
  ``ParseReport``.
* :mod:`repro.cache.cache` — :class:`ParseCache` itself, the
  :class:`CachePolicy` (off/read/write/readwrite), and the batch adapter
  the pipeline wraps its workers with.

Quick tour::

    from repro.cache import ParseCache
    from repro.pipeline import ParsePipeline, ParseRequest

    pipeline = ParsePipeline(cache=ParseCache("/tmp/parse-cache"))
    cold = pipeline.run(ParseRequest(parser="pymupdf", source="synthetic:50", cache="readwrite"))
    warm = pipeline.run(ParseRequest(parser="pymupdf", source="synthetic:50", cache="readwrite"))
    assert warm.cache.hits == 50
"""

from repro.cache.cache import (
    CacheEntry,
    CachePolicy,
    ParseCache,
    cached_batch_worker,
)
from repro.cache.disk import ShardedDiskStore
from repro.cache.keys import CacheKey, document_content_hash, parse_cache_key
from repro.cache.memory import LruTier
from repro.cache.singleflight import Flight, SingleFlight
from repro.cache.stats import CacheStats, CacheStatsRecorder

__all__ = [
    "CacheEntry",
    "CacheKey",
    "CachePolicy",
    "CacheStats",
    "CacheStatsRecorder",
    "Flight",
    "LruTier",
    "ParseCache",
    "ShardedDiskStore",
    "SingleFlight",
    "cached_batch_worker",
    "document_content_hash",
    "parse_cache_key",
]
