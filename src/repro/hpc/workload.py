"""Workload models: parse tasks and aggregated archives.

A :class:`ParseTask` is the unit of work the executor schedules: the CPU and
GPU seconds one document costs under one parser (or under the AdaParse mix),
plus the bytes it contributes to input archives and output files.  Tasks can
be synthesised from the parsers' cost models (fast, used for the large
scalability sweeps) or derived from real :class:`repro.parsers.base.ParseResult`
usage (used when a campaign replays an actual corpus).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.config import AdaParseConfig
from repro.parsers.base import Parser, ParseResult
from repro.utils.rng import rng_from

#: Load time of the SciBERT-sized selector LLM (seconds).  Small compared to a
#: ViT parser checkpoint, but non-zero: warm starting must amortise it too.
SELECTOR_MODEL_LOAD_SECONDS = 2.0


@dataclass(frozen=True)
class ParseTask:
    """One document's worth of parsing work."""

    doc_id: str
    parser_name: str
    cpu_seconds: float
    gpu_seconds: float
    model_load_seconds: float = 0.0
    coordination_seconds: float = 0.0
    input_mb: float = 1.2
    output_mb: float = 0.05
    #: Identity of the ML model the GPU phase needs resident.  Meta-parsers
    #: (AdaParse) submit tasks under one engine name but may need different
    #: models on the GPU (the selector LLM vs. the ViT parser); warm starting
    #: must be keyed on the model, not the submitting engine.  ``None`` means
    #: "the model is the parser itself".
    gpu_model: str | None = None

    @property
    def needs_gpu(self) -> bool:
        return self.gpu_seconds > 0.0


@dataclass
class WorkArchive:
    """A compressed bundle of documents staged to a node in one read."""

    archive_id: str
    tasks: list[ParseTask] = field(default_factory=list)

    @property
    def size_mb(self) -> float:
        """Archive size (sum of member document sizes)."""
        return sum(t.input_mb for t in self.tasks)

    @property
    def n_documents(self) -> int:
        return len(self.tasks)


@dataclass(frozen=True)
class WorkloadModel:
    """Synthesises parse tasks from parser cost models.

    Attributes
    ----------
    mean_pages, std_pages:
        Page-count distribution of the document population.
    pdf_mb_per_page:
        Input size per page (compressed, as staged in archives).
    output_mb_per_page:
        Parsed-text output size per page.
    seed:
        Seed of the per-task sampling.
    """

    mean_pages: float = 10.0
    std_pages: float = 4.0
    pdf_mb_per_page: float = 0.12
    output_mb_per_page: float = 0.004
    seed: int = 51

    def _sample_pages(self, rng: np.random.Generator) -> int:
        pages = int(round(rng.normal(self.mean_pages, self.std_pages)))
        return max(1, pages)

    def tasks_for_parser(
        self,
        parser: Parser,
        n_documents: int,
        coordination_seconds: float = 0.0,
    ) -> list[ParseTask]:
        """Synthesise tasks for running ``parser`` over ``n_documents`` documents."""
        rng = rng_from(self.seed, "workload", parser.name, n_documents)
        tasks: list[ParseTask] = []
        for i in range(n_documents):
            pages = self._sample_pages(rng)
            usage = parser.cost.sample_document_usage(pages, rng)
            tasks.append(
                ParseTask(
                    doc_id=f"{parser.name}-doc-{i:06d}",
                    parser_name=parser.name,
                    cpu_seconds=usage.cpu_seconds,
                    gpu_seconds=usage.gpu_seconds,
                    model_load_seconds=parser.cost.model_load_seconds,
                    coordination_seconds=coordination_seconds,
                    input_mb=pages * self.pdf_mb_per_page,
                    output_mb=pages * self.output_mb_per_page,
                )
            )
        return tasks

    def tasks_for_adaparse(
        self,
        default_parser: Parser,
        high_quality_parser: Parser,
        config: AdaParseConfig,
        n_documents: int,
        engine_name: str = "adaparse",
    ) -> list[ParseTask]:
        """Synthesise the AdaParse mix: default parse + selection everywhere,
        high-quality parse on an α fraction of documents."""
        rng = rng_from(self.seed, "workload", engine_name, n_documents, config.alpha)
        tasks: list[ParseTask] = []
        n_routed = int(np.floor(config.alpha * n_documents))
        routed = set(rng.choice(n_documents, size=n_routed, replace=False).tolist()) if n_routed else set()
        for i in range(n_documents):
            pages = self._sample_pages(rng)
            usage = default_parser.cost.sample_document_usage(pages, rng)
            cpu = usage.cpu_seconds + config.selection_cpu_seconds
            gpu = usage.gpu_seconds + config.selection_gpu_seconds
            model_load = 0.0
            gpu_model: str | None = None
            if i in routed:
                hq_usage = high_quality_parser.cost.sample_document_usage(pages, rng)
                cpu += hq_usage.cpu_seconds
                gpu += hq_usage.gpu_seconds
                model_load = high_quality_parser.cost.model_load_seconds
                gpu_model = high_quality_parser.name
            elif config.selection_gpu_seconds > 0:
                # The selector LLM itself must be resident on the GPU.
                model_load = SELECTOR_MODEL_LOAD_SECONDS
                gpu_model = f"{engine_name}-selector"
            tasks.append(
                ParseTask(
                    doc_id=f"{engine_name}-doc-{i:06d}",
                    parser_name=engine_name,
                    cpu_seconds=cpu,
                    gpu_seconds=gpu,
                    model_load_seconds=model_load,
                    input_mb=pages * self.pdf_mb_per_page,
                    output_mb=pages * self.output_mb_per_page,
                    gpu_model=gpu_model,
                )
            )
        return tasks

    def tasks_from_results(
        self, results: Sequence[ParseResult], pages_per_document: Sequence[int] | None = None
    ) -> list[ParseTask]:
        """Build tasks from measured parse results (usage-accurate replay)."""
        tasks: list[ParseTask] = []
        for i, result in enumerate(results):
            pages = pages_per_document[i] if pages_per_document is not None else max(1, result.n_pages)
            tasks.append(
                ParseTask(
                    doc_id=result.doc_id,
                    parser_name=result.parser_name,
                    cpu_seconds=result.usage.cpu_seconds,
                    gpu_seconds=result.usage.gpu_seconds,
                    input_mb=pages * self.pdf_mb_per_page,
                    output_mb=pages * self.output_mb_per_page,
                )
            )
        return tasks


def make_archives(tasks: Sequence[ParseTask], docs_per_archive: int, prefix: str = "archive") -> list[WorkArchive]:
    """Bundle tasks into fixed-size archives (the paper's ZIP aggregation)."""
    if docs_per_archive < 1:
        raise ValueError("docs_per_archive must be positive")
    archives: list[WorkArchive] = []
    for start in range(0, len(tasks), docs_per_archive):
        chunk = list(tasks[start : start + docs_per_archive])
        archives.append(WorkArchive(archive_id=f"{prefix}-{len(archives):05d}", tasks=chunk))
    return archives
