"""Discrete-event simulation of a Polaris-like HPC system.

The paper's throughput results (Figures 3–5) come from running parsers with a
Parsl-based executor on up to 128 nodes of the Polaris supercomputer (32 CPU
cores + 4 A100 GPUs per node, a Lustre shared filesystem, node-local RAM
staging).  That hardware is simulated here:

* :mod:`repro.hpc.events` — a minimal discrete-event engine.
* :mod:`repro.hpc.resources` — capacity-limited resources (CPU pools, GPUs)
  with utilisation accounting.
* :mod:`repro.hpc.storage` — the shared parallel filesystem with bandwidth
  contention, and node-local staging.
* :mod:`repro.hpc.workload` — parse-task and archive models derived from the
  parsers' cost profiles (or from real parse results).
* :mod:`repro.hpc.executor` — the Parsl-like per-node executor: archive
  prefetching, CPU/GPU worker pools, warm-started model workers.
* :mod:`repro.hpc.campaign` — end-to-end parsing campaigns across many nodes,
  producing the throughput and utilisation numbers of the figures.
* :mod:`repro.hpc.profiler` — Nsight-style GPU utilisation traces (Figure 4).
"""

from __future__ import annotations

from repro.hpc.campaign import CampaignConfig, CampaignResult, ParsingCampaign
from repro.hpc.events import DiscreteEventSimulator
from repro.hpc.resources import CapacityResource, GpuDevice, NodeResources
from repro.hpc.storage import NodeLocalStore, SharedFilesystem, SharedFilesystemConfig
from repro.hpc.workload import ParseTask, WorkArchive, WorkloadModel

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "ParsingCampaign",
    "DiscreteEventSimulator",
    "CapacityResource",
    "GpuDevice",
    "NodeResources",
    "NodeLocalStore",
    "SharedFilesystem",
    "SharedFilesystemConfig",
    "ParseTask",
    "WorkArchive",
    "WorkloadModel",
]
