"""Fault injection for parsing campaigns.

Section 2.4 of the paper calls for a *resilient* infrastructure: corpora at
the 100-million-PDF scale contain corrupted files, parsers crash or hang on
pathological inputs, and stragglers dominate tail latency.  This module models
those failure modes so that the executor's retry/quarantine behaviour can be
exercised and measured:

* **corrupted documents** fail deterministically on every attempt (the PDF is
  broken; retrying cannot help) and end up quarantined;
* **transient failures** (OOM, flaky I/O, worker restarts) fail an attempt but
  succeed when retried;
* **stragglers** run but take a multiple of their nominal time.

All decisions are pure functions of ``(seed, doc_id, attempt)`` so campaigns
remain reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.utils.rng import rng_from

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hpc.workload import ParseTask

#: Possible outcomes of one task attempt.
ATTEMPT_OUTCOMES = ("success", "transient_failure", "permanent_failure")


@dataclass(frozen=True)
class FaultModel:
    """Rates and magnitudes of the injected faults.

    Attributes
    ----------
    corrupted_document_rate:
        Fraction of documents that can never be parsed (permanent failures).
    transient_failure_rate:
        Per-attempt probability that a healthy document's attempt fails for a
        transient reason.
    straggler_rate:
        Fraction of attempts that run as stragglers.
    straggler_multiplier:
        Runtime multiplier applied to straggler attempts.
    seed:
        Root seed of all fault decisions.
    """

    corrupted_document_rate: float = 0.0
    transient_failure_rate: float = 0.0
    straggler_rate: float = 0.0
    straggler_multiplier: float = 4.0
    seed: int = 911

    def __post_init__(self) -> None:
        for name in ("corrupted_document_rate", "transient_failure_rate", "straggler_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {value}")
        if self.straggler_multiplier < 1.0:
            raise ValueError("straggler_multiplier must be at least 1")

    @property
    def injects_anything(self) -> bool:
        """Whether any fault can actually occur under this model."""
        return (
            self.corrupted_document_rate > 0
            or self.transient_failure_rate > 0
            or self.straggler_rate > 0
        )


@dataclass(frozen=True)
class RetryPolicy:
    """How the executor responds to failed attempts.

    Attributes
    ----------
    max_attempts:
        Total attempts per document (1 = no retries).
    quarantine_permanent_failures:
        Whether permanently failing documents are recorded as quarantined
        (they always stop consuming attempts once identified).
    """

    max_attempts: int = 3
    quarantine_permanent_failures: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")


@dataclass(frozen=True)
class AttemptOutcome:
    """Fault decision for one attempt of one task."""

    outcome: str
    runtime_multiplier: float = 1.0

    @property
    def succeeded(self) -> bool:
        return self.outcome == "success"

    @property
    def is_permanent(self) -> bool:
        return self.outcome == "permanent_failure"


class FaultInjector:
    """Draws per-attempt fault decisions from a :class:`FaultModel`."""

    def __init__(self, model: FaultModel) -> None:
        self.model = model

    # ------------------------------------------------------------------ #
    def document_is_corrupted(self, task: "ParseTask") -> bool:
        """Whether the document behind ``task`` is permanently unparseable."""
        if self.model.corrupted_document_rate <= 0:
            return False
        rng = rng_from(self.model.seed, "corrupted", task.doc_id)
        return bool(rng.random() < self.model.corrupted_document_rate)

    def attempt_outcome(self, task: "ParseTask", attempt: int) -> AttemptOutcome:
        """Fault decision of attempt number ``attempt`` (1-based) of ``task``."""
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        if self.document_is_corrupted(task):
            return AttemptOutcome(outcome="permanent_failure")
        rng = rng_from(self.model.seed, "attempt", task.doc_id, attempt)
        multiplier = 1.0
        if self.model.straggler_rate > 0 and rng.random() < self.model.straggler_rate:
            multiplier = self.model.straggler_multiplier
        if self.model.transient_failure_rate > 0 and rng.random() < self.model.transient_failure_rate:
            return AttemptOutcome(outcome="transient_failure", runtime_multiplier=multiplier)
        return AttemptOutcome(outcome="success", runtime_multiplier=multiplier)

    def expected_attempts(self) -> float:
        """Expected attempts per healthy document under unlimited retries."""
        p = self.model.transient_failure_rate
        if p >= 1.0:
            return float("inf")
        return 1.0 / (1.0 - p)
