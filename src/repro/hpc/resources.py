"""Capacity-limited resources with FIFO queueing and utilisation accounting."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.hpc.events import DiscreteEventSimulator


class CapacityResource:
    """A resource with ``capacity`` identical slots and a FIFO wait queue.

    Callers request a slot with :meth:`acquire`, passing a callback invoked
    (via the simulator, at the current time) once a slot is granted, and must
    call :meth:`release` when done.  Busy-slot time is integrated so that
    utilisation can be reported at the end of a simulation.
    """

    def __init__(self, sim: DiscreteEventSimulator, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiting: deque[Callable[[], None]] = deque()
        self._busy_time = 0.0
        self._last_change = 0.0
        self._waited_total = 0.0
        self._grants = 0

    # ------------------------------------------------------------------ #
    def _account(self) -> None:
        now = self.sim.now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    def acquire(self, callback: Callable[[], None]) -> None:
        """Request a slot; ``callback`` runs when one is granted."""
        if self._in_use < self.capacity:
            self._account()
            self._in_use += 1
            self._grants += 1
            self.sim.schedule(0.0, callback)
        else:
            request_time = self.sim.now

            def granted() -> None:
                self._waited_total += self.sim.now - request_time
                callback()

            self._waiting.append(granted)

    def release(self) -> None:
        """Return a slot; the next waiter (if any) is granted immediately."""
        if self._in_use <= 0:
            raise RuntimeError(f"release() on idle resource {self.name!r}")
        self._account()
        self._in_use -= 1
        if self._waiting:
            self._account()
            self._in_use += 1
            self._grants += 1
            waiter = self._waiting.popleft()
            self.sim.schedule(0.0, waiter)

    # ------------------------------------------------------------------ #
    @property
    def in_use(self) -> int:
        """Currently occupied slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of waiting requests."""
        return len(self._waiting)

    def utilization(self, over_time: float | None = None) -> float:
        """Mean busy fraction of the resource over the simulation so far."""
        self._account()
        horizon = over_time if over_time is not None else self.sim.now
        if horizon <= 0:
            return 0.0
        return min(1.0, self._busy_time / (horizon * self.capacity))

    def mean_wait(self) -> float:
        """Mean queueing delay over all grants."""
        if self._grants == 0:
            return 0.0
        return self._waited_total / self._grants


@dataclass
class BusyInterval:
    """One busy interval of a device (used by the GPU profiler)."""

    start: float
    end: float
    label: str = ""


class GpuDevice:
    """A single GPU: an exclusive resource that records its busy intervals."""

    def __init__(self, sim: DiscreteEventSimulator, gpu_id: str) -> None:
        self.sim = sim
        self.gpu_id = gpu_id
        self.resource = CapacityResource(sim, capacity=1, name=f"gpu:{gpu_id}")
        self.intervals: list[BusyInterval] = []
        #: Models currently resident in this GPU's memory.  Warm starting keeps
        #: every model loaded so far resident (a selector LLM and a ViT parser
        #: comfortably coexist within 40 GB), so each distinct model pays its
        #: load time at most once per device.
        self.loaded_models: set[str] = set()

    @property
    def loaded_model(self) -> str | None:
        """Most convenient single-model view (any resident model, or ``None``)."""
        return next(iter(self.loaded_models)) if self.loaded_models else None

    def acquire(self, callback: Callable[[], None]) -> None:
        self.resource.acquire(callback)

    def release(self) -> None:
        self.resource.release()

    def record_busy(self, start: float, end: float, label: str = "") -> None:
        """Record a busy interval (compute or model load) for profiling."""
        if end > start:
            self.intervals.append(BusyInterval(start=start, end=end, label=label))

    def utilization(self, over_time: float | None = None) -> float:
        """Busy fraction from the recorded intervals."""
        horizon = over_time if over_time is not None else self.sim.now
        if horizon <= 0:
            return 0.0
        busy = sum(iv.end - iv.start for iv in self.intervals)
        return min(1.0, busy / horizon)


class NodeResources:
    """Compute resources of one node: a CPU-core pool and per-GPU devices."""

    def __init__(
        self,
        sim: DiscreteEventSimulator,
        node_id: str,
        cpu_cores: int = 32,
        n_gpus: int = 4,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.cpu = CapacityResource(sim, capacity=cpu_cores, name=f"cpu:{node_id}")
        self.gpus = [GpuDevice(sim, gpu_id=f"{node_id}/gpu{i}") for i in range(n_gpus)]
        self._next_gpu = 0

    def any_gpu(self) -> GpuDevice:
        """Round-robin GPU pick (tasks queue on the chosen device)."""
        if not self.gpus:
            raise RuntimeError(f"node {self.node_id} has no GPUs")
        gpu = self.gpus[self._next_gpu % len(self.gpus)]
        self._next_gpu += 1
        return gpu

    def gpu_utilizations(self, over_time: float | None = None) -> list[float]:
        """Per-GPU busy fractions."""
        return [gpu.utilization(over_time) for gpu in self.gpus]
