"""End-to-end parsing campaigns across many simulated nodes.

A :class:`ParsingCampaign` assigns archives of documents round-robin to a set
of simulated nodes, runs every node's executor to completion, and reports
aggregate throughput, per-resource utilisation, and GPU profiles.  The
node-count sweeps of Figure 5 and the single-node throughput legend of
Figure 3 are thin wrappers around this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.config import AdaParseConfig
from repro.hpc.events import DiscreteEventSimulator
from repro.hpc.executor import ExecutorConfig, ExecutorStats, NodeExecutor
from repro.hpc.faults import FaultInjector, FaultModel, RetryPolicy
from repro.hpc.profiler import UtilizationProfile, profile_gpus
from repro.hpc.resources import CapacityResource, NodeResources
from repro.hpc.storage import SharedFilesystem, SharedFilesystemConfig
from repro.hpc.workload import ParseTask, WorkArchive, WorkloadModel, make_archives
from repro.parsers.base import Parser
from repro.parsers.registry import ParserRegistry

#: Parsers whose per-document pipeline requires a globally coordinated stage
#: (layout detection service); the value is the serialized seconds per
#: document.  This is what prevents Marker from scaling past a handful of
#: nodes in the paper's Figure 5.
COORDINATED_PARSERS: dict[str, float] = {"marker": 1.6}


@dataclass(frozen=True)
class CampaignConfig:
    """Cluster and policy configuration of a campaign."""

    n_nodes: int = 4
    cpu_cores_per_node: int = 32
    gpus_per_node: int = 4
    docs_per_archive: int = 64
    prefetch_depth: int = 2
    warm_start: bool = True
    write_outputs: bool = True
    coordination_capacity: int = 4
    fs_config: SharedFilesystemConfig = field(default_factory=SharedFilesystemConfig)
    #: Fault injection model (``None`` runs a fault-free campaign).
    fault_model: FaultModel | None = None
    #: Retry policy applied when faults are injected.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    seed: int = 73

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be positive")
        if self.docs_per_archive < 1:
            raise ValueError("docs_per_archive must be positive")


@dataclass
class CampaignResult:
    """Outcome of one campaign run."""

    parser_name: str
    n_documents: int
    n_nodes: int
    total_time_s: float
    throughput_docs_per_s: float
    cpu_utilization: float
    gpu_utilization: float
    fs_read_mb: float
    fs_write_mb: float
    model_loads: int
    documents_completed: int = 0
    documents_failed: int = 0
    attempts_retried: int = 0
    wasted_compute_seconds: float = 0.0
    node_stats: list[ExecutorStats] = field(default_factory=list)
    gpu_profile: UtilizationProfile | None = None

    @property
    def completion_rate(self) -> float:
        """Fraction of submitted documents parsed successfully."""
        if self.n_documents == 0:
            return 0.0
        return self.documents_completed / self.n_documents

    def as_row(self) -> dict[str, object]:
        """Row form for tables/figures."""
        return {
            "parser": self.parser_name,
            "nodes": self.n_nodes,
            "documents": self.n_documents,
            "time_s": round(self.total_time_s, 2),
            "docs_per_s": round(self.throughput_docs_per_s, 3),
            "cpu_util": round(self.cpu_utilization, 3),
            "gpu_util": round(self.gpu_utilization, 3),
            "completed": self.documents_completed,
            "failed": self.documents_failed,
        }


class ParsingCampaign:
    """Runs a document-parsing campaign on the simulated cluster."""

    def __init__(self, config: CampaignConfig | None = None) -> None:
        self.config = config or CampaignConfig()

    # ------------------------------------------------------------------ #
    # Core run
    # ------------------------------------------------------------------ #
    def run_tasks(self, parser_name: str, tasks: Sequence[ParseTask]) -> CampaignResult:
        """Execute a list of tasks on the configured cluster."""
        cfg = self.config
        sim = DiscreteEventSimulator()
        shared_fs = SharedFilesystem(sim, cfg.fs_config)
        coordination = CapacityResource(sim, capacity=cfg.coordination_capacity, name="layout-coordination")
        nodes = [
            NodeResources(
                sim, node_id=f"node{idx:03d}", cpu_cores=cfg.cpu_cores_per_node, n_gpus=cfg.gpus_per_node
            )
            for idx in range(cfg.n_nodes)
        ]
        injector = FaultInjector(cfg.fault_model) if cfg.fault_model is not None else None
        executors = [
            NodeExecutor(
                sim,
                node,
                shared_fs,
                ExecutorConfig(
                    prefetch_depth=cfg.prefetch_depth,
                    warm_start=cfg.warm_start,
                    write_outputs=cfg.write_outputs,
                    fault_injector=injector,
                    retry=cfg.retry,
                ),
                coordination=coordination,
            )
            for node in nodes
        ]
        archives = make_archives(tasks, cfg.docs_per_archive, prefix=parser_name)
        per_node_archives: list[list[WorkArchive]] = [[] for _ in range(cfg.n_nodes)]
        for i, archive in enumerate(archives):
            per_node_archives[i % cfg.n_nodes].append(archive)
        remaining = {"count": len(executors)}
        for executor, node_archives in zip(executors, per_node_archives):
            executor.process_archives(node_archives, lambda: remaining.__setitem__("count", remaining["count"] - 1))
        sim.run()
        if remaining["count"] != 0:
            raise RuntimeError("campaign finished with unprocessed work (simulation deadlock)")
        total_time = max((e.stats.finish_time for e in executors), default=sim.now)
        total_time = max(total_time, 1e-9)
        n_documents = len(tasks)
        all_gpus = [gpu for node in nodes for gpu in node.gpus]
        gpu_util = float(np.mean([gpu.utilization(total_time) for gpu in all_gpus])) if all_gpus else 0.0
        cpu_util = float(np.mean([node.cpu.utilization(total_time) for node in nodes]))
        profile = profile_gpus(all_gpus, horizon=total_time) if all_gpus else None
        documents_completed = sum(e.stats.documents_completed for e in executors)
        documents_failed = sum(e.stats.documents_failed for e in executors)
        return CampaignResult(
            parser_name=parser_name,
            n_documents=n_documents,
            n_nodes=cfg.n_nodes,
            total_time_s=total_time,
            throughput_docs_per_s=documents_completed / total_time,
            cpu_utilization=cpu_util,
            gpu_utilization=gpu_util,
            fs_read_mb=shared_fs.bytes_read,
            fs_write_mb=shared_fs.bytes_written,
            model_loads=sum(e.stats.model_loads for e in executors),
            documents_completed=documents_completed,
            documents_failed=documents_failed,
            attempts_retried=sum(e.stats.attempts_retried for e in executors),
            wasted_compute_seconds=sum(e.stats.wasted_compute_seconds for e in executors),
            node_stats=[e.stats for e in executors],
            gpu_profile=profile,
        )

    # ------------------------------------------------------------------ #
    # Convenience entry points
    # ------------------------------------------------------------------ #
    def run_parser(
        self,
        parser: Parser,
        n_documents: int,
        workload: WorkloadModel | None = None,
    ) -> CampaignResult:
        """Run a synthetic campaign for one parser."""
        workload = workload or WorkloadModel()
        coordination_seconds = COORDINATED_PARSERS.get(parser.name, 0.0)
        tasks = workload.tasks_for_parser(parser, n_documents, coordination_seconds=coordination_seconds)
        return self.run_tasks(parser.name, tasks)

    def run_adaparse(
        self,
        registry: ParserRegistry,
        config: AdaParseConfig,
        n_documents: int,
        engine_name: str = "adaparse_ft",
        workload: WorkloadModel | None = None,
    ) -> CampaignResult:
        """Run a synthetic campaign for the AdaParse mix."""
        workload = workload or WorkloadModel()
        tasks = workload.tasks_for_adaparse(
            registry.get(config.default_parser),
            registry.get(config.high_quality_parser),
            config,
            n_documents,
            engine_name=engine_name,
        )
        return self.run_tasks(engine_name, tasks)

    def with_nodes(self, n_nodes: int) -> "ParsingCampaign":
        """A copy of this campaign configured for a different node count."""
        cfg = self.config
        return ParsingCampaign(
            CampaignConfig(
                n_nodes=n_nodes,
                cpu_cores_per_node=cfg.cpu_cores_per_node,
                gpus_per_node=cfg.gpus_per_node,
                docs_per_archive=cfg.docs_per_archive,
                prefetch_depth=cfg.prefetch_depth,
                warm_start=cfg.warm_start,
                write_outputs=cfg.write_outputs,
                coordination_capacity=cfg.coordination_capacity,
                fs_config=cfg.fs_config,
                fault_model=cfg.fault_model,
                retry=cfg.retry,
                seed=cfg.seed,
            )
        )


def node_sweep(
    parser: Parser,
    node_counts: Sequence[int],
    docs_per_node: int = 200,
    base_config: CampaignConfig | None = None,
    workload: WorkloadModel | None = None,
) -> list[CampaignResult]:
    """Throughput of one parser across node counts (one Figure 5 series)."""
    base = ParsingCampaign(base_config or CampaignConfig())
    results: list[CampaignResult] = []
    for n_nodes in node_counts:
        campaign = base.with_nodes(int(n_nodes))
        results.append(campaign.run_parser(parser, n_documents=docs_per_node * int(n_nodes), workload=workload))
    return results


def adaparse_node_sweep(
    registry: ParserRegistry,
    config: AdaParseConfig,
    node_counts: Sequence[int],
    docs_per_node: int = 200,
    engine_name: str = "adaparse_ft",
    base_config: CampaignConfig | None = None,
    workload: WorkloadModel | None = None,
) -> list[CampaignResult]:
    """Throughput of the AdaParse mix across node counts."""
    base = ParsingCampaign(base_config or CampaignConfig())
    results: list[CampaignResult] = []
    for n_nodes in node_counts:
        campaign = base.with_nodes(int(n_nodes))
        results.append(
            campaign.run_adaparse(
                registry, config, n_documents=docs_per_node * int(n_nodes), engine_name=engine_name, workload=workload
            )
        )
    return results
