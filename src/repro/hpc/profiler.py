"""Nsight-style GPU utilisation profiling (Figure 4).

The paper profiles the GPU-accelerated parsers with NVIDIA Nsight Systems and
reports per-GPU utilisation of the workload.  The simulator records every busy
interval of every GPU device; this module turns those interval lists into
utilisation timelines (busy fraction per time bin, per GPU) and summary
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.hpc.resources import BusyInterval, GpuDevice


@dataclass
class GpuTimeline:
    """Utilisation of one GPU over time."""

    gpu_id: str
    bin_edges: np.ndarray
    utilization: np.ndarray

    @property
    def mean_utilization(self) -> float:
        return float(self.utilization.mean()) if self.utilization.size else 0.0


@dataclass
class UtilizationProfile:
    """Per-GPU timelines plus summary statistics."""

    timelines: list[GpuTimeline] = field(default_factory=list)

    def mean_utilization(self) -> float:
        """Mean utilisation across all GPUs and bins."""
        if not self.timelines:
            return 0.0
        return float(np.mean([t.mean_utilization for t in self.timelines]))

    def per_gpu_means(self) -> dict[str, float]:
        """Mean utilisation per GPU id."""
        return {t.gpu_id: t.mean_utilization for t in self.timelines}

    def series(self) -> list[dict[str, object]]:
        """Rows of (gpu, bin start, utilisation) — the Figure 4 series."""
        rows: list[dict[str, object]] = []
        for timeline in self.timelines:
            for i, util in enumerate(timeline.utilization):
                rows.append(
                    {
                        "gpu": timeline.gpu_id,
                        "t_start": float(timeline.bin_edges[i]),
                        "t_end": float(timeline.bin_edges[i + 1]),
                        "utilization": float(util),
                    }
                )
        return rows


def _binned_utilization(
    intervals: Sequence[BusyInterval], horizon: float, n_bins: int
) -> tuple[np.ndarray, np.ndarray]:
    edges = np.linspace(0.0, max(horizon, 1e-9), n_bins + 1)
    busy = np.zeros(n_bins, dtype=np.float64)
    widths = np.diff(edges)
    for interval in intervals:
        lo = np.searchsorted(edges, interval.start, side="right") - 1
        hi = np.searchsorted(edges, interval.end, side="left")
        for b in range(max(0, lo), min(n_bins, hi)):
            overlap = min(interval.end, edges[b + 1]) - max(interval.start, edges[b])
            if overlap > 0:
                busy[b] += overlap
    utilization = np.clip(busy / np.maximum(widths, 1e-12), 0.0, 1.0)
    return edges, utilization


def profile_gpus(
    gpus: Sequence[GpuDevice], horizon: float, n_bins: int = 50
) -> UtilizationProfile:
    """Build a utilisation profile from GPU devices after a simulation run."""
    profile = UtilizationProfile()
    for gpu in gpus:
        edges, utilization = _binned_utilization(gpu.intervals, horizon, n_bins)
        profile.timelines.append(
            GpuTimeline(gpu_id=gpu.gpu_id, bin_edges=edges, utilization=utilization)
        )
    return profile
