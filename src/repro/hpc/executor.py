"""The Parsl-like per-node executor.

Each node runs one :class:`NodeExecutor`.  The executor

* fetches its assigned archives from the shared filesystem, keeping up to
  ``prefetch_depth`` archives in flight ahead of processing (the paper's
  prefetching/staging optimisation),
* stages archive contents in node-local RAM and evicts them when their
  documents finish,
* dispatches each document task to the CPU-core pool and, when the task has a
  GPU phase, to one of the node's GPUs,
* keeps ML models resident on their GPU across tasks when warm starting is
  enabled (the paper's modification of Parsl), otherwise pays the model-load
  time for every task,
* retries transiently failed tasks and quarantines permanently corrupted
  documents (resilience, Section 2.4), when a fault injector is configured,
* optionally writes parsed output back to the shared filesystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.hpc.events import DiscreteEventSimulator
from repro.hpc.faults import FaultInjector, RetryPolicy
from repro.hpc.resources import CapacityResource, GpuDevice, NodeResources
from repro.hpc.storage import NodeLocalStore, SharedFilesystem
from repro.hpc.workload import ParseTask, WorkArchive


@dataclass(frozen=True)
class ExecutorConfig:
    """Per-node executor policy."""

    prefetch_depth: int = 2
    warm_start: bool = True
    write_outputs: bool = True
    local_store_capacity_mb: float = 200_000.0
    #: Fault injection (``None`` disables faults entirely).
    fault_injector: FaultInjector | None = None
    #: Retry behaviour for failed attempts.
    retry: RetryPolicy = field(default_factory=RetryPolicy)


@dataclass
class ExecutorStats:
    """Counters reported by a node executor at the end of a campaign."""

    node_id: str = ""
    documents_completed: int = 0
    documents_failed: int = 0
    archives_fetched: int = 0
    model_loads: int = 0
    attempts_retried: int = 0
    cpu_seconds_executed: float = 0.0
    gpu_seconds_executed: float = 0.0
    wasted_compute_seconds: float = 0.0
    finish_time: float = 0.0


class NodeExecutor:
    """Drives one node's workers through its assigned archives."""

    def __init__(
        self,
        sim: DiscreteEventSimulator,
        node: NodeResources,
        shared_fs: SharedFilesystem,
        config: ExecutorConfig | None = None,
        coordination: CapacityResource | None = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.shared_fs = shared_fs
        self.config = config or ExecutorConfig()
        self.coordination = coordination
        self.local_store = NodeLocalStore(self.config.local_store_capacity_mb)
        self.stats = ExecutorStats(node_id=node.node_id)
        self._archives: list[WorkArchive] = []
        self._next_fetch = 0
        self._outstanding_tasks = 0
        self._all_submitted = False
        self._on_done: Callable[[], None] | None = None

    # ------------------------------------------------------------------ #
    # Campaign interface
    # ------------------------------------------------------------------ #
    def process_archives(self, archives: list[WorkArchive], on_done: Callable[[], None]) -> None:
        """Process the node's archive list; ``on_done`` fires when all finish."""
        self._archives = list(archives)
        self._on_done = on_done
        self._all_submitted = False
        if not self._archives:
            self._all_submitted = True
            self.sim.schedule(0.0, self._maybe_finish)
            return
        for _ in range(max(1, self.config.prefetch_depth)):
            self._fetch_next_archive()

    # ------------------------------------------------------------------ #
    # Archive fetching
    # ------------------------------------------------------------------ #
    def _fetch_next_archive(self) -> None:
        if self._next_fetch >= len(self._archives):
            self._all_submitted = True
            return
        archive = self._archives[self._next_fetch]
        self._next_fetch += 1

        def fetched() -> None:
            self.stats.archives_fetched += 1
            # A refused staging (store full) must not be evicted later —
            # that would release another archive's space and corrupt the
            # capacity accounting the evict() over-eviction warning guards.
            staged = self.local_store.stage(archive.size_mb)
            self._dispatch_archive(archive, staged=staged)
            # Keep the prefetch pipeline full.
            self._fetch_next_archive()

        self.shared_fs.read(archive.size_mb, fetched)

    def _dispatch_archive(self, archive: WorkArchive, staged: bool = True) -> None:
        remaining = {"count": len(archive.tasks)}
        if not archive.tasks:
            if staged:
                self.local_store.evict(archive.size_mb)
            return
        for task in archive.tasks:
            self._outstanding_tasks += 1

            def task_done(task: ParseTask = task) -> None:
                self._outstanding_tasks -= 1
                self.stats.finish_time = self.sim.now
                remaining["count"] -= 1
                if remaining["count"] == 0 and staged:
                    self.local_store.evict(archive.size_mb)
                self._maybe_finish()

            self._run_task(task, task_done)

    def _maybe_finish(self) -> None:
        if self._all_submitted and self._outstanding_tasks == 0 and self._next_fetch >= len(self._archives):
            if self._on_done is not None:
                callback, self._on_done = self._on_done, None
                callback()

    # ------------------------------------------------------------------ #
    # Task execution
    # ------------------------------------------------------------------ #
    def _run_task(self, task: ParseTask, on_done: Callable[[], None]) -> None:
        """Run a task through coordination → CPU → GPU → output, with retries.

        Without a fault injector every task succeeds on its first attempt (the
        historical behaviour).  With one, transiently failed attempts are
        retried up to the retry policy's limit and permanently corrupted
        documents are quarantined after a single attempt.
        """
        attempt_counter = {"n": 0}

        def start_attempt() -> None:
            attempt_counter["n"] += 1
            attempt = attempt_counter["n"]
            if self.config.fault_injector is None:
                outcome_succeeded, multiplier, permanent = True, 1.0, False
            else:
                decision = self.config.fault_injector.attempt_outcome(task, attempt)
                outcome_succeeded = decision.succeeded
                multiplier = decision.runtime_multiplier
                permanent = decision.is_permanent

            def after_coordination() -> None:
                self._run_cpu_phase(task, after_cpu, multiplier=multiplier)

            def after_cpu() -> None:
                if task.needs_gpu:
                    self._run_gpu_phase(task, after_gpu, multiplier=multiplier)
                else:
                    after_gpu()

            def after_gpu() -> None:
                if outcome_succeeded:
                    self.stats.documents_completed += 1
                    if self.config.write_outputs and task.output_mb > 0:
                        self.shared_fs.write(task.output_mb, on_done)
                    else:
                        on_done()
                    return
                # The attempt's compute was spent for nothing.
                self.stats.wasted_compute_seconds += multiplier * (
                    task.cpu_seconds + task.gpu_seconds
                )
                can_retry = (
                    not permanent and attempt < self.config.retry.max_attempts
                )
                if can_retry:
                    self.stats.attempts_retried += 1
                    start_attempt()
                else:
                    self.stats.documents_failed += 1
                    on_done()

            if task.coordination_seconds > 0 and self.coordination is not None:
                self._run_coordination_phase(task, after_coordination)
            else:
                after_coordination()

        start_attempt()

    def _run_coordination_phase(self, task: ParseTask, on_done: Callable[[], None]) -> None:
        assert self.coordination is not None

        def granted() -> None:
            def finish() -> None:
                self.coordination.release()
                on_done()

            self.sim.schedule(task.coordination_seconds, finish)

        self.coordination.acquire(granted)

    def _run_cpu_phase(
        self, task: ParseTask, on_done: Callable[[], None], multiplier: float = 1.0
    ) -> None:
        if task.cpu_seconds <= 0:
            on_done()
            return
        duration = task.cpu_seconds * multiplier

        def granted() -> None:
            def finish() -> None:
                self.node.cpu.release()
                self.stats.cpu_seconds_executed += duration
                on_done()

            self.sim.schedule(duration, finish)

        self.node.cpu.acquire(granted)

    def _run_gpu_phase(
        self, task: ParseTask, on_done: Callable[[], None], multiplier: float = 1.0
    ) -> None:
        gpu: GpuDevice = self.node.any_gpu()
        duration = task.gpu_seconds * multiplier

        def granted() -> None:
            start = self.sim.now
            load_time = 0.0
            model_key = task.gpu_model or task.parser_name
            needs_load = model_key not in gpu.loaded_models or not self.config.warm_start
            if needs_load and task.model_load_seconds > 0:
                load_time = task.model_load_seconds
                self.stats.model_loads += 1
                gpu.record_busy(start, start + load_time, label=f"load:{model_key}")
            if self.config.warm_start:
                gpu.loaded_models.add(model_key)
            else:
                gpu.loaded_models.clear()

            def finish() -> None:
                gpu.record_busy(start + load_time, self.sim.now, label=f"compute:{task.parser_name}")
                gpu.release()
                self.stats.gpu_seconds_executed += duration
                on_done()

            self.sim.schedule(load_time + duration, finish)

        gpu.acquire(granted)
