"""Resource-scaling policies for parsing campaigns.

The "Resource Scaling Engine" half of the paper's title is about running
campaigns at the right scale: enough nodes to meet a deadline, not so many
that shared-filesystem contention or serialized stages waste allocations
(Figure 5 shows both failure modes).  This module provides the planning
pieces:

* :func:`estimate_single_node_rate` — documents/second one node sustains for a
  parser (or an AdaParse mix) from the cost models.
* :func:`nodes_for_deadline` — the smallest node count that finishes a
  campaign of ``n`` documents within a wall-clock deadline, under a measured
  or assumed scaling-efficiency curve.
* :func:`scaling_efficiency` / :func:`recommended_nodes` — analyse a measured
  node-count sweep (e.g. the Figure 5 series) and pick the largest node count
  whose marginal efficiency still clears a floor — the "knee" beyond which
  additional nodes are wasted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.config import AdaParseConfig
from repro.parsers.base import Parser, single_node_throughput


@dataclass(frozen=True)
class ScalingEstimate:
    """Result of a deadline-driven scaling decision.

    Attributes
    ----------
    n_nodes:
        Recommended node count.
    expected_hours:
        Expected campaign wall-clock time at that node count.
    expected_node_hours:
        Allocation cost (nodes × hours).
    throughput_docs_per_s:
        Expected aggregate throughput at that node count.
    meets_deadline:
        Whether the deadline can be met at all within ``max_nodes``.
    """

    n_nodes: int
    expected_hours: float
    expected_node_hours: float
    throughput_docs_per_s: float
    meets_deadline: bool

    def as_dict(self) -> dict[str, object]:
        return {
            "n_nodes": self.n_nodes,
            "expected_hours": round(self.expected_hours, 3),
            "expected_node_hours": round(self.expected_node_hours, 3),
            "throughput_docs_per_s": round(self.throughput_docs_per_s, 3),
            "meets_deadline": self.meets_deadline,
        }


def estimate_single_node_rate(
    parser: Parser,
    pages_per_document: float = 10.0,
    cpu_cores: int = 32,
    gpus: int = 4,
) -> float:
    """Ideal single-node throughput (documents/second) of one parser."""
    return single_node_throughput(
        parser.cost, pages_per_document=pages_per_document, cpu_cores=cpu_cores, gpus=gpus
    )


def adaparse_single_node_rate(
    default_parser: Parser,
    high_quality_parser: Parser,
    config: AdaParseConfig,
    pages_per_document: float = 10.0,
    cpu_cores: int = 32,
    gpus: int = 4,
) -> float:
    """Ideal single-node throughput of the AdaParse mix.

    Every document pays the default parse plus selection; an α fraction also
    pays the high-quality parse.  CPU and GPU pools are balanced separately and
    the slower side is the bottleneck (the same reasoning as
    :func:`repro.parsers.base.single_node_throughput`).
    """
    default_cost = default_parser.cost
    expensive_cost = high_quality_parser.cost
    cpu_per_doc = (
        default_cost.per_document_overhead_seconds
        + default_cost.cpu_seconds_per_page * pages_per_document
        + config.selection_cpu_seconds
        + config.alpha
        * (
            expensive_cost.per_document_overhead_seconds
            + expensive_cost.cpu_seconds_per_page * pages_per_document
        )
    )
    gpu_per_doc = (
        config.selection_gpu_seconds
        + config.alpha * expensive_cost.gpu_seconds_per_page * pages_per_document
    )
    rates = []
    if cpu_per_doc > 0:
        rates.append(cpu_cores / cpu_per_doc)
    if gpu_per_doc > 0:
        rates.append(gpus / gpu_per_doc)
    return min(rates) if rates else float("inf")


def _efficiency_at(n_nodes: int, efficiency_curve: Mapping[int, float] | None) -> float:
    """Parallel efficiency (0, 1] at a node count, interpolated from a curve."""
    if not efficiency_curve:
        return 1.0
    points = sorted(efficiency_curve.items())
    nodes = np.asarray([p[0] for p in points], dtype=np.float64)
    values = np.asarray([p[1] for p in points], dtype=np.float64)
    return float(np.clip(np.interp(float(n_nodes), nodes, values), 1e-6, 1.0))


def nodes_for_deadline(
    n_documents: int,
    single_node_rate: float,
    deadline_hours: float,
    max_nodes: int = 512,
    efficiency_curve: Mapping[int, float] | None = None,
) -> ScalingEstimate:
    """Smallest node count that parses ``n_documents`` within the deadline.

    Parameters
    ----------
    n_documents:
        Campaign size.
    single_node_rate:
        Documents/second one node sustains (measured or estimated).
    deadline_hours:
        Wall-clock budget.
    max_nodes:
        Allocation cap; if even this cannot meet the deadline the estimate for
        ``max_nodes`` is returned with ``meets_deadline=False``.
    efficiency_curve:
        Optional mapping node count → parallel efficiency in ``(0, 1]`` (from a
        measured sweep); node counts in between are interpolated.
    """
    if n_documents <= 0:
        raise ValueError("n_documents must be positive")
    if single_node_rate <= 0:
        raise ValueError("single_node_rate must be positive")
    if deadline_hours <= 0:
        raise ValueError("deadline_hours must be positive")
    if max_nodes < 1:
        raise ValueError("max_nodes must be positive")

    def estimate(n_nodes: int) -> ScalingEstimate:
        efficiency = _efficiency_at(n_nodes, efficiency_curve)
        rate = single_node_rate * n_nodes * efficiency
        hours = n_documents / rate / 3600.0
        return ScalingEstimate(
            n_nodes=n_nodes,
            expected_hours=hours,
            expected_node_hours=hours * n_nodes,
            throughput_docs_per_s=rate,
            meets_deadline=hours <= deadline_hours,
        )

    for n_nodes in range(1, max_nodes + 1):
        candidate = estimate(n_nodes)
        if candidate.meets_deadline:
            return candidate
    return estimate(max_nodes)


def scaling_efficiency(
    node_counts: Sequence[int], throughputs: Sequence[float]
) -> dict[int, float]:
    """Parallel efficiency relative to the smallest node count of a sweep.

    ``efficiency(n) = (throughput(n) / n) / (throughput(n0) / n0)``, clipped to
    ``[0, 1]`` — 1 means perfect linear scaling from the first measured point.
    """
    if len(node_counts) != len(throughputs):
        raise ValueError("node_counts and throughputs must have equal length")
    if not node_counts:
        return {}
    pairs = sorted(zip((int(n) for n in node_counts), throughputs))
    base_nodes, base_throughput = pairs[0]
    if base_nodes <= 0 or base_throughput <= 0:
        raise ValueError("the base point must have positive nodes and throughput")
    per_node_base = base_throughput / base_nodes
    return {
        n: float(np.clip((t / n) / per_node_base, 0.0, 1.0)) if n > 0 else 0.0
        for n, t in pairs
    }


def recommended_nodes(
    node_counts: Sequence[int],
    throughputs: Sequence[float],
    efficiency_floor: float = 0.5,
) -> int:
    """Largest measured node count whose parallel efficiency clears the floor.

    This is the "knee" rule used to avoid wasting allocation on the flat part
    of Figure 5: beyond the returned node count, each additional node delivers
    less than ``efficiency_floor`` of its ideal contribution.
    """
    if not 0.0 < efficiency_floor <= 1.0:
        raise ValueError("efficiency_floor must lie in (0, 1]")
    efficiency = scaling_efficiency(node_counts, throughputs)
    eligible = [n for n, e in efficiency.items() if e >= efficiency_floor]
    if not eligible:
        return min(efficiency)
    return max(eligible)
