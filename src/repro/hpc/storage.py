"""Storage models: the shared parallel filesystem and node-local staging.

The paper aggregates PDFs into compressed archives on a Lustre filesystem and
stages them to node-local RAM before parsing, precisely because many small
reads against the shared filesystem do not scale.  The shared filesystem is
modelled as a pool of concurrent full-rate streams: as long as fewer than
``max_concurrent_streams`` reads are in flight each proceeds at
``per_stream_bandwidth``; beyond that, requests queue.  This reproduces the
empirical behaviour in Figure 5 where extraction parsers stop scaling once
filesystem delivery, not compute, is the bottleneck.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable

from repro.hpc.events import DiscreteEventSimulator
from repro.hpc.resources import CapacityResource


@dataclass(frozen=True)
class SharedFilesystemConfig:
    """Parameters of the shared parallel filesystem.

    The defaults approximate the paper's Eagle/ClusterStor numbers scaled to
    the simulation's units: an aggregate delivered bandwidth around
    ``per_stream_bandwidth × max_concurrent_streams`` ≈ 40 GB/s for archive
    reads (well below the theoretical 650 GB/s peak, as observed in practice
    for many-client striped reads), with per-stream rates around 800 MB/s.
    """

    per_stream_bandwidth_mb_s: float = 800.0
    max_concurrent_streams: int = 32
    request_latency_s: float = 0.02
    write_bandwidth_mb_s: float = 600.0


class SharedFilesystem:
    """Contention-aware shared filesystem."""

    def __init__(
        self, sim: DiscreteEventSimulator, config: SharedFilesystemConfig | None = None
    ) -> None:
        self.sim = sim
        self.config = config or SharedFilesystemConfig()
        self.streams = CapacityResource(
            sim, capacity=self.config.max_concurrent_streams, name="shared-fs"
        )
        self.bytes_read = 0.0
        self.bytes_written = 0.0
        self.reads_completed = 0

    def read(self, size_mb: float, on_complete: Callable[[], None]) -> None:
        """Read ``size_mb`` from the shared filesystem, then run ``on_complete``."""
        if size_mb < 0:
            raise ValueError("size_mb must be non-negative")

        def start() -> None:
            duration = self.config.request_latency_s + size_mb / self.config.per_stream_bandwidth_mb_s

            def finish() -> None:
                self.streams.release()
                self.bytes_read += size_mb
                self.reads_completed += 1
                on_complete()

            self.sim.schedule(duration, finish)

        self.streams.acquire(start)

    def write(self, size_mb: float, on_complete: Callable[[], None]) -> None:
        """Write ``size_mb`` (parsed text output) to the shared filesystem."""
        if size_mb < 0:
            raise ValueError("size_mb must be non-negative")

        def start() -> None:
            duration = self.config.request_latency_s + size_mb / self.config.write_bandwidth_mb_s

            def finish() -> None:
                self.streams.release()
                self.bytes_written += size_mb
                on_complete()

            self.sim.schedule(duration, finish)

        self.streams.acquire(start)

    def delivered_read_bandwidth(self) -> float:
        """Mean delivered read bandwidth (MB/s) over the simulation so far."""
        if self.sim.now <= 0:
            return 0.0
        return self.bytes_read / self.sim.now


#: Accounting slack (MB) below which an eviction overshoot is treated as
#: floating-point drift from accumulated stage/evict arithmetic, not a bug.
_EVICTION_TOLERANCE_MB = 1e-6


class NodeLocalStore:
    """Node-local RAM staging area (bounded capacity, effectively instant I/O)."""

    def __init__(self, capacity_mb: float = 200_000.0) -> None:
        self.capacity_mb = capacity_mb
        self.used_mb = 0.0
        self.peak_mb = 0.0
        self.evictions = 0

    def stage(self, size_mb: float) -> bool:
        """Reserve staging space; returns False when the store is full."""
        if self.used_mb + size_mb > self.capacity_mb:
            return False
        self.used_mb += size_mb
        self.peak_mb = max(self.peak_mb, self.used_mb)
        return True

    def evict(self, size_mb: float) -> float:
        """Release staged data once its documents are processed.

        Returns the MB actually freed.  Asking to evict more than is staged
        indicates an accounting bug upstream (e.g. evicting an archive whose
        ``stage`` call was refused): the request is clamped to what is
        staged, but loudly — a :class:`RuntimeWarning` is emitted instead of
        silently zeroing the counter.
        """
        if size_mb < 0:
            raise ValueError("size_mb must be non-negative")
        freed = min(size_mb, self.used_mb)
        if size_mb > self.used_mb + _EVICTION_TOLERANCE_MB:
            warnings.warn(
                f"over-eviction: asked to evict {size_mb:.1f} MB with only "
                f"{self.used_mb:.1f} MB staged (clamped to {freed:.1f} MB)",
                RuntimeWarning,
                stacklevel=2,
            )
        self.used_mb -= freed
        self.evictions += 1
        return freed
