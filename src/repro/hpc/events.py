"""A minimal discrete-event simulation engine.

Events are ``(time, sequence, callback)`` triples in a heap; the sequence
number breaks ties deterministically in scheduling order.  Components build on
two primitives: :meth:`DiscreteEventSimulator.schedule` (run a callback after
a delay) and :meth:`DiscreteEventSimulator.run` (drain the event queue).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)


class DiscreteEventSimulator:
    """Priority-queue based discrete-event loop."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[_Event] = []
        self._sequence = 0
        self._processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at an absolute simulated time (≥ now)."""
        if time < self.now - 1e-12:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        self._sequence += 1
        heapq.heappush(self._queue, _Event(time=float(time), sequence=self._sequence, callback=callback))

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events until the queue drains (or a limit is reached).

        Returns the simulation time after the last processed event.
        """
        processed = 0
        while self._queue:
            if until is not None and self._queue[0].time > until:
                self.now = until
                break
            event = heapq.heappop(self._queue)
            self.now = event.time
            event.callback()
            processed += 1
            self._processed += 1
            if max_events is not None and processed >= max_events:
                break
        return self.now

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    @property
    def processed_events(self) -> int:
        """Number of events processed so far."""
        return self._processed
