"""The thread backend: batches fan out over a bounded thread pool.

This absorbs the pipeline's former ``_ordered_map`` thread-pool code and
fixes its teardown: abandoning the streaming iterator early used to leave
up to ``2 * n_jobs`` queued batches behind without cancelling their
futures (and the abandoned pool's threads with them).  The iterator's
``finally`` now cancels every pending future explicitly, and
:meth:`ThreadBackend.close` joins the pool (``shutdown(wait=True)``) so
no worker threads outlive the backend — the regression test asserts both.
"""

from __future__ import annotations

import itertools
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from time import perf_counter
from typing import Any, Callable, Iterable, Iterator, Mapping, TypeVar

from repro.pipeline.backends.base import (
    BackendError,
    BackendSpec,
    ExecutionBackend,
    ExecutionRecorder,
    ExecutionStats,
    register_backend,
)

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Thread-name prefix of the pool workers (the leak regression test keys on it).
THREAD_NAME_PREFIX = "repro-backend"


class ThreadBackend(ExecutionBackend):
    """Fan batches out over ``n_jobs`` threads, yielding in input order.

    At most ``window`` (default ``2 * n_jobs``) batches are in flight, so
    streaming callers retain bounded memory over very long inputs.  Worker
    threads share the parent's memory: caches, single-flight guards, and
    engines need no adaptation (routing is stateless and telemetry is a
    return value).  Best suited to workloads that release the GIL (I/O,
    numpy) — for pure-Python CPU-bound parsing see the process backend.
    """

    name = "thread"

    def __init__(self, n_jobs: int = 4, window: int | None = None) -> None:
        if n_jobs < 1:
            raise ValueError("n_jobs must be positive")
        if window is not None and window < 1:
            raise ValueError("window must be positive")
        self.n_jobs = n_jobs
        self.window = window if window is not None else 2 * n_jobs
        self._recorder = ExecutionRecorder(self.name)
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False

    @property
    def workers(self) -> int:
        return self.n_jobs

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._closed:
            raise BackendError(f"{self.name} backend is closed")
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.n_jobs,
                thread_name_prefix=f"{THREAD_NAME_PREFIX}-{self.name}",
            )
        return self._pool

    def map_ordered(
        self,
        fn: Callable[[_T], _R],
        items: Iterable[_T],
        *,
        options: Mapping[str, Any] | None = None,
    ) -> Iterator[_R]:
        window = int((options or {}).get("window", self.window))
        if window < 1:
            raise ValueError("window must be positive")
        pool = self._ensure_pool()
        recorder = self._recorder

        def task(item: _T, submitted_at: float) -> _R:
            started = perf_counter()
            result = fn(item)
            recorder.record_batch(started - submitted_at, perf_counter() - started)
            return result

        iterator = iter(items)
        pending: deque[Future[_R]] = deque()

        def submit(item: _T) -> None:
            recorder.record_dispatch()
            pending.append(pool.submit(task, item, perf_counter()))
            recorder.record_in_flight(len(pending))

        try:
            for item in itertools.islice(iterator, window):
                submit(item)
            for item in iterator:
                yield pending.popleft().result()
                submit(item)
            while pending:
                yield pending.popleft().result()
        finally:
            # An abandoned iterator (or a worker error) leaves up to
            # `window` batches queued that nobody will consume: cancel them
            # so close() only has to join batches that actually started.
            recorder.record_cancelled(sum(1 for future in pending if future.cancel()))

    def stats(self) -> ExecutionStats:
        return self._recorder.snapshot(self.name, self.workers)

    def close(self) -> None:
        if self._pool is not None:
            # cancel_futures guards against maps still mid-stream; wait=True
            # joins the workers so no threads outlive the backend.
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        self._closed = True


register_backend(
    BackendSpec(
        name="thread",
        factory=ThreadBackend,
        options=frozenset({"n_jobs", "window"}),
        description="thread pool sharing parent memory (cache/single-flight native)",
    )
)
