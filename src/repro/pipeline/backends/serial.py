"""The serial backend: batches run inline in the calling thread."""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Iterable, Iterator, Mapping, TypeVar

from repro.pipeline.backends.base import (
    BackendError,
    BackendSpec,
    ExecutionBackend,
    ExecutionRecorder,
    ExecutionStats,
    register_backend,
)

_T = TypeVar("_T")
_R = TypeVar("_R")


class SerialBackend(ExecutionBackend):
    """Run every batch inline, one at a time, in the calling thread.

    The reference backend: zero scheduling machinery, deterministic
    execution order, and the baseline the parity tests hold every other
    backend to.  Telemetry is still recorded (one batch in flight, no
    queue wait) so reports have a uniform ``execution`` block.
    """

    name = "serial"

    def __init__(self) -> None:
        self._recorder = ExecutionRecorder(self.name)
        self._closed = False

    def _observe(self, output: object) -> None:
        """Hook for subclasses watching completed batches (the HPC adapter)."""

    def map_ordered(
        self,
        fn: Callable[[_T], _R],
        items: Iterable[_T],
        *,
        options: Mapping[str, Any] | None = None,
    ) -> Iterator[_R]:
        if self._closed:
            raise BackendError(f"{self.name} backend is closed")
        recorder = self._recorder
        for item in items:
            recorder.record_dispatch()
            recorder.record_in_flight(1)
            started = perf_counter()
            result = fn(item)
            recorder.record_batch(0.0, perf_counter() - started)
            self._observe(result)
            yield result

    def stats(self) -> ExecutionStats:
        return self._recorder.snapshot(self.name, self.workers)

    def close(self) -> None:
        self._closed = True


register_backend(
    BackendSpec(
        name="serial",
        factory=SerialBackend,
        options=frozenset(),
        description="inline execution in the calling thread (reference backend)",
    )
)
