"""The HPC backend: pipeline runs replayed through the simulated cluster.

``repro.hpc`` models the paper's Polaris-style cluster — per-node
executors with prefetching, CPU/GPU capacity resources, warm-started
models, and a shared filesystem — but before this adapter it sat
disconnected from the user-facing pipeline API.  :class:`HPCBackend`
closes that gap: batches execute inline (so parse output is byte-for-byte
the serial backend's), while every result's *measured* resource usage is
accumulated into :class:`~repro.hpc.workload.ParseTask` objects and, when
stats are requested, replayed through a
:class:`~repro.hpc.campaign.ParsingCampaign` at the configured cluster
scale.  One request therefore yields both the real parses and the
simulated-cluster telemetry (campaign wall time, aggregate throughput,
CPU/GPU utilisation, model loads) in ``ExecutionStats.extra`` — the same
facade later multi-node PRs will plug real dispatch into.
"""

from __future__ import annotations

from typing import Any

from repro.hpc.campaign import CampaignConfig, ParsingCampaign
from repro.hpc.workload import ParseTask, WorkloadModel
from repro.parsers.base import ParseResult
from repro.pipeline.backends.base import BackendSpec, ExecutionStats, register_backend
from repro.pipeline.backends.serial import SerialBackend


class HPCBackend(SerialBackend):
    """Run batches inline and replay their cost on the simulated cluster.

    Inline execution (and its telemetry) is inherited from
    :class:`SerialBackend`; this adapter only observes each completed
    batch.  Parameters mirror :class:`~repro.hpc.campaign.CampaignConfig`:
    node count, per-node CPU cores and GPUs, archive aggregation size,
    prefetch depth, and warm starting.  ``workers`` reports the node
    count; the simulated numbers land in ``stats().extra`` under ``sim_*``
    keys.  A reused instance aggregates all work it executed into one
    campaign replay (labelled ``"mixed"`` when more than one parser ran).
    """

    name = "hpc"

    def __init__(
        self,
        n_nodes: int = 4,
        cpu_cores_per_node: int = 32,
        gpus_per_node: int = 4,
        docs_per_archive: int = 64,
        prefetch_depth: int = 2,
        warm_start: bool = True,
    ) -> None:
        super().__init__()
        self.config = CampaignConfig(
            n_nodes=n_nodes,
            cpu_cores_per_node=cpu_cores_per_node,
            gpus_per_node=gpus_per_node,
            docs_per_archive=docs_per_archive,
            prefetch_depth=prefetch_depth,
            warm_start=warm_start,
        )
        self._workload = WorkloadModel()
        #: Per-document cost records for the replay — ParseTask objects, not
        #: ParseResults, so streaming consumers keep O(batch) memory for the
        #: page texts (only doc-sized cost scalars accumulate here).
        self._tasks: list[ParseTask] = []
        self._parser_name: str | None = None
        self._simulated: dict[str, Any] | None = None

    @property
    def workers(self) -> int:
        return self.config.n_nodes

    def _observe(self, output: object) -> None:
        """Harvest the batch's measured per-document costs for the replay."""
        if not (isinstance(output, tuple) and len(output) == 2):
            return
        results = output[0]
        if not isinstance(results, list):
            return
        harvested = [r for r in results if isinstance(r, ParseResult)]
        if harvested:
            self._simulated = None  # new work invalidates the cached replay
            self._tasks.extend(self._workload.tasks_from_results(harvested))
            for result in harvested:
                if self._parser_name is None:
                    self._parser_name = result.parser_name
                elif self._parser_name != result.parser_name:
                    # A reused instance aggregates every run it executed into
                    # one campaign; a single parser's label would mislabel
                    # the mix (e.g. coordination costs are keyed by name).
                    self._parser_name = "mixed"
                    break

    def _simulate(self) -> dict[str, Any]:
        if self._simulated is None:
            if not self._tasks:
                self._simulated = {}
            else:
                outcome = ParsingCampaign(self.config).run_tasks(
                    self._parser_name or "parser", self._tasks
                )
                self._simulated = {
                    "sim_nodes": self.config.n_nodes,
                    "sim_time_s": round(outcome.total_time_s, 4),
                    "sim_docs_per_s": round(outcome.throughput_docs_per_s, 4),
                    "sim_cpu_utilization": round(outcome.cpu_utilization, 4),
                    "sim_gpu_utilization": round(outcome.gpu_utilization, 4),
                    "sim_model_loads": outcome.model_loads,
                    "sim_documents_completed": outcome.documents_completed,
                }
        return dict(self._simulated)

    def stats(self) -> ExecutionStats:
        stats = super().stats()
        stats.extra.update(self._simulate())
        return stats


register_backend(
    BackendSpec(
        name="hpc",
        factory=HPCBackend,
        options=frozenset(
            {
                "n_nodes",
                "cpu_cores_per_node",
                "gpus_per_node",
                "docs_per_archive",
                "prefetch_depth",
                "warm_start",
            }
        ),
        description="inline parse + simulated-cluster replay (repro.hpc facade)",
    )
)
