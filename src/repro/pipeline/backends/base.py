"""The :class:`ExecutionBackend` protocol and the backend registry.

An execution backend answers one question for the pipeline: *given a
per-batch worker and a stream of batches, how do the batches actually
run?*  Serial in the calling thread, fanned out over a thread pool,
shipped to worker processes, or replayed through the simulated HPC
cluster — the parsing algorithm (routing, α budgets, caching) is
identical in every case, only the execution policy varies.

The contract every backend implements:

* :meth:`ExecutionBackend.map_ordered` — apply a worker over a stream of
  work items with a **bounded in-flight window**, yielding results in
  input order.  Streaming callers keep O(window) memory over arbitrarily
  long inputs, and abandoning the returned iterator cancels work that
  has not started.
* :meth:`ExecutionBackend.wrap_inner` — adapt a *picklable* inner worker
  for the backend's execution site.  In-process backends return it
  unchanged; the process backend returns a parent-side stub that ships
  the call to a worker process.  The pipeline composes its cache layer
  *around* the wrapped worker, so cache lookups, single-flight leases,
  and write-backs always run in the parent process.
* :meth:`ExecutionBackend.stats` — an :class:`ExecutionStats` snapshot:
  batches dispatched/completed/cancelled, the in-flight and queue-wait
  high-water marks, and per-batch latency percentiles.  The pipeline
  embeds this block in :class:`~repro.pipeline.report.ParseReport`.
* :meth:`ExecutionBackend.close` — release pools/processes.  Idempotent;
  ``stats()`` keeps working after close.

Backends are constructed by name through the registry
(:func:`create_backend`), with option dictionaries validated against the
backend's :class:`BackendSpec`; :func:`normalize_backend_spec` resolves
the ``"auto"`` name (an ``{"n_jobs": N}`` option steers it to the thread
backend).
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, TypeVar

from repro.obs import metrics as _metrics

_T = TypeVar("_T")
_R = TypeVar("_R")

_BATCHES_DISPATCHED = _metrics.counter(
    "repro_backend_batches_dispatched_total",
    "Batches submitted to an execution backend.",
    ("backend",),
)
_BATCHES_COMPLETED = _metrics.counter(
    "repro_backend_batches_completed_total",
    "Batches an execution backend finished.",
    ("backend",),
)
_BATCHES_CANCELLED = _metrics.counter(
    "repro_backend_batches_cancelled_total",
    "Batches cancelled before starting (abandoned iterators).",
    ("backend",),
)
_BATCH_LATENCY = _metrics.histogram(
    "repro_backend_batch_latency_seconds",
    "Per-batch execution time, excluding queue wait.",
    ("backend",),
)
_QUEUE_WAIT = _metrics.histogram(
    "repro_backend_queue_wait_seconds",
    "Time a batch sat between submission and a worker picking it up.",
    ("backend",),
)
_IN_FLIGHT = _metrics.gauge(
    "repro_backend_in_flight",
    "Batches currently submitted but not yet consumed.",
    ("backend",),
)


class BackendError(RuntimeError):
    """An execution backend could not run the requested work."""


# ---------------------------------------------------------------------- #
# Telemetry
# ---------------------------------------------------------------------- #
@dataclass
class ExecutionStats:
    """What one backend did during a run (the ``ParseReport.execution`` block).

    Attributes
    ----------
    backend:
        Registry name of the backend that executed the run.
    workers:
        Parallel worker count (1 for serial, ``n_jobs`` for thread/process,
        node count for the HPC adapter).
    batches_dispatched / batches_completed / batches_cancelled:
        Batches submitted, finished, and cancelled before starting (an
        abandoned streaming iterator cancels its queued batches).
    in_flight_high_water:
        Most batches simultaneously submitted-but-unconsumed (bounded by
        the backend's window).
    queue_wait_seconds_high_water:
        Longest a batch sat between submission and a worker picking it up.
    batch_latency_seconds:
        Per-batch execution-time percentiles (``mean``/``p50``/``p90``/
        ``p99``/``max``), excluding queue wait.
    extra:
        Backend-specific numbers (e.g. the HPC adapter's simulated
        cluster time and utilisation).
    """

    backend: str = "serial"
    workers: int = 1
    batches_dispatched: int = 0
    batches_completed: int = 0
    batches_cancelled: int = 0
    in_flight_high_water: int = 0
    queue_wait_seconds_high_water: float = 0.0
    batch_latency_seconds: dict[str, float] = field(default_factory=dict)
    extra: dict[str, Any] = field(default_factory=dict)

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "workers": self.workers,
            "batches_dispatched": self.batches_dispatched,
            "batches_completed": self.batches_completed,
            "batches_cancelled": self.batches_cancelled,
            "in_flight_high_water": self.in_flight_high_water,
            "queue_wait_seconds_high_water": self.queue_wait_seconds_high_water,
            "batch_latency_seconds": dict(self.batch_latency_seconds),
            "extra": dict(self.extra),
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "ExecutionStats":
        return cls(
            backend=str(payload.get("backend", "serial")),
            workers=int(payload.get("workers", 1)),
            batches_dispatched=int(payload.get("batches_dispatched", 0)),
            batches_completed=int(payload.get("batches_completed", 0)),
            batches_cancelled=int(payload.get("batches_cancelled", 0)),
            in_flight_high_water=int(payload.get("in_flight_high_water", 0)),
            queue_wait_seconds_high_water=float(
                payload.get("queue_wait_seconds_high_water", 0.0)
            ),
            batch_latency_seconds={
                str(k): float(v)
                for k, v in dict(payload.get("batch_latency_seconds", {})).items()
            },
            extra=dict(payload.get("extra", {})),
        )


class ExecutionRecorder:
    """Thread-safe accumulator behind :meth:`ExecutionBackend.stats`.

    The same record calls feed the global ``repro_backend_*`` metrics
    (labeled by backend name), so report-level stats and the process
    registry always agree.
    """

    def __init__(self, backend: str = "unknown") -> None:
        self.backend = backend
        self._lock = threading.Lock()
        self._latencies: list[float] = []
        self._queue_wait_high_water = 0.0
        self._in_flight_high_water = 0
        self._dispatched = 0
        self._cancelled = 0

    def record_dispatch(self) -> None:
        with self._lock:
            self._dispatched += 1
        _BATCHES_DISPATCHED.inc(backend=self.backend)

    def record_in_flight(self, n: int) -> None:
        with self._lock:
            if n > self._in_flight_high_water:
                self._in_flight_high_water = n
        _IN_FLIGHT.set(n, backend=self.backend)

    def record_batch(self, queue_wait_seconds: float, latency_seconds: float) -> None:
        with self._lock:
            self._latencies.append(latency_seconds)
            if queue_wait_seconds > self._queue_wait_high_water:
                self._queue_wait_high_water = queue_wait_seconds
        _BATCHES_COMPLETED.inc(backend=self.backend)
        _BATCH_LATENCY.observe(latency_seconds, backend=self.backend)
        _QUEUE_WAIT.observe(queue_wait_seconds, backend=self.backend)

    def record_cancelled(self, n: int) -> None:
        with self._lock:
            self._cancelled += n
        if n:
            _BATCHES_CANCELLED.inc(n, backend=self.backend)

    def snapshot(self, backend: str, workers: int) -> ExecutionStats:
        with self._lock:
            latencies = sorted(self._latencies)
            stats = ExecutionStats(
                backend=backend,
                workers=workers,
                batches_dispatched=self._dispatched,
                batches_completed=len(latencies),
                batches_cancelled=self._cancelled,
                in_flight_high_water=self._in_flight_high_water,
                queue_wait_seconds_high_water=self._queue_wait_high_water,
            )
        if latencies:
            n = len(latencies)

            def rank(q: float) -> float:
                return latencies[min(n - 1, max(0, int(round(q * (n - 1)))))]

            stats.batch_latency_seconds = {
                "mean": sum(latencies) / n,
                "p50": rank(0.50),
                "p90": rank(0.90),
                "p99": rank(0.99),
                "max": latencies[-1],
            }
        return stats


# ---------------------------------------------------------------------- #
# The protocol
# ---------------------------------------------------------------------- #
class ExecutionBackend(abc.ABC):
    """How the pipeline's batches actually run.

    Subclasses set :attr:`name` (the registry name) and implement
    :meth:`map_ordered`; :meth:`wrap_inner` defaults to identity and is
    overridden by backends whose workers execute outside the parent
    process.  Backends are context managers (``close()`` on exit).
    """

    #: Registry name of the backend.
    name: str = "abstract"

    @property
    def workers(self) -> int:
        """Parallel worker count reported in :class:`ExecutionStats`."""
        return 1

    def wrap_inner(self, inner: Callable[[_T], _R]) -> Callable[[_T], _R]:
        """Adapt a picklable inner worker for this backend's execution site.

        In-process backends run the worker where the orchestration runs and
        return it unchanged.  Out-of-process backends return a parent-side
        stub that ships the call to a worker; anything the pipeline wraps
        *around* the returned callable (cache lookups, single-flight
        leases, write-backs) therefore stays in the parent.
        """
        return inner

    @abc.abstractmethod
    def map_ordered(
        self,
        fn: Callable[[_T], _R],
        items: Iterable[_T],
        *,
        options: Mapping[str, Any] | None = None,
    ) -> Iterator[_R]:
        """Apply ``fn`` over ``items``, yielding results in input order.

        At most a bounded window of items is in flight at once, so
        streaming callers retain O(window) memory over long inputs.
        Closing the returned iterator early cancels work that has not
        started; already-running work drains and is joined by
        :meth:`close`.
        """

    @abc.abstractmethod
    def stats(self) -> ExecutionStats:
        """Snapshot of this backend's execution telemetry (safe after close)."""

    def close(self) -> None:
        """Release worker pools.  Idempotent; further maps are refused."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class BackendSpec:
    """Name-based construction recipe of one backend."""

    name: str
    factory: Callable[..., ExecutionBackend]
    options: frozenset[str]
    description: str


_REGISTRY: dict[str, BackendSpec] = {}

#: Built-in backend name → defining module.  Names are knowable without
#: importing any implementation; a module is imported (running its
#: ``register_backend`` call) only when its backend is actually named, so
#: e.g. validating a serial request never loads the HPC simulator stack.
_BUILTIN_BACKEND_MODULES: dict[str, str] = {
    "serial": "repro.pipeline.backends.serial",
    "thread": "repro.pipeline.backends.thread",
    "process": "repro.pipeline.backends.process",
    "hpc": "repro.pipeline.backends.hpc",
    "async": "repro.pipeline.backends.async_",
    "remote": "repro.cluster.backend",
}


def register_backend(spec: BackendSpec) -> None:
    """Register (or replace) a backend spec under its name."""
    _REGISTRY[spec.name] = spec


def _ensure_registered(name: str | None = None) -> None:
    """Import the module defining ``name`` (or every built-in for ``None``)."""
    import importlib

    if name is None:
        for module in _BUILTIN_BACKEND_MODULES.values():
            importlib.import_module(module)
        return
    module = _BUILTIN_BACKEND_MODULES.get(name)
    if module is not None and name not in _REGISTRY:
        importlib.import_module(module)


def backend_names() -> list[str]:
    """Known backend names (sorted; built-ins plus runtime registrations)."""
    return sorted(set(_REGISTRY) | set(_BUILTIN_BACKEND_MODULES))


def backend_specs() -> list[BackendSpec]:
    """Registered backend specs (sorted by name; for docs and CLI help)."""
    _ensure_registered()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def create_backend(
    name: str, options: Mapping[str, Any] | None = None
) -> ExecutionBackend:
    """Construct a backend by registry name, validating its options."""
    _ensure_registered(name)
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ValueError(
            f"unknown execution backend {name!r}; known: {backend_names()}"
        )
    options = dict(options or {})
    unknown = sorted(set(options) - set(spec.options))
    if unknown:
        raise ValueError(
            f"unknown option(s) {unknown} for backend {name!r}; "
            f"known: {sorted(spec.options)}"
        )
    return spec.factory(**options)


def backend_accepts_option(backend: str, option: str) -> bool:
    """Whether a backend name (or ``"auto"``) takes a construction option.

    Derived from the registry's :class:`BackendSpec` declarations;
    ``"auto"`` accepts ``n_jobs`` because that option is what steers its
    serial-vs-thread choice.
    """
    if backend == "auto":
        return option == "n_jobs"
    _ensure_registered(backend)
    spec = _REGISTRY.get(backend)
    return spec is not None and option in spec.options


def _validated_n_jobs(value: Any) -> int:
    """``n_jobs`` as a positive int, rejecting bools and non-integral values.

    A silently dropped ``n_jobs=4.0`` (or ``true``, or ``0``) would run
    serial while the caller believes they requested workers.
    """
    if isinstance(value, bool):
        raise ValueError(f"n_jobs must be an integer, got {value!r}")
    if isinstance(value, float) and value.is_integer():
        value = int(value)
    if not isinstance(value, int):
        raise ValueError(f"n_jobs must be an integer, got {value!r}")
    if value < 1:
        raise ValueError(f"n_jobs must be positive, got {value}")
    return value


def normalize_backend_spec(
    backend: str,
    backend_options: Mapping[str, Any] | None = None,
) -> tuple[str, dict[str, Any]]:
    """Resolve ``"auto"`` to a concrete backend spec.

    An ``{"n_jobs": N}`` option with N > 1 selects the thread backend
    under ``"auto"``; ``"auto"`` without parallelism resolves to the
    serial backend.
    """
    options = dict(backend_options or {})
    if "n_jobs" in options and backend_accepts_option(backend, "n_jobs"):
        options["n_jobs"] = _validated_n_jobs(options["n_jobs"])
    name = backend
    if name == "auto":
        name = "thread" if options.get("n_jobs", 1) > 1 else "serial"
        if name == "serial":
            options.pop("n_jobs", None)
            if options:
                # Leftover options belong to a parallel backend; failing
                # them against serial would blame a backend the caller
                # never named.
                raise ValueError(
                    f"backend 'auto' resolves to the serial backend without "
                    f"parallelism, but options {sorted(options)} were given; "
                    f"name the backend explicitly (e.g. backend='thread')"
                )
    return name, options


def validate_backend_spec(
    backend: str,
    backend_options: Mapping[str, Any] | None = None,
) -> None:
    """Fail fast on an invalid backend spec (name, options, values).

    Queued/serialised specs must fail at construction, not hours later
    when a worker dequeues them; backend constructors are lazy (no pools
    are spawned), so a construct-and-close round trip is cheap.
    """
    if backend != "auto" and backend not in backend_names():
        raise ValueError(
            f"unknown execution backend {backend!r}; known: "
            f"{['auto'] + backend_names()}"
        )
    name, options = normalize_backend_spec(backend, backend_options)
    create_backend(name, options).close()


def resolve_execution(
    backend: "str | ExecutionBackend",
    backend_options: Mapping[str, Any] | None = None,
) -> tuple[ExecutionBackend, bool]:
    """Turn a backend spec (name or instance) into ``(backend, owned)``.

    A caller-supplied instance is passed through and *not* owned (the
    caller manages its lifecycle); a name is constructed here and owned by
    the caller of this function, which must :meth:`~ExecutionBackend.close`
    it when done.
    """
    if isinstance(backend, ExecutionBackend):
        if backend_options:
            raise ValueError(
                "backend_options only apply when the backend is given by name; "
                "configure the instance directly instead"
            )
        return backend, False
    name, options = normalize_backend_spec(backend, backend_options)
    return create_backend(name, options), True
