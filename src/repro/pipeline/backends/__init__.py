"""Pluggable execution backends of the parsing pipeline.

One :class:`ExecutionBackend` protocol, six implementations:

========= ==================================================================
name      execution
========= ==================================================================
serial    inline in the calling thread (reference; parity baseline)
thread    bounded thread-pool window sharing parent memory
process   worker processes for GIL-free parsing; cache stays parent-side
hpc       inline parse + measured-usage replay on the simulated cluster
async     asyncio event loop with an adaptive (AIMD) in-flight window
remote    repro.cluster worker daemons over TCP (multi-process/multi-host)
========= ==================================================================

Backends are selected by name through :class:`~repro.pipeline.ParseRequest`
(``backend="process"``, ``backend_options={"n_jobs": 8}``), resolved via
the registry (:func:`create_backend`), or passed as instances to the
pipeline's methods.  ``"auto"`` picks serial, or thread when an
``{"n_jobs": N}`` option asks for parallelism.

Public names resolve lazily (PEP 562) so that importing this package — or
:mod:`repro.pipeline.backends.base` beneath it — does not pull in the
concrete backends (notably the HPC adapter's simulator stack) until a
backend is actually named or constructed.
"""

from __future__ import annotations

#: Public name → "module:attribute", resolved on first access.
_LAZY_EXPORTS: dict[str, str] = {
    "AdaptiveWindow": "repro.pipeline.backends.async_:AdaptiveWindow",
    "AsyncBackend": "repro.pipeline.backends.async_:AsyncBackend",
    "BackendError": "repro.pipeline.backends.base:BackendError",
    "BackendSpec": "repro.pipeline.backends.base:BackendSpec",
    "ExecutionBackend": "repro.pipeline.backends.base:ExecutionBackend",
    "ExecutionRecorder": "repro.pipeline.backends.base:ExecutionRecorder",
    "ExecutionStats": "repro.pipeline.backends.base:ExecutionStats",
    "HPCBackend": "repro.pipeline.backends.hpc:HPCBackend",
    "ProcessBackend": "repro.pipeline.backends.process:ProcessBackend",
    "RemoteBackend": "repro.cluster.backend:RemoteBackend",
    "SerialBackend": "repro.pipeline.backends.serial:SerialBackend",
    "ThreadBackend": "repro.pipeline.backends.thread:ThreadBackend",
    "backend_accepts_option": "repro.pipeline.backends.base:backend_accepts_option",
    "backend_names": "repro.pipeline.backends.base:backend_names",
    "backend_specs": "repro.pipeline.backends.base:backend_specs",
    "create_backend": "repro.pipeline.backends.base:create_backend",
    "normalize_backend_spec": "repro.pipeline.backends.base:normalize_backend_spec",
    "register_backend": "repro.pipeline.backends.base:register_backend",
    "resolve_execution": "repro.pipeline.backends.base:resolve_execution",
    "validate_backend_spec": "repro.pipeline.backends.base:validate_backend_spec",
}

__all__ = sorted(_LAZY_EXPORTS)


def __getattr__(name: str):
    """Resolve lazily exported public names (delegates to repro.utils.lazy)."""
    from repro.utils.lazy import resolve_lazy

    return resolve_lazy(__name__, globals(), _LAZY_EXPORTS, name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
