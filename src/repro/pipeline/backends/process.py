"""The process backend: picklable work units on a process pool.

The parsing simulation is pure-Python CPU work, so threads cannot scale
it past the GIL; the process backend ships each batch to a worker
process instead.  The split of responsibilities keeps the cache layer
correct without any cross-process locking:

* **Children** run only the picklable inner worker (a bound
  ``route_batch``/``parse_with_telemetry`` method over a list of
  documents) and return plain ``(results, decisions)`` tuples.
* **The parent** keeps everything stateful: orchestration threads (one
  per process-pool slot, inherited from :class:`ThreadBackend`) drive the
  bounded in-flight window, and because :meth:`ProcessBackend.wrap_inner`
  is composed *inside* the pipeline's cache wrapper, cache lookups,
  single-flight leases, and write-backs all execute in these parent
  threads.  Single-flight therefore degrades gracefully under processes —
  it simply keeps working at parent scope, deduplicating what this
  process dispatches — and every child result is merged back into the
  parent's cache on return (write-back policies included).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, TypeVar

from repro.pipeline.backends.base import BackendError, BackendSpec, register_backend
from repro.pipeline.backends.thread import ThreadBackend

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Per-child-process registry of unpickled workers (filled by the pool
#: initializer so a trained engine crosses the IPC pipe once per worker
#: process, not once per batch).
_WORKER_REGISTRY: dict[str, Callable[..., object]] = {}


def _register_worker(token: str, payload: bytes) -> None:
    """Pool initializer: install the run's worker in this child process."""
    _WORKER_REGISTRY[token] = pickle.loads(payload)


def _call_registered(token: str, item):
    """Invoke the pre-registered worker (the per-batch task payload is
    just the token and the batch)."""
    return _WORKER_REGISTRY[token](item)


def _warmup() -> bool:
    """No-op task used to force worker processes to spawn eagerly."""
    return True


def _preferred_context(name: str | None) -> multiprocessing.context.BaseContext | None:
    """The requested start-method context, defaulting to fork when available.

    Fork keeps test- and notebook-defined parsers picklable by reference
    (the child already has the module loaded); platforms without fork fall
    back to their default start method.
    """
    if name is not None:
        return multiprocessing.get_context(name)
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


class ProcessBackend(ThreadBackend):
    """Execute batches in worker processes behind a thread-orchestrated window.

    ``n_jobs`` worker processes execute the inner worker; the inherited
    thread pool (same size) only orchestrates — each orchestration thread
    blocks on its child future, runs the parent-side cache layer, and
    yields results in order.  Work units must be picklable: documents,
    base parsers, and trained engines all are; ad-hoc closures are not and
    raise a :class:`BackendError` explaining the contract.
    """

    name = "process"

    def __init__(
        self,
        n_jobs: int = 4,
        window: int | None = None,
        mp_context: str | None = None,
    ) -> None:
        super().__init__(n_jobs=n_jobs, window=window)
        if mp_context is not None and mp_context not in (
            multiprocessing.get_all_start_methods()
        ):
            raise ValueError(
                f"unknown mp_context {mp_context!r}; available: "
                f"{multiprocessing.get_all_start_methods()}"
            )
        self._mp_context_name = mp_context
        self._executor: ProcessPoolExecutor | None = None
        self._registered_token: str | None = None

    def _ensure_executor(
        self, token: str | None = None, payload: bytes | None = None
    ) -> ProcessPoolExecutor:
        if self._closed:
            raise BackendError("process backend is closed")
        if self._executor is None:
            initargs = ()
            initializer = None
            if token is not None and payload is not None:
                # Ship the worker once per child via the initializer (it
                # also re-runs when a crashed worker is replaced); batch
                # submissions then carry only the token and the documents.
                initializer = _register_worker
                initargs = (token, payload)
                self._registered_token = token
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_jobs,
                mp_context=_preferred_context(self._mp_context_name),
                initializer=initializer,
                initargs=initargs,
            )
        return self._executor

    def wrap_inner(self, inner: Callable[[_T], _R]) -> Callable[[_T], _R]:
        # Serialise the worker up front: the pool would otherwise pickle it
        # on a feeder thread, surfacing a failure per batch as an opaque
        # exception instead of once with a diagnosis.
        try:
            payload = pickle.dumps(inner)
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            raise BackendError(
                f"process backend requires picklable work units; "
                f"{inner!r} could not be serialised ({exc}). Pass a "
                f"module-level parser/engine, or use the thread backend."
            ) from exc
        token = hashlib.sha256(payload).hexdigest()[:16]
        newly_created = self._executor is None
        executor = self._ensure_executor(token, payload)
        if newly_created:
            # Spawn the workers now, from the caller's thread, rather than
            # lazily from the orchestration threads the thread-pool window
            # starts later: forking a multi-threaded parent risks inheriting
            # held locks in the child (and warns on Python 3.12+).  This
            # also moves pool startup out of the per-batch latency stats.
            for future in [executor.submit(_warmup) for _ in range(self.n_jobs)]:
                future.result()

        def remote(item: _T) -> _R:
            if token == self._registered_token:
                future = executor.submit(_call_registered, token, item)
            else:
                # A second, different worker on a pool initialised for the
                # first one: correctness over IPC economy — ship it per call.
                future = executor.submit(inner, item)
            try:
                return future.result()
            except pickle.PicklingError as exc:
                raise BackendError(
                    f"process backend requires picklable work units; "
                    f"{inner!r} or its arguments could not be serialised "
                    f"({exc}). Pass a module-level parser/engine, or use "
                    f"the thread backend."
                ) from exc
            except BrokenProcessPool as exc:
                raise BackendError(
                    "a process-backend worker died; see the traceback above "
                    "(commonly: unpicklable work units under the spawn start "
                    "method, or the child was OOM-killed)"
                ) from exc

        return remote

    def close(self) -> None:
        super().close()
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None


register_backend(
    BackendSpec(
        name="process",
        factory=ProcessBackend,
        options=frozenset({"n_jobs", "window", "mp_context"}),
        description="process pool for GIL-free parsing; cache stays parent-side",
    )
)
