"""The async backend: batches scheduled on an asyncio event loop.

Where the thread backend drives a *fixed* in-flight window with blocking
futures, :class:`AsyncBackend` owns a private asyncio event loop (on a
dedicated thread) and schedules batch executions as awaitables with an
**adaptive** in-flight window: the window grows additively while observed
per-batch latency stays near its smoothed baseline and shrinks
multiplicatively when latency inflates — the classic AIMD control loop,
here used as a backpressure valve in front of the executor threads that
run the actual (synchronous) parse workers.

Two entry points share the same scheduling core:

* :meth:`AsyncBackend.map_ordered` — the synchronous
  :class:`~repro.pipeline.backends.base.ExecutionBackend` contract.  The
  caller's thread drives an async generator on the backend's loop via
  ``run_coroutine_threadsafe``, so the pipeline (and every existing
  consumer) uses the backend unchanged.
* :meth:`AsyncBackend.amap_ordered` — the asyncio-native async generator,
  for callers that already live on the loop (the ``repro.serve`` request
  multiplexer schedules many concurrent maps this way).

Window telemetry (high/low-water marks, growth/shrink counts, final
size) is aggregated across every map the instance ran and reported in
``ExecutionStats.extra`` under ``window_*`` keys.  Concurrent
``map_ordered`` calls are safe: per-call state lives in the generator,
and the recorder, the executor pool, and the window telemetry are all
lock-guarded — this is what lets one shared ``AsyncBackend`` serve many
simultaneous requests in :class:`repro.serve.ParseService`.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from time import perf_counter
from typing import Any, AsyncIterator, Callable, Iterable, Iterator, Mapping, TypeVar

from repro.pipeline.backends.base import (
    BackendError,
    BackendSpec,
    ExecutionBackend,
    ExecutionRecorder,
    ExecutionStats,
    register_backend,
)

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Thread-name prefix of the loop thread and the executor workers.
ASYNC_THREAD_PREFIX = "repro-backend-async"

#: Sentinel returned by the anext bridge when the async generator is done.
_DONE = object()


class AdaptiveWindow:
    """AIMD controller for how many batches the backend keeps in flight.

    The controller watches per-batch execution latency (queue wait
    excluded) against an exponentially weighted moving average:

    * latency within ``growth_headroom`` of the EWMA → the window grows
      by one (additive increase), up to ``max_size``;
    * latency beyond ``shrink_headroom`` × EWMA → the window halves
      (multiplicative decrease, ``shrink_factor``), down to ``min_size``.

    Growth is the default posture — a stable latency profile means the
    executor still has headroom — while a latency spike (an overloaded
    pool, a straggler parser, GIL contention) collapses the window
    quickly so queued work stops piling onto a struggling executor.
    High/low-water marks and the growth/shrink counts are exported for
    ``ExecutionStats.extra``.
    """

    def __init__(
        self,
        initial: int,
        min_size: int = 1,
        max_size: int = 64,
        enabled: bool = True,
        smoothing: float = 0.3,
        growth_headroom: float = 1.1,
        shrink_headroom: float = 1.5,
        shrink_factor: float = 0.5,
    ) -> None:
        if min_size < 1:
            raise ValueError("min_window must be positive")
        if max_size < min_size:
            raise ValueError("max_window must be >= min_window")
        self.initial = min(max(initial, min_size), max_size)
        self.size = self.initial
        self.min_size = min_size
        self.max_size = max_size
        self.enabled = enabled
        self.smoothing = smoothing
        self.growth_headroom = growth_headroom
        self.shrink_headroom = shrink_headroom
        self.shrink_factor = shrink_factor
        self.high_water = self.size
        self.low_water = self.size
        self.growths = 0
        self.shrinks = 0
        self._ewma: float | None = None

    def observe(self, latency_seconds: float) -> int:
        """Feed one completed batch's latency; returns the updated window."""
        if not self.enabled:
            return self.size
        if self._ewma is None:
            self._ewma = latency_seconds
            return self.size
        if latency_seconds > self._ewma * self.shrink_headroom:
            shrunk = max(self.min_size, int(self.size * self.shrink_factor))
            if shrunk < self.size:
                self.size = shrunk
                self.shrinks += 1
                self.low_water = min(self.low_water, self.size)
        elif latency_seconds <= self._ewma * self.growth_headroom:
            if self.size < self.max_size:
                self.size += 1
                self.growths += 1
                self.high_water = max(self.high_water, self.size)
        self._ewma = (
            (1.0 - self.smoothing) * self._ewma + self.smoothing * latency_seconds
        )
        return self.size


class AsyncBackend(ExecutionBackend):
    """Schedule batches on a private asyncio loop with an adaptive window.

    Parameters
    ----------
    n_jobs:
        Executor threads that run the (synchronous) batch workers.  The
        loop itself never blocks on a parse.
    window:
        Initial in-flight window; defaults to ``n_jobs``.
    min_window / max_window:
        Bounds the adaptive controller moves within (defaults: 1 and
        ``4 * n_jobs``).
    adaptive:
        ``False`` pins the window at its initial size (the fixed-window
        behaviour of the thread backend, useful for A/B runs).
    """

    name = "async"

    def __init__(
        self,
        n_jobs: int = 4,
        window: int | None = None,
        min_window: int = 1,
        max_window: int | None = None,
        adaptive: bool = True,
    ) -> None:
        if isinstance(n_jobs, bool) or n_jobs < 1:
            raise ValueError("n_jobs must be a positive integer")
        if window is not None and window < 1:
            raise ValueError("window must be positive")
        if min_window < 1:
            raise ValueError("min_window must be positive")
        self.n_jobs = int(n_jobs)
        self.window = int(window) if window is not None else self.n_jobs
        self.min_window = int(min_window)
        self.max_window = (
            int(max_window) if max_window is not None else max(4 * self.n_jobs, self.window)
        )
        if self.max_window < self.min_window:
            raise ValueError("max_window must be >= min_window")
        self.adaptive = bool(adaptive)
        self._recorder = ExecutionRecorder(self.name)
        self._lifecycle_lock = threading.Lock()
        self._window_lock = threading.Lock()
        self._window_telemetry: dict[str, Any] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False

    @property
    def workers(self) -> int:
        return self.n_jobs

    # ------------------------------------------------------------------ #
    # Loop lifecycle
    # ------------------------------------------------------------------ #
    def _ensure_pool(self) -> ThreadPoolExecutor:
        """The executor pool (created on first use, under the lifecycle lock)."""
        with self._lifecycle_lock:
            if self._closed:
                raise BackendError(f"{self.name} backend is closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.n_jobs,
                    thread_name_prefix=f"{ASYNC_THREAD_PREFIX}-worker",
                )
            return self._pool

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        self._ensure_pool()
        with self._lifecycle_lock:
            if self._closed:
                raise BackendError(f"{self.name} backend is closed")
            if self._loop is None:
                self._loop = asyncio.new_event_loop()
                self._loop_thread = threading.Thread(
                    target=self._loop.run_forever,
                    name=f"{ASYNC_THREAD_PREFIX}-loop",
                    daemon=True,
                )
                self._loop_thread.start()
            return self._loop

    def _make_window(self, options: Mapping[str, Any] | None) -> AdaptiveWindow:
        opts = dict(options or {})
        initial = int(opts.get("window", self.window))
        if initial < 1:
            raise ValueError("window must be positive")
        return AdaptiveWindow(
            initial=initial,
            min_size=self.min_window,
            max_size=self.max_window,
            enabled=bool(opts.get("adaptive", self.adaptive)),
        )

    def _note_window(self, window: AdaptiveWindow) -> None:
        """Fold one finished map's window telemetry into the instance totals."""
        with self._window_lock:
            telemetry = self._window_telemetry
            telemetry.setdefault("window_initial", window.initial)
            telemetry["window_final"] = window.size
            telemetry["window_high_water"] = max(
                telemetry.get("window_high_water", 0), window.high_water
            )
            telemetry["window_low_water"] = min(
                telemetry.get("window_low_water", window.low_water), window.low_water
            )
            telemetry["window_growths"] = (
                telemetry.get("window_growths", 0) + window.growths
            )
            telemetry["window_shrinks"] = (
                telemetry.get("window_shrinks", 0) + window.shrinks
            )
            telemetry["maps_completed"] = telemetry.get("maps_completed", 0) + 1

    # ------------------------------------------------------------------ #
    # Asyncio-native mapping
    # ------------------------------------------------------------------ #
    async def amap_ordered(
        self,
        fn: Callable[[_T], _R],
        items: Iterable[_T],
        *,
        options: Mapping[str, Any] | None = None,
    ) -> AsyncIterator[_R]:
        """Async generator over ``fn(item)`` results, in input order.

        Runs on whichever loop awaits it — the backend's own (via
        ``map_ordered``'s bridge) or a caller-owned one
        (:class:`repro.serve.ParseService` schedules many of these on its
        service loop); the executor pool is shared either way.  At most
        the adaptive window's current size is in flight; abandoning the
        generator cancels batches that have not started.
        """
        window = self._make_window(options)
        loop = asyncio.get_running_loop()
        pool = self._ensure_pool()
        recorder = self._recorder
        iterator = iter(items)
        #: (awaitable wrapper, underlying executor future) per in-flight
        #: batch.  Cancellation must be judged on the *executor* future:
        #: an asyncio wrapper reports cancel() success even when the
        #: executor task is already running.
        pending: deque[tuple[asyncio.Future[tuple[float, _R]], Any]] = deque()
        exhausted = False

        def submit_one() -> bool:
            nonlocal exhausted
            try:
                item = next(iterator)
            except StopIteration:
                exhausted = True
                return False
            recorder.record_dispatch()
            submitted_at = perf_counter()

            def task(item: _T = item) -> tuple[float, _R]:
                started = perf_counter()
                try:
                    result = fn(item)
                except BaseException:
                    # A batch that executed to an exception still *finished*:
                    # record it so the accounting invariant (completed +
                    # cancelled == dispatched) survives errored runs.
                    recorder.record_batch(
                        started - submitted_at, perf_counter() - started
                    )
                    raise
                latency = perf_counter() - started
                recorder.record_batch(started - submitted_at, latency)
                return latency, result

            executor_future = pool.submit(task)
            pending.append((asyncio.wrap_future(executor_future), executor_future))
            recorder.record_in_flight(len(pending))
            return True

        try:
            while True:
                while not exhausted and len(pending) < window.size:
                    if not submit_one():
                        break
                if not pending:
                    break
                awaitable, _ = pending.popleft()
                latency, result = await awaitable
                window.observe(latency)
                yield result
        finally:
            # An abandoned generator (or a worker error) leaves submitted
            # batches behind: cancel what has not started, then drain the
            # rest so no executor work outlives the map.
            recorder.record_cancelled(
                sum(1 for _, executor_future in pending if executor_future.cancel())
            )
            if pending:
                await asyncio.gather(
                    *(awaitable for awaitable, _ in pending), return_exceptions=True
                )
            self._note_window(window)

    # ------------------------------------------------------------------ #
    # The synchronous ExecutionBackend contract
    # ------------------------------------------------------------------ #
    def map_ordered(
        self,
        fn: Callable[[_T], _R],
        items: Iterable[_T],
        *,
        options: Mapping[str, Any] | None = None,
    ) -> Iterator[_R]:
        loop = self._ensure_loop()
        generator = self.amap_ordered(fn, items, options=options)

        async def advance() -> Any:
            try:
                return await generator.__anext__()
            except StopAsyncIteration:
                return _DONE

        def iterate() -> Iterator[_R]:
            try:
                while True:
                    value = asyncio.run_coroutine_threadsafe(advance(), loop).result()
                    if value is _DONE:
                        return
                    yield value
            finally:
                # Runs on early abandonment too: close the async generator
                # so its finally-block cancels unstarted batches.  If the
                # backend was closed first the loop is stopped and the
                # bridge would never resolve — the executor shutdown has
                # already cancelled the queue, so give up quietly.
                try:
                    if not loop.is_closed():
                        asyncio.run_coroutine_threadsafe(
                            generator.aclose(), loop
                        ).result(timeout=5.0)
                except (FuturesTimeoutError, RuntimeError):
                    pass

        return iterate()

    def stats(self) -> ExecutionStats:
        stats = self._recorder.snapshot(self.name, self.workers)
        stats.extra["event_loop"] = "asyncio"
        with self._window_lock:
            stats.extra.update(self._window_telemetry)
        return stats

    def close(self) -> None:
        with self._lifecycle_lock:
            self._closed = True
            loop, thread, pool = self._loop, self._loop_thread, self._pool
            self._loop = None
            self._loop_thread = None
            self._pool = None
        if pool is not None:
            # Cancel batches still queued behind the executor, join the
            # ones that started — no worker threads outlive the backend.
            pool.shutdown(wait=True, cancel_futures=True)
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
            if thread is not None:
                thread.join()
            loop.close()


register_backend(
    BackendSpec(
        name="async",
        factory=AsyncBackend,
        options=frozenset({"n_jobs", "window", "min_window", "max_window", "adaptive"}),
        description="asyncio event loop with an adaptive (AIMD) in-flight window",
    )
)
