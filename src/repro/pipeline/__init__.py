"""Unified parsing pipeline: ``ParseRequest`` in, ``ParseReport`` out.

This package is THE way to run parsing.  A frozen
:class:`~repro.pipeline.request.ParseRequest` (documents or corpus spec,
parser-or-engine name, batch size, α override, execution backend, seed)
goes into :meth:`~repro.pipeline.pipeline.ParsePipeline.run`; a
:class:`~repro.pipeline.report.ParseReport` (results, per-document routing
decisions, aggregate resource usage, wall time, throughput) comes out.

Example
-------
>>> from repro.pipeline import ParsePipeline, ParseRequest
>>> report = ParsePipeline().run(ParseRequest(parser="pymupdf", source="synthetic:20?seed=7"))
>>> report.n_documents
20
>>> report.summary()["parser"]
'pymupdf'

Execution is pluggable: ``ParseRequest.backend`` selects an
:class:`~repro.pipeline.backends.ExecutionBackend` by name (``serial``,
``thread``, ``process``, ``hpc``, ``async``, or ``auto``) and
``ParseRequest.backend_options`` configures it; the report's
``execution`` block (:class:`~repro.pipeline.backends.ExecutionStats`)
records what the backend did.

The CLI subcommands, :class:`repro.datasets.assembly.DatasetBuilder`, and
:class:`repro.evaluation.harness.EvaluationHarness` are all built on this
facade, so improvements to the pipeline (sharding, caching, alternative
backends) reach every consumer at once.

Public names resolve lazily (PEP 562): importing this package does not pull
in the backend implementations (notably the HPC adapter's simulator stack)
until one is actually used.
"""

from __future__ import annotations

#: Public name → "module:attribute", resolved on first access.
_LAZY_EXPORTS: dict[str, str] = {
    "AsyncBackend": "repro.pipeline.backends.async_:AsyncBackend",
    "CachePolicy": "repro.cache:CachePolicy",
    "CacheStats": "repro.cache:CacheStats",
    "DEFAULT_BATCH_SIZE": "repro.pipeline.pipeline:DEFAULT_BATCH_SIZE",
    "ENGINE_VARIANTS": "repro.pipeline.pipeline:ENGINE_VARIANTS",
    "ExecutionBackend": "repro.pipeline.backends.base:ExecutionBackend",
    "ExecutionStats": "repro.pipeline.backends.base:ExecutionStats",
    "HPCBackend": "repro.pipeline.backends.hpc:HPCBackend",
    "ParseCache": "repro.cache:ParseCache",
    "ParsePipeline": "repro.pipeline.pipeline:ParsePipeline",
    "ParseReport": "repro.pipeline.report:ParseReport",
    "ParseRequest": "repro.pipeline.request:ParseRequest",
    "ProcessBackend": "repro.pipeline.backends.process:ProcessBackend",
    "SerialBackend": "repro.pipeline.backends.serial:SerialBackend",
    "ThreadBackend": "repro.pipeline.backends.thread:ThreadBackend",
    "backend_names": "repro.pipeline.backends.base:backend_names",
    "create_backend": "repro.pipeline.backends.base:create_backend",
    "request_for_documents": "repro.pipeline.request:request_for_documents",
}

__all__ = sorted(_LAZY_EXPORTS)


def __getattr__(name: str):
    """Resolve lazily exported public names (delegates to repro.utils.lazy)."""
    from repro.utils.lazy import resolve_lazy

    return resolve_lazy(__name__, globals(), _LAZY_EXPORTS, name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
