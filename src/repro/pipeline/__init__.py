"""Unified parsing pipeline: ``ParseRequest`` in, ``ParseReport`` out.

This package is THE way to run parsing.  A frozen
:class:`~repro.pipeline.request.ParseRequest` (documents or corpus spec,
parser-or-engine name, batch size, α override, worker count, seed) goes
into :meth:`~repro.pipeline.pipeline.ParsePipeline.run`; a
:class:`~repro.pipeline.report.ParseReport` (results, per-document routing
decisions, aggregate resource usage, wall time, throughput) comes out.

Example
-------
>>> from repro.pipeline import ParsePipeline, ParseRequest
>>> report = ParsePipeline().run(ParseRequest(parser="pymupdf", n_documents=20, seed=7))
>>> report.n_documents
20
>>> report.summary()["parser"]
'pymupdf'

The CLI subcommands, :class:`repro.datasets.assembly.DatasetBuilder`, and
:class:`repro.evaluation.harness.EvaluationHarness` are all built on this
facade, so improvements to the pipeline (sharding, caching, alternative
backends) reach every consumer at once.
"""

from __future__ import annotations

from repro.cache import CachePolicy, CacheStats, ParseCache
from repro.pipeline.pipeline import DEFAULT_BATCH_SIZE, ENGINE_VARIANTS, ParsePipeline
from repro.pipeline.report import ParseReport
from repro.pipeline.request import ParseRequest, request_for_documents

__all__ = [
    "CachePolicy",
    "CacheStats",
    "DEFAULT_BATCH_SIZE",
    "ENGINE_VARIANTS",
    "ParseCache",
    "ParsePipeline",
    "ParseReport",
    "ParseRequest",
    "request_for_documents",
]
