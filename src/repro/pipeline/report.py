"""The typed result object of the parsing pipeline.

A :class:`ParseReport` bundles everything one pipeline run produced:
per-document parse results, per-document routing decisions (for engines),
aggregate resource usage, wall time, and throughput.  It replaces the old
pattern of reading telemetry back off mutable engine attributes — the
report *is* the telemetry, so concurrent runs cannot trample each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cache.stats import CacheStats
from repro.core.engine import RoutingDecision, RoutingSummary
from repro.parsers.base import ParseResult, ResourceUsage
from repro.pipeline.backends.base import ExecutionStats
from repro.pipeline.request import ParseRequest


@dataclass
class RehydratedParseResult(ParseResult):
    """A parse result restored from JSON.

    When the dump was written without page texts the true page/character
    counts still travel in the JSON; this subclass serves them instead of
    deriving zeros from the empty ``page_texts`` list.
    """

    stored_n_pages: int | None = None
    stored_n_characters: int | None = None

    @property
    def n_pages(self) -> int:
        if self.page_texts or self.stored_n_pages is None:
            return len(self.page_texts)
        return self.stored_n_pages

    @property
    def n_characters(self) -> int:
        if self.page_texts or self.stored_n_characters is None:
            return sum(len(t) for t in self.page_texts)
        return self.stored_n_characters


@dataclass
class ParseReport:
    """Everything one :class:`~repro.pipeline.ParsePipeline` run produced."""

    request: ParseRequest
    parser_name: str
    n_documents: int
    results: list[ParseResult] = field(default_factory=list)
    decisions: list[RoutingDecision] = field(default_factory=list)
    usage: ResourceUsage = field(default_factory=ResourceUsage)
    wall_time_seconds: float = 0.0
    #: What the parse cache did during this run (all zeros for policy off).
    cache: CacheStats = field(default_factory=CacheStats)
    #: How the run executed: backend name, workers, batches dispatched,
    #: queue-wait/in-flight high-water marks, per-batch latency percentiles.
    execution: ExecutionStats = field(default_factory=ExecutionStats)
    #: Where the time went: phase name → ``{total_s, self_s, cpu_s,
    #: calls, bytes}`` from the run's :class:`~repro.obs.PhaseTimer`
    #: (empty when phase attribution is disabled).  Child-worker tables
    #: — thread/process/async pools and remote shards alike — are merged
    #: in, so the same phase keys appear on every backend.
    phases: dict[str, dict[str, float]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Headline numbers
    # ------------------------------------------------------------------ #
    @property
    def n_succeeded(self) -> int:
        """Number of documents whose parse succeeded."""
        return sum(1 for r in self.results if r.succeeded)

    @property
    def throughput_docs_per_second(self) -> float:
        """Observed wall-clock throughput of the run."""
        if self.wall_time_seconds <= 0.0:
            return 0.0
        return self.n_documents / self.wall_time_seconds

    def routing_summary(self) -> RoutingSummary:
        """The decisions wrapped in the aggregate-statistics helper."""
        return RoutingSummary(decisions=list(self.decisions))

    def fraction_routed(self) -> float:
        """Fraction of documents routed to the high-quality parser."""
        return self.routing_summary().fraction_routed()

    def counts_by_stage(self) -> dict[str, int]:
        """Documents per routing stage (empty for base parsers)."""
        return self.routing_summary().counts_by_stage()

    def counts_by_doc_type(self) -> dict[str, dict[str, int]]:
        """Routing-stage counts split by document type (empty for base parsers)."""
        return self.routing_summary().counts_by_doc_type()

    def phase_summary(self) -> dict[str, dict[str, float]]:
        """The phase table rounded for display, sorted by total seconds."""
        ordered = sorted(
            self.phases.items(), key=lambda kv: (-kv[1].get("total_s", 0.0), kv[0])
        )
        return {
            name: {
                "total_s": round(row.get("total_s", 0.0), 4),
                "self_s": round(row.get("self_s", 0.0), 4),
                "cpu_s": round(row.get("cpu_s", 0.0), 4),
                "calls": int(row.get("calls", 0)),
                "bytes": int(row.get("bytes", 0)),
            }
            for name, row in ordered
        }

    def summary(self) -> dict[str, Any]:
        """Compact dictionary of the run's headline numbers."""
        return {
            "parser": self.parser_name,
            "n_documents": self.n_documents,
            "n_succeeded": self.n_succeeded,
            "wall_time_seconds": round(self.wall_time_seconds, 4),
            "throughput_docs_per_second": round(self.throughput_docs_per_second, 2),
            "cpu_seconds": round(self.usage.cpu_seconds, 4),
            "gpu_seconds": round(self.usage.gpu_seconds, 4),
            "fraction_routed": round(self.fraction_routed(), 4),
            "routing_stages": self.counts_by_stage(),
            "routing_by_doc_type": self.counts_by_doc_type(),
            "cache": self.cache.to_json_dict() if self.cache.any_activity else None,
            "phases": self.phase_summary(),
            "execution": {
                "backend": self.execution.backend,
                "workers": self.execution.workers,
                "batches_dispatched": self.execution.batches_dispatched,
                "in_flight_high_water": self.execution.in_flight_high_water,
            },
        }

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_json_dict(self, include_text: bool = False) -> dict[str, Any]:
        """JSON-compatible view of the report.

        ``include_text`` controls whether per-page text is embedded (it can
        dominate the payload size); telemetry, usage, and per-document
        outcomes are always included.
        """
        results_payload = []
        for result in self.results:
            entry: dict[str, Any] = {
                "parser_name": result.parser_name,
                "doc_id": result.doc_id,
                "n_pages": result.n_pages,
                "n_characters": result.n_characters,
                "succeeded": result.succeeded,
                "error": result.error,
                "usage": result.usage.to_json_dict(),
            }
            if include_text:
                entry["page_texts"] = list(result.page_texts)
            results_payload.append(entry)
        return {
            "request": self.request.to_json_dict(),
            "parser": self.parser_name,
            "n_documents": self.n_documents,
            "wall_time_seconds": self.wall_time_seconds,
            "usage": self.usage.to_json_dict(),
            "cache": self.cache.to_json_dict(),
            "phases": {name: dict(row) for name, row in self.phases.items()},
            "execution": self.execution.to_json_dict(),
            "summary": self.summary(),
            "decisions": [
                {
                    "doc_id": d.doc_id,
                    "chosen_parser": d.chosen_parser,
                    "stage": d.stage,
                    "predicted_improvement": d.predicted_improvement,
                    "doc_type": d.doc_type,
                }
                for d in self.decisions
            ],
            "results": results_payload,
        }

    @classmethod
    def from_json_dict(cls, payload: dict[str, Any]) -> "ParseReport":
        """Rebuild a report from :meth:`to_json_dict` output.

        Page texts are restored when the dump was written with
        ``include_text=True``; otherwise results carry empty page lists but
        keep their metadata (ids, success flags, usage).  A request that
        carried explicit documents rebuilds with ``doc_ids`` provenance and
        refuses to replay (the documents themselves were not serialised).
        """
        results: list[ParseResult] = [
            RehydratedParseResult(
                parser_name=entry["parser_name"],
                doc_id=entry["doc_id"],
                page_texts=list(entry.get("page_texts", [])),
                usage=ResourceUsage.from_json_dict(entry.get("usage", {})),
                succeeded=bool(entry.get("succeeded", True)),
                error=entry.get("error"),
                stored_n_pages=entry.get("n_pages"),
                stored_n_characters=entry.get("n_characters"),
            )
            for entry in payload.get("results", [])
        ]
        decisions = [
            RoutingDecision(
                doc_id=entry["doc_id"],
                chosen_parser=entry["chosen_parser"],
                stage=entry["stage"],
                predicted_improvement=float(entry.get("predicted_improvement", 0.0)),
                doc_type=str(entry.get("doc_type", "pdf")),
            )
            for entry in payload.get("decisions", [])
        ]
        return cls(
            request=ParseRequest.from_json_dict(payload["request"]),
            parser_name=payload["parser"],
            n_documents=int(payload["n_documents"]),
            results=results,
            decisions=decisions,
            usage=ResourceUsage.from_json_dict(payload.get("usage", {})),
            wall_time_seconds=float(payload.get("wall_time_seconds", 0.0)),
            cache=CacheStats.from_json_dict(payload.get("cache", {})),
            execution=ExecutionStats.from_json_dict(payload.get("execution", {})),
            phases={
                str(name): {str(k): float(v) for k, v in row.items()}
                for name, row in (payload.get("phases") or {}).items()
            },
        )
