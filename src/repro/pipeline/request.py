"""The typed request object of the parsing pipeline.

A :class:`ParseRequest` is a frozen, self-contained description of one
parsing run: which documents, which parser (or AdaParse engine), and the
execution knobs (batch size, α override, worker count).  Because it is
immutable and JSON-serialisable it can be logged, queued, replayed, and
compared — the building block a parsing *service* schedules on.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Sequence

from repro.documents.corpus import CorpusConfig
from repro.documents.document import SciDocument
from repro.documents.textgen import TextGenConfig


@dataclass(frozen=True)
class ParseRequest:
    """Immutable description of one parsing run.

    Exactly one document source applies, in order of precedence:

    1. ``documents`` — an explicit document collection (stored as a tuple);
    2. ``corpus`` — a :class:`~repro.documents.corpus.CorpusConfig` built
       lazily by the pipeline;
    3. the ``n_documents``/``seed`` shortcut, which builds a synthetic
       corpus with default knobs.

    Attributes
    ----------
    parser:
        Registry parser name (``pymupdf``, ``nougat``, …) or an engine name
        (``adaparse_ft``, ``adaparse_llm``).
    batch_size:
        Documents per scheduling batch; ``None`` uses the parser's own
        default (the engine's configured batch size, or the pipeline
        default for base parsers).
    alpha:
        Per-request override of the engine's α routing budget; ignored for
        base parsers.
    backend:
        Execution backend by registry name (``serial``, ``thread``,
        ``process``, ``hpc``, ``async``, ``remote``) or ``"auto"``, which
        picks serial — or thread when parallelism is requested via
        ``backend_options`` or the deprecated ``n_jobs``.
    backend_options:
        Backend construction options (e.g. ``{"n_jobs": 8}`` for the
        thread/process/async backends, ``{"n_nodes": 16}`` for ``hpc``,
        ``{"max_window": 32, "adaptive": True}`` for ``async``,
        ``{"workers": "host:port,host:port"}`` for ``remote``); see
        :func:`repro.pipeline.backends.backend_specs`.
    n_jobs:
        Deprecated alias for ``backend_options={"n_jobs": N}`` (with
        ``backend="auto"`` it resolves to the thread backend, matching the
        historical thread-pool behaviour).  Values other than 1 emit a
        :class:`DeprecationWarning`.
    seed:
        Corpus seed used by the ``n_documents`` shortcut (and recorded for
        provenance either way).
    cache:
        Cache policy for this run: ``"off"`` (default), ``"read"``,
        ``"write"``, or ``"readwrite"`` — see
        :class:`repro.cache.CachePolicy`.  Requires the pipeline to carry a
        :class:`repro.cache.ParseCache` (one is created on demand).
    """

    parser: str = "pymupdf"
    documents: tuple[SciDocument, ...] | None = None
    corpus: CorpusConfig | None = None
    n_documents: int = 100
    seed: int = 2025
    batch_size: int | None = None
    alpha: float | None = None
    backend: str = "auto"
    backend_options: dict[str, Any] = field(default_factory=dict)
    n_jobs: int = 1
    cache: str = "off"
    #: Provenance of an explicit document collection.  Derived from
    #: ``documents`` when present; carried alone after a JSON round trip, in
    #: which case the request is inspectable but refuses to replay (the
    #: documents themselves were not serialised).
    doc_ids: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.documents is not None:
            if not isinstance(self.documents, tuple):
                object.__setattr__(self, "documents", tuple(self.documents))
            if not self.documents:
                raise ValueError("documents must not be empty")
            # Keep the provenance truthful for explicit collections.
            object.__setattr__(self, "n_documents", len(self.documents))
            object.__setattr__(self, "doc_ids", tuple(d.doc_id for d in self.documents))
        elif self.doc_ids is not None:
            if not isinstance(self.doc_ids, tuple):
                object.__setattr__(self, "doc_ids", tuple(self.doc_ids))
            object.__setattr__(self, "n_documents", max(1, len(self.doc_ids)))
        elif self.corpus is not None:
            # Keep the headline provenance in sync with the corpus spec.
            object.__setattr__(self, "n_documents", self.corpus.n_documents)
            object.__setattr__(self, "seed", self.corpus.seed)
        if self.n_documents < 1:
            raise ValueError("n_documents must be positive")
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be positive")
        if self.n_jobs != 1:
            warnings.warn(
                "ParseRequest.n_jobs is deprecated; use backend='thread' (or "
                "'process') with backend_options={'n_jobs': N} instead",
                DeprecationWarning,
                stacklevel=3,
            )
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self.alpha is not None and not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must lie in [0, 1]")
        # Always copy: sharing the caller's dict would let later mutation of
        # it bypass the validation below.
        object.__setattr__(self, "backend_options", dict(self.backend_options))
        # Validate the backend spec eagerly: a queued/serialised request must
        # fail at construction, not hours later when a worker dequeues it.
        # Imported lazily to keep the module graph acyclic.
        from repro.pipeline.backends.base import validate_backend_spec

        validate_backend_spec(self.backend, self.backend_options, n_jobs=self.n_jobs)
        # Accept a CachePolicy enum member (a str subclass) or a plain
        # string; validate through the enum (the single source of truth for
        # the policy set) but store the plain value so the request stays
        # JSON-trivial.  Imported here to keep the module graph acyclic.
        from repro.cache import CachePolicy

        object.__setattr__(self, "cache", CachePolicy.coerce(self.cache).value)

    @property
    def cache_policy(self):
        """The request's cache policy as a :class:`repro.cache.CachePolicy`."""
        from repro.cache import CachePolicy

        return CachePolicy(self.cache)

    def resolved_backend(self) -> tuple[str, dict[str, Any]]:
        """The concrete ``(backend name, options)`` this request executes on.

        Resolves ``"auto"`` and folds the deprecated ``n_jobs`` alias into
        the options of the thread/process backends.
        """
        from repro.pipeline.backends.base import normalize_backend_spec

        return normalize_backend_spec(
            self.backend, self.backend_options, n_jobs=self.n_jobs
        )

    # ------------------------------------------------------------------ #
    # Document source resolution
    # ------------------------------------------------------------------ #
    def corpus_config(self) -> CorpusConfig | None:
        """The corpus configuration to build, or ``None`` for explicit docs.

        A request rehydrated from JSON that referenced explicit documents
        refuses to fall back to a synthetic corpus: replaying it against
        freshly generated documents would produce a same-shaped report over
        the wrong data.
        """
        if self.documents is not None:
            return None
        if self.doc_ids is not None:
            raise ValueError(
                "request references explicit documents that were not serialised; "
                "supply the documents to a fresh request to replay it"
            )
        if self.corpus is not None:
            return self.corpus
        return CorpusConfig(n_documents=self.n_documents, seed=self.seed)

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_json_dict(self) -> dict[str, Any]:
        """JSON-compatible view of the request.

        Explicit documents are recorded by id only (for provenance); a
        request built from a corpus spec round-trips losslessly through
        :meth:`from_json_dict`.
        """
        payload: dict[str, Any] = {
            "parser": self.parser,
            "n_documents": self.n_documents,
            "seed": self.seed,
            "batch_size": self.batch_size,
            "alpha": self.alpha,
            "backend": self.backend,
            "backend_options": dict(self.backend_options),
            "n_jobs": self.n_jobs,
            "cache": self.cache,
            "corpus": None,
            "doc_ids": None,
        }
        if self.corpus is not None:
            # asdict recurses into the nested textgen knobs, so the corpus
            # spec is lossless and a rehydrated request replays over
            # identical documents.
            payload["corpus"] = asdict(self.corpus)
        if self.doc_ids is not None:
            payload["doc_ids"] = list(self.doc_ids)
        return payload

    @classmethod
    def from_json_dict(cls, payload: dict[str, Any]) -> "ParseRequest":
        """Rebuild a request from :meth:`to_json_dict` output.

        A request that carried explicit documents rebuilds with its
        ``doc_ids`` provenance only — it can be inspected and compared, but
        :meth:`corpus_config` (and therefore the pipeline) refuses to replay
        it, because the documents themselves were not serialised.
        """
        corpus = None
        if payload.get("corpus") is not None:
            corpus_payload = dict(payload["corpus"])
            textgen_payload = corpus_payload.pop("textgen", None)
            known = {f.name for f in fields(CorpusConfig)}
            kwargs = {k: v for k, v in corpus_payload.items() if k in known}
            if textgen_payload is not None:
                textgen_known = {f.name for f in fields(TextGenConfig)}
                kwargs["textgen"] = TextGenConfig(
                    **{k: v for k, v in textgen_payload.items() if k in textgen_known}
                )
            corpus = CorpusConfig(**kwargs)
        doc_ids = payload.get("doc_ids")
        return cls(
            parser=payload.get("parser", "pymupdf"),
            corpus=corpus,
            n_documents=payload.get("n_documents", 100),
            seed=payload.get("seed", 2025),
            batch_size=payload.get("batch_size"),
            alpha=payload.get("alpha"),
            backend=payload.get("backend", "auto"),
            backend_options=dict(payload.get("backend_options", {}) or {}),
            n_jobs=payload.get("n_jobs", 1),
            cache=payload.get("cache", "off"),
            doc_ids=None if doc_ids is None else tuple(doc_ids),
        )


def request_for_documents(
    parser: str, documents: Sequence[SciDocument], **overrides: Any
) -> ParseRequest:
    """Convenience constructor for a request over an explicit collection."""
    return ParseRequest(parser=parser, documents=tuple(documents), **overrides)
