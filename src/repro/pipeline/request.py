"""The typed request object of the parsing pipeline.

A :class:`ParseRequest` is a frozen, self-contained description of one
parsing run: where the documents come from (a
:class:`~repro.documents.sources.DocumentSource`), which parser (or
AdaParse engine) processes them, and the execution knobs (batch size, α
override, backend spec).  Because it is immutable and JSON-serialisable it
can be logged, queued, replayed, and compared — the building block a
parsing *service* schedules on.

The canonical way to say "which documents" is the ``source`` field::

    ParseRequest(parser="pymupdf", source=HtmlDirSource("corpus/html"))
    ParseRequest(parser="pymupdf", source="html-dir:corpus/html")
    ParseRequest(parser="pymupdf", source=SourceSpec("synthetic", {"n_documents": 50}))

The pre-source fields (``documents=``, ``corpus=``, an explicit
``n_documents=``) still construct working requests but emit a
:class:`DeprecationWarning` and are normalised onto ``source``.
"""

from __future__ import annotations

import difflib
import warnings
from dataclasses import InitVar, dataclass, field, fields
from typing import Any, Mapping, Sequence

from repro.documents.corpus import CorpusConfig
from repro.documents.document import SciDocument
from repro.documents.sources import (
    DocumentSource,
    ExplicitSource,
    SourceSpec,
    SyntheticSource,
    create_source,
    parse_source_arg,
)
from repro.documents.textgen import TextGenConfig


def _warn_legacy(name: str, replacement: str) -> None:
    warnings.warn(
        f"ParseRequest.{name} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=4,
    )


@dataclass(frozen=True)
class ParseRequest:
    """Immutable description of one parsing run.

    Attributes
    ----------
    parser:
        Registry parser name (``pymupdf``, ``nougat``, …) or an engine name
        (``adaparse_ft``, ``adaparse_llm``).
    source:
        Where the documents come from.  Accepts a
        :class:`~repro.documents.sources.DocumentSource` instance, a
        declarative :class:`~repro.documents.sources.SourceSpec` (or its
        mapping form ``{"kind": ..., "options": {...}}``), or the CLI
        shorthand string ``"kind:value?opt=val"``.  Specs are validated and
        resolved at construction; after ``__init__`` the field always holds
        a ``DocumentSource`` (or ``None`` for a provenance-only request
        rehydrated from JSON, which refuses replay).  When nothing is
        passed, a default synthetic source (100 documents under ``seed``)
        is used.
    documents:
        Deprecated: an explicit document collection.  Normalised onto an
        :class:`~repro.documents.sources.ExplicitSource`; the field remains
        populated (as a tuple) for provenance.
    corpus:
        Deprecated: a :class:`~repro.documents.corpus.CorpusConfig`.
        Normalised onto a :class:`~repro.documents.sources.SyntheticSource`.
    n_documents:
        Deprecated as an *input* (use a synthetic source); always populated
        after construction with the resolved document count when it is
        knowable without reading content (``None`` otherwise, e.g. a
        directory source whose path only exists on the executing service).
    batch_size:
        Documents per scheduling batch; ``None`` uses the parser's own
        default (the engine's configured batch size, or the pipeline
        default for base parsers).
    alpha:
        Per-request override of the engine's α routing budget; ignored for
        base parsers.
    backend:
        Execution backend by registry name (``serial``, ``thread``,
        ``process``, ``hpc``, ``async``, ``remote``) or ``"auto"``, which
        picks serial — or thread when parallelism is requested via
        ``backend_options``.
    backend_options:
        Backend construction options (e.g. ``{"n_jobs": 8}`` for the
        thread/process/async backends, ``{"n_nodes": 16}`` for ``hpc``,
        ``{"max_window": 32, "adaptive": True}`` for ``async``,
        ``{"workers": "host:port,host:port"}`` for ``remote``); see
        :func:`repro.pipeline.backends.backend_specs`.
    seed:
        Corpus seed used by the synthetic-source shortcut (and recorded for
        provenance either way).
    cache:
        Cache policy for this run: ``"off"`` (default), ``"read"``,
        ``"write"``, or ``"readwrite"`` — see
        :class:`repro.cache.CachePolicy`.  Requires the pipeline to carry a
        :class:`repro.cache.ParseCache` (one is created on demand).
    """

    parser: str = "pymupdf"
    source: Any = None
    documents: tuple[SciDocument, ...] | None = None
    corpus: CorpusConfig | None = None
    n_documents: int | None = None
    seed: int = 2025
    batch_size: int | None = None
    alpha: float | None = None
    backend: str = "auto"
    backend_options: dict[str, Any] = field(default_factory=dict)
    cache: str = "off"
    #: Provenance of an explicit document collection.  Derived from the
    #: source when it is an ``ExplicitSource``; carried alone after a JSON
    #: round trip, in which case the request is inspectable but refuses to
    #: replay (the documents themselves were not serialised).  An *empty*
    #: tuple marks a custom source that could not be serialised at all.
    doc_ids: tuple[str, ...] | None = None
    #: Removed field (hard error): parallelism now lives in
    #: ``backend_options={"n_jobs": N}``.
    n_jobs: InitVar[Any] = None

    def __post_init__(self, n_jobs: Any) -> None:
        if n_jobs is not None:
            raise TypeError(
                "ParseRequest.n_jobs was removed; request parallelism with "
                "backend='thread' (or 'process') and backend_options={'n_jobs': N}"
            )
        if self.documents is not None:
            if not isinstance(self.documents, tuple):
                object.__setattr__(self, "documents", tuple(self.documents))
            if not self.documents:
                raise ValueError("documents must not be empty")
        if self.doc_ids is not None and not isinstance(self.doc_ids, tuple):
            object.__setattr__(self, "doc_ids", tuple(self.doc_ids))

        # ------------------------------------------------------------- #
        # Normalise the source: string shorthand -> spec -> instance.
        # ------------------------------------------------------------- #
        source = self.source
        if isinstance(source, str):
            source = parse_source_arg(source)
        if isinstance(source, Mapping):
            source = SourceSpec.from_json_dict(source)
        if isinstance(source, SourceSpec):
            source = create_source(source)
        if source is not None and not isinstance(source, DocumentSource):
            raise TypeError(
                "source must be a DocumentSource, SourceSpec, mapping, or "
                f"'kind:...' string, not {type(source).__name__}"
            )

        if source is None:
            if self.documents is not None:
                _warn_legacy(
                    "documents",
                    "source=ExplicitSource(documents) (or request_for_documents)",
                )
                source = ExplicitSource(self.documents)
            elif self.corpus is not None:
                _warn_legacy("corpus", "source=SyntheticSource(corpus_config)")
                source = SyntheticSource(self.corpus)
            elif self.doc_ids is not None:
                source = None  # provenance-only rehydration; refuses replay
            else:
                if self.n_documents is not None:
                    _warn_legacy(
                        "n_documents",
                        "source=SyntheticSource(CorpusConfig(...)) or "
                        "source='synthetic:N?seed=S'",
                    )
                count = 100 if self.n_documents is None else int(self.n_documents)
                if count < 1:
                    raise ValueError("n_documents must be positive")
                source = SyntheticSource(CorpusConfig(n_documents=count, seed=self.seed))
        else:
            # Legacy fields may ride along (dataclasses.replace re-passes
            # every field) but only when they agree with the source.
            if self.documents is not None and not (
                isinstance(source, ExplicitSource)
                and source.documents == self.documents
            ):
                raise ValueError(
                    "pass either source= or the deprecated documents=, not both"
                )
            if self.corpus is not None and not (
                isinstance(source, SyntheticSource) and source.config == self.corpus
            ):
                raise ValueError(
                    "pass either source= or the deprecated corpus=, not both"
                )
        object.__setattr__(self, "source", source)

        # Provenance fields, kept truthful against the resolved source.
        if isinstance(source, SyntheticSource):
            object.__setattr__(self, "n_documents", source.config.n_documents)
            object.__setattr__(self, "seed", source.config.seed)
            object.__setattr__(self, "corpus", source.config)
        elif isinstance(source, ExplicitSource):
            object.__setattr__(self, "documents", source.documents)
            object.__setattr__(
                self, "doc_ids", tuple(d.doc_id for d in source.documents)
            )
            object.__setattr__(self, "n_documents", len(source.documents))
        elif source is not None:
            object.__setattr__(self, "n_documents", source.count_hint())
        elif self.doc_ids is not None:
            object.__setattr__(
                self, "n_documents", len(self.doc_ids) if self.doc_ids else None
            )

        if self.n_documents is not None and self.n_documents < 1:
            raise ValueError("n_documents must be positive")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self.alpha is not None and not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must lie in [0, 1]")
        # Always copy: sharing the caller's dict would let later mutation of
        # it bypass the validation below.
        object.__setattr__(self, "backend_options", dict(self.backend_options))
        # Validate the backend spec eagerly: a queued/serialised request must
        # fail at construction, not hours later when a worker dequeues it.
        # Imported lazily to keep the module graph acyclic.
        from repro.pipeline.backends.base import validate_backend_spec

        validate_backend_spec(self.backend, self.backend_options)
        # Accept a CachePolicy enum member (a str subclass) or a plain
        # string; validate through the enum (the single source of truth for
        # the policy set) but store the plain value so the request stays
        # JSON-trivial.  Imported here to keep the module graph acyclic.
        from repro.cache import CachePolicy

        object.__setattr__(self, "cache", CachePolicy.coerce(self.cache).value)

    @property
    def cache_policy(self):
        """The request's cache policy as a :class:`repro.cache.CachePolicy`."""
        from repro.cache import CachePolicy

        return CachePolicy(self.cache)

    def resolved_backend(self) -> tuple[str, dict[str, Any]]:
        """The concrete ``(backend name, options)`` this request executes on."""
        from repro.pipeline.backends.base import normalize_backend_spec

        return normalize_backend_spec(self.backend, self.backend_options)

    # ------------------------------------------------------------------ #
    # Document source resolution
    # ------------------------------------------------------------------ #
    def resolve_source(self) -> DocumentSource:
        """The request's document source, ready to stream.

        A request rehydrated from JSON that referenced unserialised
        documents (an explicit collection or a spec-less custom source)
        refuses to resolve: replaying it against different data would
        produce a same-shaped report over the wrong documents.
        """
        if self.source is not None:
            return self.source
        raise ValueError(
            "request references documents that were not serialised; "
            "supply the documents (or a declarative source) to a fresh "
            "request to replay it"
        )

    def source_spec(self) -> SourceSpec | None:
        """The declarative spec of the source, when it has one."""
        return self.source.spec() if self.source is not None else None

    def corpus_config(self) -> CorpusConfig | None:
        """The synthetic corpus configuration, or ``None`` for other sources.

        Raises for a provenance-only rehydrated request, exactly like
        :meth:`resolve_source`.
        """
        if self.source is None:
            self.resolve_source()  # raises the refuse-replay error
        if isinstance(self.source, SyntheticSource):
            return self.source.config
        return None

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_json_dict(self) -> dict[str, Any]:
        """JSON-compatible view of the request.

        Declarative sources round-trip losslessly through their spec;
        explicit documents are recorded by id only (provenance) and a
        custom spec-less source serialises as an empty ``doc_ids`` list —
        both rehydrate into requests that refuse replay.
        """
        spec = self.source_spec()
        payload: dict[str, Any] = {
            "parser": self.parser,
            "source": None if spec is None else spec.to_json_dict(),
            "n_documents": self.n_documents,
            "seed": self.seed,
            "batch_size": self.batch_size,
            "alpha": self.alpha,
            "backend": self.backend,
            "backend_options": dict(self.backend_options),
            "cache": self.cache,
            "doc_ids": None,
        }
        if spec is None:
            payload["doc_ids"] = list(self.doc_ids) if self.doc_ids else []
        return payload

    #: JSON keys :meth:`from_json_dict` understands.  ``corpus`` and
    #: ``n_jobs`` are legacy keys: the former still rehydrates (through the
    #: deprecated constructor path), the latter is rejected unless it holds
    #: its old default.
    _JSON_KEYS = frozenset(
        {
            "parser",
            "source",
            "n_documents",
            "seed",
            "batch_size",
            "alpha",
            "backend",
            "backend_options",
            "cache",
            "doc_ids",
            "corpus",
            "n_jobs",
        }
    )

    @classmethod
    def from_json_dict(cls, payload: dict[str, Any]) -> "ParseRequest":
        """Rebuild a request from :meth:`to_json_dict` output.

        Unknown keys are rejected with a did-you-mean suggestion, so a typo
        in a request file (``"sorce"``, a misspelled source option) fails
        loudly at submit time instead of being silently dropped.  A request
        that carried unserialised documents rebuilds with its ``doc_ids``
        provenance only — it can be inspected and compared, but
        :meth:`resolve_source` (and therefore the pipeline) refuses to
        replay it.
        """
        unknown = sorted(set(payload) - cls._JSON_KEYS)
        if unknown:
            known = sorted(cls._JSON_KEYS - {"n_jobs"})
            hints = []
            for name in unknown:
                match = difflib.get_close_matches(name, known, n=1, cutoff=0.6)
                hints.append(f"{name!r}" + (f" (did you mean {match[0]!r}?)" if match else ""))
            raise ValueError(
                f"unknown ParseRequest field(s) {', '.join(hints)}; known: {known}"
            )
        if payload.get("n_jobs") not in (None, 1):
            raise ValueError(
                "request field 'n_jobs' was removed; use backend_options="
                "{'n_jobs': N} with backend 'thread' or 'process'"
            )
        corpus = None
        if payload.get("corpus") is not None:
            corpus_payload = dict(payload["corpus"])
            textgen_payload = corpus_payload.pop("textgen", None)
            known_fields = {f.name for f in fields(CorpusConfig)}
            kwargs = {k: v for k, v in corpus_payload.items() if k in known_fields}
            if textgen_payload is not None:
                textgen_known = {f.name for f in fields(TextGenConfig)}
                kwargs["textgen"] = TextGenConfig(
                    **{k: v for k, v in textgen_payload.items() if k in textgen_known}
                )
            corpus = CorpusConfig(**kwargs)
        doc_ids = payload.get("doc_ids")
        source = payload.get("source")
        common: dict[str, Any] = dict(
            parser=payload.get("parser", "pymupdf"),
            seed=payload.get("seed", 2025),
            batch_size=payload.get("batch_size"),
            alpha=payload.get("alpha"),
            backend=payload.get("backend", "auto"),
            backend_options=dict(payload.get("backend_options", {}) or {}),
            cache=payload.get("cache", "off"),
        )
        if source is not None:
            return cls(source=source, n_documents=None, **common)
        if doc_ids is not None:
            return cls(doc_ids=tuple(doc_ids), **common)
        if corpus is not None:
            return cls(corpus=corpus, **common)
        return cls(n_documents=payload.get("n_documents"), **common)


def request_for_documents(
    parser: str, documents: Sequence[SciDocument], **overrides: Any
) -> ParseRequest:
    """Convenience constructor for a request over an explicit collection."""
    return ParseRequest(
        parser=parser, source=ExplicitSource(tuple(documents)), **overrides
    )
