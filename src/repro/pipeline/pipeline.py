"""The :class:`ParsePipeline` facade: one way to run parsing.

Every entry point of the library — the CLI subcommands, the dataset
builder, the evaluation harness, and user code — funnels through this
facade: a frozen :class:`~repro.pipeline.request.ParseRequest` goes in, a
:class:`~repro.pipeline.report.ParseReport` comes out.  The pipeline

* resolves the parser name against the registry (training an AdaParse
  engine on demand for ``adaparse_ft``/``adaparse_llm``),
* applies per-request α/batch-size overrides without mutating shared
  engines,
* streams documents through the parser in α-budgeted batches with a
  bounded in-flight window (``iter_parse`` keeps memory O(batch)),
* dispatches batches through a pluggable
  :class:`~repro.pipeline.backends.ExecutionBackend` — serial, thread
  pool, process pool, or the simulated-HPC adapter — while preserving
  document order, which is safe because routing telemetry is a return
  value and engines hold no mutable routing state, and
* consults the content-addressed :class:`repro.cache.ParseCache` when the
  request carries a cache policy: hits are replayed, misses are parsed
  once (single-flighted across workers) and optionally stored, and the
  report's :class:`~repro.cache.CacheStats` block records what happened.
  The cache layer always runs in the parent process (backends adapt the
  *inner* worker via :meth:`~repro.pipeline.backends.ExecutionBackend.
  wrap_inner`), so policies behave identically on every backend.
"""

from __future__ import annotations

from contextlib import ExitStack
from time import perf_counter
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.cache import (
    CachePolicy,
    CacheStats,
    CacheStatsRecorder,
    ParseCache,
    cached_batch_worker,
)
from repro.core.engine import AdaParseEngine, RoutingDecision, build_default_engine
from repro.documents.document import SciDocument
from repro.obs import metrics as _metrics
from repro.obs import profiling as _profiling
from repro.obs import tracing as _tracing
from repro.parsers.base import Parser, ParseResult, ResourceUsage
from repro.parsers.registry import ParserRegistry, default_registry
from repro.pipeline.backends.base import (
    ExecutionBackend,
    create_backend,
    resolve_execution,
)
from repro.pipeline.report import ParseReport
from repro.pipeline.request import ParseRequest
from repro.utils.batching import chunked

#: Batch size used for base parsers when neither the request nor the parser
#: specifies one (engines default to their configured batch size).
DEFAULT_BATCH_SIZE = 64

#: Names the pipeline will train an engine for on first use.
ENGINE_VARIANTS = {"adaparse_ft": "ft", "adaparse_llm": "llm"}

#: One unit of pipeline work: a batch's results plus its routing decisions.
BatchOutput = tuple[list[ParseResult], list[RoutingDecision]]


class _ParserBatchWorker:
    """Picklable per-batch worker for base (non-engine) parsers.

    A module-level class instead of a closure so the process backend can
    ship it to worker processes; state is just the parser, which all base
    parsers (and trained engines) serialise cleanly.
    """

    __slots__ = ("parser",)

    def __init__(self, parser: Parser) -> None:
        self.parser = parser

    def __call__(self, batch: list[SciDocument]) -> BatchOutput:
        return self.parser.parse_with_telemetry(batch)


def _traced_batch_worker(
    worker: Callable[[list[SciDocument]], BatchOutput], backend_name: str
) -> Callable[[list[SciDocument]], BatchOutput]:
    """Wrap a composed batch worker with the caller's ambient observability.

    The active :class:`~repro.obs.tracing.TraceContext` *and* the ambient
    :class:`~repro.obs.profiling.PhaseTimer` are captured *here* (in the
    thread that set them — the service ticket thread or the caller) and
    re-activated around every batch invocation, because backend thread
    pools do not inherit contextvars.  Everything the worker does — cache
    lookups, phase brackets, remote shard round trips — then nests under
    the batch span and accumulates into the run's timer.  With no active
    trace and no timer the worker is returned unwrapped: zero overhead.
    """
    context = _tracing.current_trace()
    if context is None or not _tracing.enabled():
        context = None
    timer = _profiling.current_timer() if _profiling.phases_enabled() else None
    if context is None and timer is None:
        return worker

    def traced(batch: list[SciDocument]) -> BatchOutput:
        with ExitStack() as stack:
            if timer is not None:
                stack.enter_context(_profiling.use_timer(timer))
            if context is not None:
                stack.enter_context(_tracing.activate(context))
                stack.enter_context(
                    _tracing.span(
                        "backend.batch",
                        attributes={
                            "backend": backend_name,
                            "n_documents": len(batch),
                        },
                    )
                )
            return worker(batch)

    return traced


class _ChildPhasedWorker:
    """Run the inner worker under a fresh :class:`PhaseTimer`.

    Returns ``(output, phase_table)`` so the parent-side merge adapter can
    fold the child's attribution into the run's timer.  A module-level
    class (like :class:`_ParserBatchWorker`) so the process backend can
    pickle it into worker processes — the fresh-timer-per-call design is
    what makes phase capture work identically in-process and out: the
    child never needs the parent's timer object, only its table crosses
    back.
    """

    __slots__ = ("inner",)

    def __init__(self, inner: Callable[[list[SciDocument]], BatchOutput]) -> None:
        self.inner = inner

    def __call__(
        self, batch: list[SciDocument]
    ) -> "tuple[BatchOutput, dict[str, dict[str, float]]]":
        timer = _profiling.PhaseTimer()
        with _profiling.use_timer(timer):
            output = self.inner(batch)
        return output, timer.snapshot()


def _merge_phased_worker(site: Callable) -> Callable[[list[SciDocument]], BatchOutput]:
    """Unwrap a :class:`_ChildPhasedWorker` result, merging its phase table."""

    def merged(batch: list[SciDocument]) -> BatchOutput:
        output, table = site(batch)
        timer = _profiling.current_timer()
        if timer is not None and table:
            timer.merge_table(table)
        return output

    return merged


def _parse_phased_worker(site: Callable) -> Callable[[list[SciDocument]], BatchOutput]:
    """Bracket the execution site in the ``parse`` phase.

    Child phase tables merge *inside* the bracket, so ``parse`` self time
    is what the backend added on top of attributed work — dispatch,
    transfer, queueing — on every backend.
    """

    def phased(batch: list[SciDocument]) -> BatchOutput:
        with _profiling.phase("parse"):
            return site(batch)

    return phased


class ParsePipeline:
    """Facade that turns :class:`ParseRequest` objects into :class:`ParseReport` objects.

    Parameters
    ----------
    registry:
        Parser registry to resolve names against; built lazily from
        :func:`~repro.parsers.registry.default_registry` when omitted.
    engines:
        Pre-built engines by name (e.g. ``{"adaparse_ft": engine}``).
        Unknown ``adaparse_*`` names are trained on demand via
        :func:`~repro.core.engine.build_default_engine` and cached here.
    cache:
        Parse-result cache consulted when a request carries a cache policy.
        Pass a :class:`repro.cache.ParseCache` with a directory for
        cross-process persistence; when omitted, a memory-only cache is
        created on first cached run.
    """

    def __init__(
        self,
        registry: ParserRegistry | None = None,
        engines: dict[str, Parser] | None = None,
        cache: ParseCache | None = None,
    ) -> None:
        self._registry = registry
        self.engines: dict[str, Parser] = dict(engines or {})
        self._cache = cache

    @property
    def registry(self) -> ParserRegistry:
        """The parser registry (constructed on first use)."""
        if self._registry is None:
            self._registry = default_registry()
        return self._registry

    @property
    def cache(self) -> ParseCache:
        """The parse cache (a memory-only one is constructed on first use)."""
        if self._cache is None:
            self._cache = ParseCache()
        return self._cache

    # ------------------------------------------------------------------ #
    # Resolution
    # ------------------------------------------------------------------ #
    def resolve_parser(self, parser: str | Parser, alpha: float | None = None) -> Parser:
        """Resolve a parser name (or pass through an instance).

        Engine names not present in ``engines`` are trained on demand and
        cached.  An α override produces a sibling engine sharing the trained
        components, leaving the cached engine untouched; batch size is an
        execution argument, not an engine property, so no sibling is needed
        for it.
        """
        if isinstance(parser, Parser):
            resolved = parser
        elif parser in self.engines:
            resolved = self.engines[parser]
        elif parser in self.registry:
            resolved = self.registry.get(parser)
        elif parser in ENGINE_VARIANTS:
            resolved = build_default_engine(
                variant=ENGINE_VARIANTS[parser], registry=self.registry
            )
            self.engines[parser] = resolved
        else:
            known = sorted(set(self.registry.names) | set(self.engines) | set(ENGINE_VARIANTS))
            raise KeyError(f"unknown parser {parser!r}; known: {known}")
        if alpha is not None and isinstance(resolved, AdaParseEngine):
            resolved = resolved.with_overrides(alpha=alpha)
        return resolved

    def resolve_documents(self, request: ParseRequest) -> list[SciDocument]:
        """Materialise the request's document source."""
        with _profiling.phase("source.iter"):
            return list(request.resolve_source().iter_documents())

    @staticmethod
    def check_doc_type_eligibility(
        parser: Parser, documents: Iterable[SciDocument]
    ) -> Iterator[SciDocument]:
        """Stream ``documents``, failing fast on a type the parser can't take.

        Engines route around ineligible formats internally (their default
        extractor accepts every type), so this guard matters for *base*
        parser requests: sending an HTML corpus straight to a PDF-only
        recognition parser is a configuration error, not a degraded run.
        """
        for document in documents:
            if not parser.supports_doc_type(document.doc_type):
                supported = sorted(parser.supported_doc_types)
                raise ValueError(
                    f"parser {parser.name!r} does not support document type "
                    f"{document.doc_type!r} (document {document.doc_id!r}); "
                    f"supported types: {supported}. Pick an extraction parser "
                    f"or an AdaParse engine for this source"
                )
            yield document

    def _timed_type_check(
        self, resolved: Parser, documents: Iterable[SciDocument]
    ) -> Iterator[SciDocument]:
        """:meth:`check_doc_type_eligibility` with ``validate.type`` attribution.

        The check streams interleaved with batch dispatch, so per-item
        time is accumulated across ``__next__`` calls and recorded once
        at exhaustion as a leaf phase — one record per run, not per
        document.
        """
        source = self.check_doc_type_eligibility(resolved, documents)
        timer = _profiling.current_timer() if _profiling.phases_enabled() else None
        if timer is None:
            yield from source
            return
        total = 0.0
        count = 0
        while True:
            started = perf_counter()
            try:
                document = next(source)
            except StopIteration:
                total += perf_counter() - started
                break
            total += perf_counter() - started
            count += 1
            yield document
        timer.record("validate.type", total, cpu_seconds=total, calls=max(count, 1))

    # ------------------------------------------------------------------ #
    # Streaming execution
    # ------------------------------------------------------------------ #
    def _batch_worker(
        self,
        resolved: Parser,
        backend: ExecutionBackend,
        cache_policy: CachePolicy,
        cache_recorder: CacheStatsRecorder | None,
    ) -> Callable[[list[SciDocument]], BatchOutput]:
        """Compose the per-batch worker: inner parse → backend site → cache.

        The *inner* worker (a picklable bound method or
        :class:`_ParserBatchWorker`) is adapted to the backend's execution
        site first; the cache wrapper goes around the adapted worker, so
        lookups, single-flight leases, and write-backs always run in the
        parent process regardless of where parsing happens.
        """
        if isinstance(resolved, AdaParseEngine):
            inner: Callable[[list[SciDocument]], BatchOutput] = resolved.route_batch
        else:
            inner = _ParserBatchWorker(resolved)
        # Phase capture wraps the *inner* worker so the child's attribution
        # crosses thread/process boundaries as a plain table.  The remote
        # backend is the exception: its wrap_inner introspects the inner
        # callable to build a WorkerSpec, and its workers capture and ship
        # their own tables inside batch_result frames instead.
        capture = (
            _profiling.phases_enabled()
            and _profiling.current_timer() is not None
            and backend.name != "remote"
        )
        if capture:
            inner = _ChildPhasedWorker(inner)
        worker = backend.wrap_inner(inner)
        if capture:
            worker = _merge_phased_worker(worker)
        worker = _parse_phased_worker(worker)
        if cache_policy is CachePolicy.OFF:
            return worker
        return cached_batch_worker(
            self.cache,
            cache_policy,
            resolved.config_fingerprint(),
            worker,
            recorder=cache_recorder,
        )

    def _execute_batches(
        self,
        resolved: Parser,
        documents: Iterable[SciDocument],
        batch_size: int | None,
        backend: ExecutionBackend,
        cache_policy: CachePolicy = CachePolicy.OFF,
        cache_recorder: CacheStatsRecorder | None = None,
    ) -> Iterator[BatchOutput]:
        """Run an already-resolved parser over batched documents on a backend."""
        if isinstance(resolved, AdaParseEngine):
            size = batch_size or resolved.config.batch_size
        else:
            size = batch_size or DEFAULT_BATCH_SIZE
        documents = self._timed_type_check(resolved, documents)
        worker = self._batch_worker(resolved, backend, cache_policy, cache_recorder)
        worker = _traced_batch_worker(worker, backend.name)
        yield from backend.map_ordered(worker, chunked(documents, size))

    def parse_batches(
        self,
        parser: str | Parser,
        documents: Iterable[SciDocument],
        batch_size: int | None = None,
        cache_policy: CachePolicy | str = CachePolicy.OFF,
        cache_recorder: CacheStatsRecorder | None = None,
        backend: str | ExecutionBackend = "auto",
        backend_options: Mapping[str, object] | None = None,
    ) -> Iterator[BatchOutput]:
        """Stream ``(results, decisions)`` per batch on an execution backend.

        Batches are routed independently (the α cap applies within each) and
        yielded in document order; parallel backends keep a bounded window
        of batches in flight.  ``backend`` is a registry name (``serial``,
        ``thread``, ``process``, ``hpc``, or ``auto``) configured through
        ``backend_options`` (``{"n_jobs": N}`` makes ``auto`` pick the
        thread backend), or an :class:`~repro.pipeline.backends.
        ExecutionBackend` instance whose lifecycle the caller manages.
        With a cache policy other than ``off``, cached documents are
        replayed and only the misses are parsed (the α cap then applies
        to the sub-batch that actually runs); pass a
        :class:`~repro.cache.CacheStatsRecorder` to observe hits.
        """
        resolved = self.resolve_parser(parser)
        exec_backend, owned = resolve_execution(backend, backend_options)
        try:
            yield from self._execute_batches(
                resolved,
                documents,
                batch_size,
                exec_backend,
                cache_policy=CachePolicy.coerce(cache_policy),
                cache_recorder=cache_recorder,
            )
        finally:
            if owned:
                exec_backend.close()

    def iter_parse(
        self,
        parser: str | Parser,
        documents: Iterable[SciDocument],
        batch_size: int | None = None,
        cache_policy: CachePolicy | str = CachePolicy.OFF,
        cache_recorder: CacheStatsRecorder | None = None,
        backend: str | ExecutionBackend = "auto",
        backend_options: Mapping[str, object] | None = None,
    ) -> Iterator[ParseResult]:
        """Stream parse results in document order with O(batch) memory."""
        for results, _ in self.parse_batches(
            parser,
            documents,
            batch_size,
            cache_policy=cache_policy,
            cache_recorder=cache_recorder,
            backend=backend,
            backend_options=backend_options,
        ):
            yield from results

    def parse_with_telemetry(
        self,
        parser: str | Parser,
        documents: Sequence[SciDocument],
        batch_size: int | None = None,
        cache_policy: CachePolicy | str = CachePolicy.OFF,
        cache_recorder: CacheStatsRecorder | None = None,
        backend: str | ExecutionBackend = "auto",
        backend_options: Mapping[str, object] | None = None,
    ) -> tuple[list[ParseResult], list[RoutingDecision]]:
        """Parse a collection, returning results plus routing telemetry.

        The returned decision list is the authoritative telemetry (the
        engine holds no mutable routing state).  Pass a backend *instance*
        to read its
        :meth:`~repro.pipeline.backends.ExecutionBackend.stats` afterwards.
        """
        resolved = self.resolve_parser(parser)
        results: list[ParseResult] = []
        decisions: list[RoutingDecision] = []
        for batch_results, batch_decisions in self.parse_batches(
            resolved,
            documents,
            batch_size,
            cache_policy=cache_policy,
            cache_recorder=cache_recorder,
            backend=backend,
            backend_options=backend_options,
        ):
            results.extend(batch_results)
            decisions.extend(batch_decisions)
        return results, decisions

    # ------------------------------------------------------------------ #
    # The request → report entry point
    # ------------------------------------------------------------------ #
    def run(self, request: ParseRequest) -> ParseReport:
        """Execute a request end to end and report what happened.

        Each run executes under a :class:`~repro.obs.tracing.TraceContext`
        — the caller's, when one is active (the parse service propagates
        its ticket's), or a fresh root trace otherwise — so per-batch and
        cache spans always have somewhere to hang.
        """
        with _tracing.ensure_trace():
            with _tracing.span(
                "pipeline.run", attributes={"parser": str(request.parser)}
            ):
                return self._run(request)

    def _run(self, request: ParseRequest) -> ParseReport:
        # The timer goes ambient before document resolution so source
        # iteration is attributed too; an existing ambient timer (a serve
        # ticket's) is reused so the service sees one merged table.
        timer = _profiling.current_timer() if _profiling.phases_enabled() else None
        owns_timer = timer is None and _profiling.phases_enabled()
        if owns_timer:
            timer = _profiling.PhaseTimer()
        with _profiling.use_timer(timer):
            report = self._run_timed(request)
        if timer is not None:
            report.phases = timer.snapshot()
            histogram = _profiling.phase_seconds_histogram()
            for name, row in report.phases.items():
                histogram.observe(row["total_s"], phase=name)
        _metrics.counter(
            "repro_pipeline_documents_total",
            "Documents parsed by completed pipeline runs",
        ).inc(report.n_documents)
        return report

    def _run_timed(self, request: ParseRequest) -> ParseReport:
        parser = self.resolve_parser(request.parser, alpha=request.alpha)
        documents = self.resolve_documents(request)
        cache_policy = request.cache_policy
        cache_recorder = (
            CacheStatsRecorder() if cache_policy is not CachePolicy.OFF else None
        )
        backend_name, backend_options = request.resolved_backend()
        backend = create_backend(backend_name, backend_options)
        started = perf_counter()
        try:
            results, decisions = self.parse_with_telemetry(
                parser,
                documents,
                batch_size=request.batch_size,
                cache_policy=cache_policy,
                cache_recorder=cache_recorder,
                backend=backend,
            )
            if cache_policy.writes:
                # Make the run durable before reporting it: buffered shard
                # writes land with atomic write-then-rename.
                self.cache.flush()
            # Stop the clock before stats(): the HPC backend's snapshot runs
            # the simulated-campaign replay, which must not deflate the
            # reported parse throughput.
            wall_time = perf_counter() - started
            execution = backend.stats()
        finally:
            backend.close()
        usage = ResourceUsage()
        for result in results:
            usage = usage + result.usage
        return ParseReport(
            request=request,
            parser_name=parser.name,
            n_documents=len(documents),
            results=results,
            decisions=decisions,
            usage=usage,
            wall_time_seconds=wall_time,
            cache=cache_recorder.snapshot() if cache_recorder is not None else CacheStats(),
            execution=execution,
        )
