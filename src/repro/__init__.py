"""AdaParse reproduction package.

This package is a from-scratch reproduction of *AdaParse: An Adaptive Parallel
PDF Parsing and Resource Scaling Engine* (MLSys 2025).  It provides:

* :mod:`repro.documents` — a generative substrate of synthetic scientific
  documents with ground-truth text, embedded text layers and rasterised image
  layers (standing in for the paper's 25k-PDF benchmark corpus).
* :mod:`repro.parsers` — simulated PDF parsers (PyMuPDF, pypdf, Tesseract,
  GROBID, Nougat, Marker) with the paper's failure modes and cost models.
* :mod:`repro.metrics` — text quality metrics (BLEU, ROUGE, CAR, coverage,
  accepted tokens, win rate).
* :mod:`repro.ml` — a numpy ML stack (fastText-style embeddings, Transformer
  encoder, LoRA, DPO) used by the parser-selection models.
* :mod:`repro.core` — the AdaParse engine itself: hierarchical classification
  (CLS I/II/III), the α-constrained budget optimiser, and the two engine
  variants AdaParse (FT) and AdaParse (LLM).
* :mod:`repro.preferences` — a simulated human-preference study and the DPO
  preference dataset.
* :mod:`repro.hpc` — a discrete-event simulator of a Polaris-like cluster with
  a Parsl-like executor (plus fault injection and resource-scaling policies),
  used for the throughput and scalability experiments.
* :mod:`repro.datasets` — dataset assembly from parsed documents: quality
  filtering, deduplication, sharded JSONL output, and goodput accounting.
* :mod:`repro.evaluation` — the experiment harness that regenerates every
  table and figure of the paper's evaluation section.
* :mod:`repro.pipeline` — the unified parsing pipeline: a frozen
  :class:`~repro.pipeline.ParseRequest` in, a
  :class:`~repro.pipeline.ParseReport` (results, routing telemetry,
  resource usage, throughput) out.  The CLI, dataset builder, and
  evaluation harness are all built on this facade.
* :mod:`repro.serve` — the long-running parse service: many concurrent
  requests multiplexed onto one shared backend and one shared cache,
  with priority/fair-share admission and streaming progress events.
* :mod:`repro.gateway` — the networked submission frontend: remote
  clients submit requests over TCP (auth tokens, quotas, backpressure)
  onto one shared parse service, streaming progress events back live.
* :mod:`repro.obs` — the observability layer: a process-wide metrics
  registry (Prometheus-style exposition), distributed tracing with span
  trees across gateway/service/backend/worker, and structured logging
  for the daemons.

The two-line tour::

    import repro
    report = repro.ParsePipeline().run(repro.ParseRequest(parser="pymupdf", source="synthetic:50"))

Top-level names are resolved lazily (PEP 562) so that importing :mod:`repro`
stays cheap and does not pull in the full ML/HPC stacks.
"""

from __future__ import annotations

__version__ = "1.0.0"

#: Public name → "module:attribute" map resolved on first access.
_LAZY_EXPORTS: dict[str, str] = {
    "AdaParseConfig": "repro.core.config:AdaParseConfig",
    "AdaParseFT": "repro.core.engine:AdaParseFT",
    "AdaParseLLM": "repro.core.engine:AdaParseLLM",
    "build_default_engine": "repro.core.engine:build_default_engine",
    "CachePolicy": "repro.cache:CachePolicy",
    "CacheStats": "repro.cache:CacheStats",
    "ParseCache": "repro.cache:ParseCache",
    "CorpusConfig": "repro.documents.corpus:CorpusConfig",
    "build_corpus": "repro.documents.corpus:build_corpus",
    "Corpus": "repro.documents.corpus:Corpus",
    "SciDocument": "repro.documents.document:SciDocument",
    "DatasetBuildConfig": "repro.datasets.assembly:DatasetBuildConfig",
    "DatasetBuilder": "repro.datasets.assembly:DatasetBuilder",
    "EvaluationHarness": "repro.evaluation.harness:EvaluationHarness",
    "ParserRegistry": "repro.parsers.registry:ParserRegistry",
    "default_registry": "repro.parsers.registry:default_registry",
    "ExecutionBackend": "repro.pipeline.backends.base:ExecutionBackend",
    "ExecutionStats": "repro.pipeline.backends.base:ExecutionStats",
    "GatewayClient": "repro.gateway.client:GatewayClient",
    "GatewayServer": "repro.gateway.server:GatewayServer",
    "gateway": "repro.gateway",
    "obs": "repro.obs",
    "ParsePipeline": "repro.pipeline.pipeline:ParsePipeline",
    "ParseReport": "repro.pipeline.report:ParseReport",
    "ParseRequest": "repro.pipeline.request:ParseRequest",
    "ParseService": "repro.serve.service:ParseService",
    "RoutingDecision": "repro.core.engine:RoutingDecision",
    "RoutingSummary": "repro.core.engine:RoutingSummary",
    "ServiceConfig": "repro.serve.service:ServiceConfig",
    "serve": "repro.serve",
}

__all__ = sorted(_LAZY_EXPORTS) + ["__version__"]


def __getattr__(name: str):
    """Resolve lazily exported public names (delegates to repro.utils.lazy)."""
    from repro.utils.lazy import resolve_lazy

    return resolve_lazy(__name__, globals(), _LAZY_EXPORTS, name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
