"""Small wall-clock timing helper used by examples and the CLI."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class WallTimer:
    """Accumulates elapsed wall-clock time across named sections.

    Example
    -------
    >>> timer = WallTimer()
    >>> with timer.section("parse"):
    ...     pass
    >>> "parse" in timer.totals
    True
    """

    totals: dict[str, float] = field(default_factory=dict)

    class _Section:
        def __init__(self, timer: "WallTimer", name: str) -> None:
            self._timer = timer
            self._name = name
            self._start = 0.0

        def __enter__(self) -> "WallTimer._Section":
            self._start = time.perf_counter()
            return self

        def __exit__(self, *exc: object) -> None:
            elapsed = time.perf_counter() - self._start
            self._timer.totals[self._name] = self._timer.totals.get(self._name, 0.0) + elapsed

    def section(self, name: str) -> "WallTimer._Section":
        """Context manager accumulating elapsed time under ``name``."""
        return WallTimer._Section(self, name)

    def summary(self) -> str:
        """Human-readable one-line-per-section summary."""
        return "\n".join(f"{name}: {secs:.3f}s" for name, secs in sorted(self.totals.items()))
