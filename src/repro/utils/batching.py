"""Batching helpers shared by the engine and the pipeline."""

from __future__ import annotations

from typing import Iterable, Iterator, TypeVar

_T = TypeVar("_T")


def chunked(items: Iterable[_T], size: int) -> Iterator[list[_T]]:
    """Split an iterable into consecutive lists of at most ``size`` items."""
    if size < 1:
        raise ValueError("batch size must be positive")
    batch: list[_T] = []
    for item in items:
        batch.append(item)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch
