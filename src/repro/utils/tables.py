"""Lightweight tabular report rendering.

The evaluation harness produces the paper's tables as lists of rows; this
module renders them as aligned plain-text/markdown tables for the CLI, the
benchmark harness output, and ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    if value is None:
        return "–"
    return str(value)


@dataclass
class Table:
    """A simple column-ordered table with a title.

    Attributes
    ----------
    title:
        Human-readable caption (e.g. ``"Table 1: Accuracy on born-digital PDFs"``).
    columns:
        Ordered column names.
    rows:
        Each row is a mapping from column name to value; missing values render
        as an en-dash like the paper's tables.
    """

    title: str
    columns: Sequence[str]
    rows: list[dict[str, object]] = field(default_factory=list)

    def add_row(self, row: Mapping[str, object]) -> None:
        """Append a row (missing columns are allowed)."""
        self.rows.append(dict(row))

    def column(self, name: str) -> list[object]:
        """Return the values of one column across all rows."""
        return [row.get(name) for row in self.rows]

    def sort_by(self, name: str, reverse: bool = False) -> "Table":
        """Return a copy of the table sorted by a column."""
        sortable = sorted(
            self.rows,
            key=lambda r: (r.get(name) is None, r.get(name)),
            reverse=reverse,
        )
        return Table(title=self.title, columns=list(self.columns), rows=list(sortable))

    def to_markdown(self, precision: int = 1) -> str:
        """Render the table as GitHub-flavoured markdown."""
        return format_table(self, precision=precision, markdown=True)

    def to_text(self, precision: int = 1) -> str:
        """Render the table as aligned plain text."""
        return format_table(self, precision=precision, markdown=False)

    def as_dicts(self) -> list[dict[str, object]]:
        """Return rows as plain dictionaries (deep-copied)."""
        return [dict(r) for r in self.rows]


def format_table(table: Table, precision: int = 1, markdown: bool = False) -> str:
    """Render a :class:`Table` as text.

    Parameters
    ----------
    table:
        The table to render.
    precision:
        Decimal places used for floating point cells.
    markdown:
        If true, emit a GitHub-flavoured markdown table, else aligned text.
    """
    cols = list(table.columns)
    header = [str(c) for c in cols]
    body = [[_format_cell(row.get(c), precision) for c in cols] for row in table.rows]
    widths = [
        max(len(header[j]), *(len(r[j]) for r in body)) if body else len(header[j])
        for j in range(len(cols))
    ]
    lines: list[str] = []
    if table.title:
        lines.append(table.title)
    if markdown:
        lines.append("| " + " | ".join(h.ljust(w) for h, w in zip(header, widths)) + " |")
        lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
        for r in body:
            lines.append("| " + " | ".join(c.ljust(w) for c, w in zip(r, widths)) + " |")
    else:
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def tables_to_markdown(tables: Iterable[Table], precision: int = 1) -> str:
    """Render several tables separated by blank lines."""
    return "\n\n".join(t.to_markdown(precision=precision) for t in tables)
