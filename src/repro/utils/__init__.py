"""Shared utilities: deterministic seeding, hashing, text helpers, reporting."""

from __future__ import annotations

from repro.utils.rng import derive_seed, rng_from, spawn_rng
from repro.utils.hashing import stable_hash, stable_hash_bytes
from repro.utils.tables import Table, format_table
from repro.utils.timer import WallTimer

__all__ = [
    "derive_seed",
    "rng_from",
    "spawn_rng",
    "stable_hash",
    "stable_hash_bytes",
    "Table",
    "format_table",
    "WallTimer",
]
