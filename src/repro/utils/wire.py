"""Length-prefixed NDJSON framing shared by the cluster and gateway wires.

Every message on a repro network connection is one JSON object, encoded
as a single UTF-8 line and framed by an ASCII decimal byte-length
prefix::

    <decimal length of body>\\n
    {"type": "...", ...}\\n

The prefix makes framing robust (a reader never has to guess where a
message ends, even mid-recovery), while the NDJSON body keeps the stream
greppable — ``nc`` into a daemon and you can read the conversation.

This module is the single home of the framing machinery:
:func:`encode_message`, :class:`MessageChannel` (thread-safe framed
sends, single-reader receives, byte counters in both directions), and
the oversized-frame refusal (:class:`MessageTooLarge` at send time,
:class:`ProtocolError` at receive time).  :mod:`repro.cluster.protocol`
and :mod:`repro.gateway.protocol` both build their message vocabularies
on top of it, so the two wires cannot drift apart on framing.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any, Mapping

#: Upper bound on one message body (a guard against garbage prefixes, not
#: a practical limit: a 64 MiB shard would be ~1000 dense documents).
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


class ProtocolError(RuntimeError):
    """The peer sent something that is not a valid framed message."""


class MessageTooLarge(ProtocolError):
    """A message exceeds the channel's frame limit.

    Raised at *send* time, before any bytes hit the socket, so the caller
    can fail just the offending message — the receiving side would
    otherwise reject the frame and tear the whole connection down.
    """


def encode_message(message: Mapping[str, Any]) -> bytes:
    """Frame one message: decimal length prefix + NDJSON body."""
    body = json.dumps(message, ensure_ascii=False, separators=(",", ":")).encode(
        "utf-8"
    ) + b"\n"
    return str(len(body)).encode("ascii") + b"\n" + body


class MessageChannel:
    """One framed connection: thread-safe sends, single-reader receives.

    Sends may come from several threads (result slots, heartbeat timers,
    event streamers) and are serialised under a lock; receives must stay
    on one reader thread.  The channel counts bytes in both directions —
    that is the ``*_bytes_*`` telemetry the cluster backend and the
    gateway's ``STATS`` message report.

    ``max_message_bytes`` defaults to the module-level
    :data:`MAX_MESSAGE_BYTES` **at call time** (so tests may patch the
    module global); pass an explicit limit to pin a channel down.
    """

    def __init__(
        self, sock: socket.socket, max_message_bytes: int | None = None
    ) -> None:
        self._sock = sock
        self._reader = sock.makefile("rb")
        self._send_lock = threading.Lock()
        self._closed = False
        self._max_message_bytes = max_message_bytes
        self.bytes_sent = 0
        self.bytes_received = 0
        #: Framed size of the most recently received message; lets a
        #: server enforce per-request size quotas without re-encoding.
        self.last_frame_bytes = 0

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def max_message_bytes(self) -> int:
        if self._max_message_bytes is not None:
            return self._max_message_bytes
        return MAX_MESSAGE_BYTES

    def send(self, message: Mapping[str, Any]) -> int:
        """Send one message; returns the framed byte count.

        Raises :class:`MessageTooLarge` — before writing anything — for a
        frame the peer's :meth:`recv` would refuse.
        """
        frame = encode_message(message)
        if len(frame) > self.max_message_bytes:
            raise MessageTooLarge(
                f"{message.get('type', 'message')} frame is {len(frame)} bytes, "
                f"over the {self.max_message_bytes}-byte protocol limit; use a "
                f"smaller batch_size"
            )
        with self._send_lock:
            if self._closed:
                raise ProtocolError("channel is closed")
            self._sock.sendall(frame)
            self.bytes_sent += len(frame)
        return len(frame)

    def recv(self) -> dict[str, Any] | None:
        """Read one message; ``None`` on a clean EOF.

        Raises :class:`ProtocolError` on a malformed frame (bad length
        prefix, truncated body, invalid JSON, or a non-object payload).
        """
        prefix = self._reader.readline(32)
        if not prefix:
            return None
        if not prefix.endswith(b"\n"):
            raise ProtocolError(f"unterminated length prefix {prefix!r}")
        try:
            length = int(prefix.strip())
        except ValueError as exc:
            raise ProtocolError(f"bad length prefix {prefix!r}") from exc
        if not 0 < length <= self.max_message_bytes:
            raise ProtocolError(f"message length {length} out of bounds")
        body = self._reader.read(length)
        if len(body) != length:
            raise ProtocolError(
                f"truncated message: expected {length} bytes, got {len(body)}"
            )
        self.last_frame_bytes = len(prefix) + len(body)
        self.bytes_received += self.last_frame_bytes
        try:
            message = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"message body is not valid JSON: {exc}") from exc
        if not isinstance(message, dict) or "type" not in message:
            raise ProtocolError("message must be a JSON object with a 'type'")
        return message

    def close(self) -> None:
        """Close the underlying socket (idempotent; unblocks the reader)."""
        with self._send_lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
