"""Shared PEP 562 lazy-export machinery for package ``__init__`` modules.

Several packages (:mod:`repro`, :mod:`repro.pipeline`,
:mod:`repro.pipeline.backends`) expose a flat public API over heavy
submodules (the ML stack, the HPC simulator) and must stay cheap to
import.  Each declares a ``{name: "module:attribute"}`` map and a thin
PEP 562 hook that delegates here::

    _LAZY_EXPORTS = {"ParsePipeline": "repro.pipeline.pipeline:ParsePipeline"}
    __all__ = sorted(_LAZY_EXPORTS)

    def __getattr__(name):
        from repro.utils.lazy import resolve_lazy
        return resolve_lazy(__name__, globals(), _LAZY_EXPORTS, name)

The helper import happens inside the hook (first attribute access, which
pays for heavy modules anyway), so merely importing the package stays
free of it.  Resolved names are cached into the module's globals, so each
attribute pays the import exactly once.
"""

from __future__ import annotations

from typing import Any, Mapping


def resolve_lazy(
    module_name: str,
    module_globals: dict[str, Any],
    exports: Mapping[str, str],
    name: str,
) -> Any:
    """Resolve one lazily exported name, caching it into the module globals.

    A target of ``"module:attribute"`` resolves to the attribute; a bare
    ``"module"`` target (no colon) resolves to the module object itself,
    which lets a package lazily re-export a whole subpackage (e.g.
    ``repro.serve``) without importing it at package-import time.
    """
    target = exports.get(name)
    if target is None:
        raise AttributeError(f"module {module_name!r} has no attribute {name!r}")
    target_module, _, attribute = target.partition(":")
    import importlib

    module = importlib.import_module(target_module)
    value = getattr(module, attribute) if attribute else module
    module_globals[name] = value
    return value
