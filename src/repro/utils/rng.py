"""Deterministic random-number-generator derivation.

Every stochastic component in the reproduction (document generation, parser
failure injection, annotator noise, scheduler jitter) draws from a
:class:`numpy.random.Generator` derived from a *root seed* plus a tuple of
string/integer qualifiers.  This makes every result a pure function of the
configuration: the corruption a parser applies to document ``i`` does not
depend on how many documents were generated before it or on thread timing.
"""

from __future__ import annotations

import numpy as np

from repro.utils.hashing import stable_hash


def derive_seed(root_seed: int, *qualifiers: object) -> int:
    """Derive a child seed from a root seed and a path of qualifiers."""
    return stable_hash(int(root_seed), *qualifiers) % (2**63 - 1)


def rng_from(root_seed: int, *qualifiers: object) -> np.random.Generator:
    """Create a generator seeded from ``root_seed`` and a qualifier path."""
    return np.random.default_rng(derive_seed(root_seed, *qualifiers))


def spawn_rng(rng: np.random.Generator, *qualifiers: object) -> np.random.Generator:
    """Spawn an independent child generator from an existing generator.

    The child depends on the parent's current state *and* the qualifiers, so
    repeated spawns with different qualifiers are independent streams.
    """
    base = int(rng.integers(0, 2**62))
    return np.random.default_rng(derive_seed(base, *qualifiers))
