"""Stable, process-independent hashing helpers.

Python's built-in :func:`hash` is salted per process (``PYTHONHASHSEED``), so it
cannot be used to derive reproducible random seeds or sharding decisions.  The
helpers here are based on BLAKE2b and are stable across processes, platforms,
and Python versions.
"""

from __future__ import annotations

import hashlib
from typing import Iterable


def stable_hash_bytes(*parts: bytes, digest_size: int = 8) -> int:
    """Hash byte strings into a non-negative integer.

    Parameters
    ----------
    parts:
        Byte strings combined (order-sensitive) into a single digest.
    digest_size:
        Number of digest bytes (8 gives a 64-bit value).
    """
    h = hashlib.blake2b(digest_size=digest_size)
    for part in parts:
        # Length-prefix each part so ("ab","c") and ("a","bc") differ.
        h.update(len(part).to_bytes(8, "little"))
        h.update(part)
    return int.from_bytes(h.digest(), "little")


def stable_hash(*parts: object, digest_size: int = 8) -> int:
    """Hash arbitrary (stringifiable) objects into a non-negative integer.

    Each part is converted with ``str()`` and encoded as UTF-8.  Intended for
    seeds and bucketing, not cryptography.
    """
    encoded = [str(p).encode("utf-8") for p in parts]
    return stable_hash_bytes(*encoded, digest_size=digest_size)


def stable_hash_hex(*parts: object, digest_size: int = 16) -> str:
    """Hash arbitrary (stringifiable) objects into a fixed-width hex string.

    The hex form is what cache keys and config fingerprints are built from:
    it is filesystem- and JSON-friendly and sorts lexicographically.
    """
    return format(stable_hash(*parts, digest_size=digest_size), f"0{digest_size * 2}x")


def hash_buffers(*buffers: bytes, digest_size: int = 16) -> str:
    """Hex digest over raw byte buffers (e.g. numpy array ``tobytes()``).

    Used to fingerprint trained model weights: pass each array's dtype/shape
    as part of the surrounding context and its contiguous bytes here.
    """
    return format(stable_hash_bytes(*buffers, digest_size=digest_size), f"0{digest_size * 2}x")


def bucket(key: object, n_buckets: int, salt: str = "") -> int:
    """Deterministically map ``key`` to a bucket in ``[0, n_buckets)``."""
    if n_buckets <= 0:
        raise ValueError(f"n_buckets must be positive, got {n_buckets}")
    return stable_hash(salt, key) % n_buckets


def stable_choice_index(key: object, weights: Iterable[float], salt: str = "") -> int:
    """Pick an index proportionally to ``weights`` using a stable hash of ``key``.

    The same key and salt always select the same index; different salts act as
    independent draws.
    """
    ws = list(weights)
    if not ws:
        raise ValueError("weights must be non-empty")
    total = float(sum(ws))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    # 53 bits of hash → uniform float in [0, 1).
    u = (stable_hash(salt, key) % (1 << 53)) / float(1 << 53)
    acc = 0.0
    for i, w in enumerate(ws):
        acc += w / total
        if u < acc:
            return i
    return len(ws) - 1
