"""Live cluster membership: the registry and the join/leave listener.

The v1 cluster takes its worker list at construction and only ever
shrinks it (deaths).  This module adds the two pieces that make
membership *live* on a running coordinator:

* :class:`MembershipRegistry` — the coordinator's authoritative record
  of every worker it has ever talked to: how it arrived (``fixed`` list,
  mid-run ``join``, or ``autoscaler``), its advertised capability tags,
  and its current state (``alive`` → ``draining`` → ``left``, or
  ``dead``).  The registry is bookkeeping only — shard placement still
  lives in the coordinator — which keeps it trivially thread-safe.
* :class:`MembershipListener` — a small TCP listener speaking the same
  length-prefixed NDJSON wire as the cluster protocol.  A starting
  ``worker --join`` daemon announces itself with a ``join`` message; the
  listener dials the worker back through the coordinator's ordinary
  connect path (handshake, reader thread, rendezvous integration), so a
  joined worker is indistinguishable from a fixed-list one once
  admitted.  ``leave`` asks the coordinator to drain a worker, and
  ``status`` answers with the coordinator's membership/counters snapshot
  (what ``adaparse-repro cluster status`` prints).

Backward compatibility is capability-flagged, not version-bumped: the
coordinator's ``hello`` advertises ``capabilities: {"membership": true}``
and workers advertise the same in ``hello_ack``; v1 peers ignore the
unknown key and keep working as a fixed-list cluster.
"""

from __future__ import annotations

import socket
import threading
from dataclasses import dataclass, field
from time import monotonic
from typing import TYPE_CHECKING, Any, Mapping

from repro.cluster import protocol
from repro.cluster.protocol import MessageChannel, ProtocolError
from repro.obs import metrics as _metrics
from repro.obs.logging import get_logger, log_event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.coordinator import ClusterCoordinator

#: Thread-name prefix of membership listener threads.
MEMBERSHIP_THREAD_PREFIX = "repro-elastic-membership"

_LOG = get_logger("elastic.membership")

_MEMBERSHIP_EVENTS = _metrics.counter(
    "repro_elastic_membership_events_total",
    "Cluster membership transitions (joined/left/died).",
    ("event",),
)
_MEMBERSHIP_WORKERS = _metrics.gauge(
    "repro_elastic_workers",
    "Workers per membership state on the coordinator.",
    ("state",),
)

#: Worker lifecycle states tracked by the registry.
STATES = ("alive", "draining", "left", "dead")


@dataclass
class WorkerRecord:
    """One worker's membership history on a coordinator."""

    worker_id: str
    address: str
    source: str = "fixed"  # fixed | join | autoscaler
    tags: dict[str, Any] = field(default_factory=dict)
    state: str = "alive"
    joined_at: float = field(default_factory=monotonic)
    ended_at: float | None = None

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "worker_id": self.worker_id,
            "address": self.address,
            "source": self.source,
            "tags": dict(self.tags),
            "state": self.state,
        }


class MembershipRegistry:
    """Thread-safe record of every worker a coordinator has admitted."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: dict[str, WorkerRecord] = {}
        self.counters = {"joined": 0, "left": 0, "died": 0}

    def record_join(
        self,
        worker_id: str,
        address: str,
        *,
        source: str = "fixed",
        tags: Mapping[str, Any] | None = None,
    ) -> WorkerRecord:
        record = WorkerRecord(
            worker_id=worker_id,
            address=address,
            source=source,
            tags=dict(tags or {}),
        )
        with self._lock:
            self._records[worker_id] = record
            self.counters["joined"] += 1
        _MEMBERSHIP_EVENTS.inc(event="joined")
        self._export_states()
        return record

    def _transition(self, worker_id: str, state: str) -> WorkerRecord | None:
        with self._lock:
            record = self._records.get(worker_id)
            if record is None or record.state in ("left", "dead"):
                return None
            record.state = state
            if state in ("left", "dead"):
                record.ended_at = monotonic()
                self.counters["left" if state == "left" else "died"] += 1
        return record

    def mark_draining(self, worker_id: str) -> None:
        self._transition(worker_id, "draining")
        self._export_states()

    def record_leave(self, worker_id: str) -> None:
        if self._transition(worker_id, "left") is not None:
            _MEMBERSHIP_EVENTS.inc(event="left")
        self._export_states()

    def record_death(self, worker_id: str) -> None:
        if self._transition(worker_id, "dead") is not None:
            _MEMBERSHIP_EVENTS.inc(event="died")
        self._export_states()

    def get(self, worker_id: str) -> WorkerRecord | None:
        with self._lock:
            return self._records.get(worker_id)

    def tags_of(self, worker_id: str) -> dict[str, Any]:
        with self._lock:
            record = self._records.get(worker_id)
            return dict(record.tags) if record is not None else {}

    def snapshot(self) -> list[dict[str, Any]]:
        with self._lock:
            return [record.to_json_dict() for record in self._records.values()]

    def states(self) -> dict[str, int]:
        counts = dict.fromkeys(STATES, 0)
        with self._lock:
            for record in self._records.values():
                counts[record.state] = counts.get(record.state, 0) + 1
        return counts

    def _export_states(self) -> None:
        for state, count in self.states().items():
            _MEMBERSHIP_WORKERS.set(count, state=state)


class MembershipListener:
    """Accept ``join``/``leave``/``status`` announcements for a coordinator.

    One short request-response conversation per connection; the admitted
    worker's actual shard traffic flows over the coordinator-dialled link,
    not this socket.  Start with :meth:`start`; ``port=0`` picks a free
    port (read :attr:`address` back).
    """

    def __init__(
        self,
        coordinator: "ClusterCoordinator",
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.coordinator = coordinator
        self._host = host
        self._requested_port = port
        self._listener: socket.socket | None = None
        self._bound_port: int | None = None
        self._accept_thread: threading.Thread | None = None
        self._stopped = threading.Event()

    @property
    def port(self) -> int:
        if self._bound_port is None:
            raise RuntimeError("membership listener is not started")
        return self._bound_port

    @property
    def address(self) -> str:
        return f"{self._host}:{self.port}"

    def start(self) -> "MembershipListener":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._requested_port))
        listener.listen(8)
        self._listener = listener
        self._bound_port = listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"{MEMBERSHIP_THREAD_PREFIX}-accept-{self.port}",
            daemon=True,
        )
        self._accept_thread.start()
        log_event(_LOG, "info", "membership_listening", host=self._host, port=self.port)
        return self

    def stop(self) -> None:
        self._stopped.set()
        if self._listener is not None:
            # shutdown() before close(): closing a listening socket does
            # not wake a thread blocked in accept() on Linux, shutdown
            # does (the accept fails immediately with EINVAL).
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "MembershipListener":
        return self.start() if self._bound_port is None else self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopped.is_set():
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            thread = threading.Thread(
                target=self._serve_one,
                args=(MessageChannel(sock),),
                name=f"{MEMBERSHIP_THREAD_PREFIX}-conn",
                daemon=True,
            )
            thread.start()

    def _serve_one(self, channel: MessageChannel) -> None:
        try:
            message = channel.recv()
            if message is None:
                return
            reply = self._handle(message)
            channel.send(reply)
        except (OSError, ProtocolError, ValueError):
            pass  # announcement sockets are best-effort; the peer retries
        finally:
            channel.close()

    def _handle(self, message: Mapping[str, Any]) -> dict[str, Any]:
        kind = message.get("type")
        if kind == protocol.JOIN:
            return self._on_join(message)
        if kind == protocol.LEAVE:
            return self._on_leave(message)
        if kind == protocol.STATUS:
            return {"type": protocol.STATUS_RESULT, **self.coordinator.status()}
        return {
            "type": protocol.ERROR,
            "message": f"unexpected membership message type {kind!r}",
        }

    def _on_join(self, message: Mapping[str, Any]) -> dict[str, Any]:
        from repro.cluster.coordinator import ClusterError

        version = int(message.get("protocol", -1))
        if version != protocol.PROTOCOL_VERSION:
            return {
                "type": protocol.JOIN_ACK,
                "accepted": False,
                "message": f"protocol version mismatch: coordinator speaks "
                f"{protocol.PROTOCOL_VERSION}, worker sent {version}",
            }
        address = str(message.get("address", ""))
        try:
            worker_id = self.coordinator.add_worker(address, source="join")
        except (ClusterError, OSError, ProtocolError) as exc:
            log_event(
                _LOG, "warning", "join_refused", address=address, reason=str(exc)
            )
            return {"type": protocol.JOIN_ACK, "accepted": False, "message": str(exc)}
        log_event(_LOG, "info", "worker_joined", worker=worker_id, address=address)
        return {
            "type": protocol.JOIN_ACK,
            "accepted": True,
            "worker_id": worker_id,
            "protocol": protocol.PROTOCOL_VERSION,
        }

    def _on_leave(self, message: Mapping[str, Any]) -> dict[str, Any]:
        from repro.cluster.coordinator import ClusterError

        worker_id = str(message.get("worker_id", ""))
        try:
            self.coordinator.remove_worker(worker_id)
        except ClusterError as exc:
            return {"type": protocol.LEAVE_ACK, "accepted": False, "message": str(exc)}
        log_event(_LOG, "info", "worker_leaving", worker=worker_id)
        return {"type": protocol.LEAVE_ACK, "accepted": True, "worker_id": worker_id}
