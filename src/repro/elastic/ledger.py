"""The shard ledger: a persisted record of completed shards for resume.

A campaign over a cluster is a sequence of shards; when the coordinator
process is killed mid-run, everything already parsed is lost with it
(worker-side caches help, but only cache-carrying workers, and only for
the parse itself — the campaign still re-dispatches every shard).  The
:class:`ShardLedger` closes that gap: the coordinator records every
completed shard — keyed by the shard's content-addressed *placement key*
crossed with the spec's ``config_fingerprint()``, the same two
ingredients the cache layer keys on — and a re-run over the same corpus
replays completed shards from the ledger without dispatching them at
all.  Results are **exactly-once across restarts**: a shard is either
replayed (it completed before the kill) or dispatched (it did not), never
both.

Durability follows :mod:`repro.cache.disk`:

* every completed shard is *appended* to ``ledger.jsonl`` and fsynced
  before the coordinator considers it recorded — a kill at any instant
  loses at most the shard being written, never a previously recorded one;
* full rewrites (:meth:`ShardLedger.compact`) go through the same
  write-to-``*.tmp-{pid}-{tid}`` / fsync / :func:`os.replace` dance the
  disk cache uses, so readers never observe a half-written file;
* reads are corruption-tolerant line by line: a torn final line (the
  kill landed mid-append) is skipped, not fatal.

The ledger is deliberately *not* the cache: it keys whole shards, lives
with the campaign (one directory per campaign), and records routing
decisions alongside results so a resumed report is byte-identical to an
uninterrupted one.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.obs import metrics as _metrics
from repro.obs.logging import get_logger, log_event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import RoutingDecision
    from repro.parsers.base import ParseResult

_LOG = get_logger("elastic.ledger")

_LEDGER_FILENAME = "ledger.jsonl"

_LEDGER_SHARDS = _metrics.counter(
    "repro_elastic_ledger_shards_total",
    "Shards recorded to / replayed from the campaign ledger.",
    ("outcome",),
)


def ledger_key(placement_key: str, fingerprint: str) -> str:
    """The ledger identity of one shard.

    The placement key is content-addressed and order-sensitive over the
    shard's documents, and the fingerprint pins the parser configuration
    — together they identify "this exact batch parsed this exact way",
    which is what makes replay safe across coordinator restarts (and
    what makes a changed corpus or parser config miss the ledger and
    re-run, as it must).
    """
    return f"{placement_key}:{fingerprint}"


class ShardLedger:
    """Append-durable record of completed shards (see the module docstring).

    Parameters
    ----------
    directory:
        The campaign's ledger directory; created on first write.  Safe to
        point several sequential runs at — that is the whole point — but
        not designed for two *concurrent* coordinators (last writer wins
        per shard, which is still exactly-once for readers, just wasteful).
    """

    def __init__(self, directory: "str | os.PathLike[str]") -> None:
        self.directory = Path(directory)
        self.path = self.directory / _LEDGER_FILENAME
        self._lock = threading.Lock()
        self._entries: dict[str, dict[str, Any]] = {}
        self._loaded_entries = 0
        self._load()

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def _load(self) -> None:
        """Read the ledger file, skipping torn or corrupt lines."""
        if not self.path.exists():
            return
        skipped = 0
        try:
            raw = self.path.read_bytes()
        except OSError:
            return
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                key = str(record["key"])
                record["results"]  # noqa: B018 - presence check
                record["decisions"]
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                skipped += 1  # torn append from a kill mid-write
                continue
            self._entries[key] = record
        self._loaded_entries = len(self._entries)
        if skipped:
            log_event(
                _LOG, "warning", "ledger_lines_skipped",
                path=str(self.path), skipped=skipped,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def loaded_entries(self) -> int:
        """Entries found on disk at open time (what a resume can skip)."""
        return self._loaded_entries

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    def completed_output(
        self, placement_key: str, fingerprint: str
    ) -> "tuple[list[ParseResult], list[RoutingDecision]] | None":
        """Rehydrate one completed shard's output, or ``None`` if absent."""
        from repro.cluster.protocol import decision_from_dict
        from repro.parsers.base import ParseResult

        with self._lock:
            record = self._entries.get(ledger_key(placement_key, fingerprint))
        if record is None:
            return None
        results = [ParseResult.from_json_dict(item) for item in record["results"]]
        decisions = [decision_from_dict(item) for item in record["decisions"]]
        _LEDGER_SHARDS.inc(outcome="replayed")
        return results, decisions

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def record(
        self,
        placement_key: str,
        fingerprint: str,
        results: Iterable[Mapping[str, Any]],
        decisions: Iterable[Mapping[str, Any]],
        *,
        worker_id: str | None = None,
    ) -> None:
        """Durably append one completed shard (results as wire/JSON dicts).

        The append is flushed and fsynced before returning: once the
        coordinator resolves the shard's future, a kill cannot lose it.
        """
        record = {
            "key": ledger_key(placement_key, fingerprint),
            "placement_key": placement_key,
            "fingerprint": fingerprint,
            "worker_id": worker_id,
            "results": list(results),
            "decisions": list(decisions),
        }
        line = json.dumps(record, sort_keys=True).encode("utf-8") + b"\n"
        with self._lock:
            self.directory.mkdir(parents=True, exist_ok=True)
            with self.path.open("ab") as handle:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())
            self._entries[record["key"]] = record
        _LEDGER_SHARDS.inc(outcome="recorded")

    def compact(self) -> int:
        """Rewrite the ledger atomically, dropping superseded duplicates.

        Appends may record the same key more than once across runs (the
        in-memory map keeps the latest); compaction writes one line per
        key via the disk cache's write-then-rename idiom.  Returns the
        number of entries written.
        """
        with self._lock:
            entries = list(self._entries.values())
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_name(
                f"{self.path.name}.tmp-{os.getpid()}-{threading.get_ident()}"
            )
            with tmp.open("wb") as handle:
                for record in entries:
                    handle.write(json.dumps(record, sort_keys=True).encode("utf-8"))
                    handle.write(b"\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        return len(entries)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "path": str(self.path),
                "entries": len(self._entries),
                "loaded_entries": self._loaded_entries,
            }
