"""The autoscaler: a policy loop that grows and shrinks a live cluster.

The coordinator already publishes the two signals that matter — queued
shard backlog and per-batch latency — through its counters and
``ExecutionStats.extra``; the :class:`Autoscaler` samples them on a
period, feeds each snapshot through the pure
:class:`~repro.elastic.policy.AutoscalerPolicy` (sustain windows,
min/max bounds, cooldowns), and acts on the decision through a
*launcher*:

* :class:`SubprocessLauncher` spawns real ``adaparse-repro worker``
  processes (the same ready-line handshake ``cluster`` uses) and
  registers them on the running coordinator via
  :meth:`~repro.cluster.coordinator.ClusterCoordinator.add_worker`; a
  drain goes through the coordinator's graceful ``remove_worker`` path
  before the process is terminated.
* Tests substitute any object with ``spawn()``/``drain()``/``close()``
  — the loop never touches processes directly.

Determinism: the clock is injected (``clock=`` callable) and one
decision step is a public method (:meth:`Autoscaler.tick`), so tests
drive the whole policy with a fake clock and no thread.  The background
thread exists only for production use (:meth:`start`/:meth:`stop`).

The autoscaler only ever drains workers *it* launched (most recent
first) — fixed-list and ``--join`` workers are somebody else's capacity.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from pathlib import Path
from time import monotonic
from typing import TYPE_CHECKING, Any, Callable

from repro.elastic.policy import AutoscalerPolicy, ScalingSignals
from repro.obs import metrics as _metrics
from repro.obs.logging import get_logger, log_event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.coordinator import ClusterCoordinator

#: Thread-name prefix of the autoscaler loop thread.
AUTOSCALER_THREAD_PREFIX = "repro-elastic-autoscaler"

_LOG = get_logger("elastic.autoscaler")

_SCALE_EVENTS = _metrics.counter(
    "repro_elastic_scale_events_total",
    "Autoscaler scale actions taken (direction=up/down).",
    ("direction",),
)


def signals_from_coordinator(coordinator: "ClusterCoordinator") -> ScalingSignals:
    """Sample one :class:`ScalingSignals` snapshot from a live coordinator."""
    queue_depth = 0
    in_flight = 0
    alive = 0
    for worker in coordinator.workers():
        if not worker.get("alive") or worker.get("draining"):
            continue
        alive += 1
        queue_depth += int(worker.get("queued", 0))
        in_flight += int(worker.get("in_flight", 0))
    return ScalingSignals(
        queue_depth=queue_depth,
        in_flight=in_flight,
        workers_alive=alive,
        batch_latency_seconds=float(coordinator.last_batch_seconds),
    )


class SubprocessLauncher:
    """Spawn/drain local ``adaparse-repro worker`` processes for a coordinator.

    Mirrors the ``cluster`` command's spawn path: ``--port 0``, the JSON
    ready line for the bound address, and ``PYTHONPATH`` carrying this
    checkout.  Each spawned worker is registered on the coordinator
    (source ``"autoscaler"``) before :meth:`spawn` returns.
    """

    def __init__(
        self,
        coordinator: "ClusterCoordinator",
        *,
        worker_backend: str = "serial",
        worker_jobs: int = 1,
        cache_dir: "str | None" = None,
        name_prefix: str = "autoscale-worker",
        spawn_timeout: float = 30.0,
    ) -> None:
        self.coordinator = coordinator
        self.worker_backend = worker_backend
        self.worker_jobs = worker_jobs
        self.cache_dir = cache_dir
        self.name_prefix = name_prefix
        self.spawn_timeout = spawn_timeout
        self._procs: dict[str, subprocess.Popen] = {}
        self._spawned = 0
        self._lock = threading.Lock()

    def _worker_command(self, name: str) -> list[str]:
        command = [
            sys.executable, "-m", "repro.cli", "worker",
            "--port", "0", "--name", name, "--backend", self.worker_backend,
        ]
        if self.worker_jobs > 1:
            command += ["--backend-opt", f"n_jobs={self.worker_jobs}"]
        if self.cache_dir:
            # One shared directory on purpose: the disk store is
            # merge-on-flush additive, so concurrent workers are safe.
            command += ["--cache-dir", str(self.cache_dir)]
        return command

    def spawn(self) -> str:
        import repro

        with self._lock:
            name = f"{self.name_prefix}-{self._spawned}"
            self._spawned += 1
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = os.pathsep.join(
            [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.Popen(
            self._worker_command(name), env=env, stdout=subprocess.PIPE, text=True
        )
        try:
            assert proc.stdout is not None
            line = proc.stdout.readline()
            ready = json.loads(line)
            address = str(ready["address"])
            worker_id = self.coordinator.add_worker(address, source="autoscaler")
        except Exception:
            proc.terminate()
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
            raise
        with self._lock:
            self._procs[worker_id] = proc
        return worker_id

    def drain(self, worker_id: str) -> None:
        from repro.cluster.coordinator import ClusterError

        try:
            self.coordinator.remove_worker(worker_id)
        except ClusterError:
            pass  # already dead/unknown; reap the process regardless
        self._reap(worker_id)

    def _reap(self, worker_id: str) -> None:
        import signal as _signal

        with self._lock:
            proc = self._procs.pop(worker_id, None)
        if proc is None or proc.poll() is not None:
            return
        proc.send_signal(_signal.SIGTERM)
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=5)

    def close(self) -> None:
        with self._lock:
            worker_ids = list(self._procs)
        for worker_id in worker_ids:
            self._reap(worker_id)


class Autoscaler:
    """Run an :class:`AutoscalerPolicy` against a live signal source.

    Parameters
    ----------
    policy:
        The pure decision function (bounds, sustain windows, cooldowns).
    signals:
        Zero-argument callable returning the current
        :class:`ScalingSignals` (usually
        :func:`signals_from_coordinator` partially applied).
    launcher:
        Object with ``spawn() -> worker_id``, ``drain(worker_id)``, and
        ``close()``.
    clock:
        Injectable monotonic clock; tests pass a fake.
    poll_interval:
        Sampling period of the background loop (:meth:`start`).
    """

    def __init__(
        self,
        policy: AutoscalerPolicy,
        signals: Callable[[], ScalingSignals],
        launcher: Any,
        *,
        clock: Callable[[], float] = monotonic,
        poll_interval: float = 0.5,
    ) -> None:
        self.policy = policy
        self.signals = signals
        self.launcher = launcher
        self.clock = clock
        self.poll_interval = poll_interval
        self.managed: list[str] = []
        self.events: list[dict[str, Any]] = []
        self.counters = {"scale_up": 0, "scale_down": 0, "scale_errors": 0}
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    def tick(self, now: float | None = None) -> str:
        """Sample, decide, act once; returns the decision taken."""
        if now is None:
            now = self.clock()
        signals = self.signals()
        decision = self.policy.decide(signals, now)
        if decision == "up":
            self._scale_up(signals, now)
        elif decision == "down":
            if not self._scale_down(signals, now):
                decision = "hold"  # nothing we own to drain
        return decision

    def _scale_up(self, signals: ScalingSignals, now: float) -> None:
        try:
            worker_id = self.launcher.spawn()
        except Exception as exc:  # noqa: BLE001 - scaling must not kill the loop
            with self._lock:
                self.counters["scale_errors"] += 1
            log_event(_LOG, "warning", "scale_up_failed", reason=str(exc))
            return
        with self._lock:
            self.managed.append(worker_id)
            self.counters["scale_up"] += 1
            self.events.append(
                {
                    "direction": "up",
                    "worker_id": worker_id,
                    "at": now,
                    "queue_depth": signals.queue_depth,
                    "workers_alive": signals.workers_alive,
                }
            )
        _SCALE_EVENTS.inc(direction="up")
        log_event(
            _LOG, "info", "scaled_up",
            worker=worker_id, queue_depth=signals.queue_depth,
        )

    def _scale_down(self, signals: ScalingSignals, now: float) -> bool:
        with self._lock:
            if not self.managed:
                return False
            worker_id = self.managed.pop()  # most recent first
        try:
            self.launcher.drain(worker_id)
        except Exception as exc:  # noqa: BLE001 - scaling must not kill the loop
            with self._lock:
                self.counters["scale_errors"] += 1
            log_event(_LOG, "warning", "scale_down_failed", reason=str(exc))
            return True
        with self._lock:
            self.counters["scale_down"] += 1
            self.events.append(
                {
                    "direction": "down",
                    "worker_id": worker_id,
                    "at": now,
                    "workers_alive": signals.workers_alive,
                }
            )
        _SCALE_EVENTS.inc(direction="down")
        log_event(_LOG, "info", "scaled_down", worker=worker_id)
        return True

    # ------------------------------------------------------------------ #
    def start(self) -> "Autoscaler":
        if self._thread is not None:
            raise RuntimeError("autoscaler already started")
        self._thread = threading.Thread(
            target=self._loop, name=f"{AUTOSCALER_THREAD_PREFIX}-loop", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.poll_interval):
            try:
                self.tick()
            except Exception as exc:  # noqa: BLE001 - keep the loop alive
                log_event(_LOG, "warning", "autoscaler_tick_failed", reason=str(exc))

    def stop(self, *, drain_managed: bool = True) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if drain_managed:
            self.launcher.close()

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                **dict(self.counters),
                "managed_workers": len(self.managed),
                "events": [dict(event) for event in self.events],
            }
