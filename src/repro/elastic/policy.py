"""Pure elastic-cluster decision functions: tags, constraints, scaling.

Everything here is deliberately free of sockets, threads, and clocks so
it can be tested exhaustively with plain values:

* **capability tags** — workers advertise ``tags`` in their ``hello_ack``
  capabilities (``--tag gpu=true --tag cpu_class=large``); the
  coordinator matches shard *constraints* against them and routes
  heavyweight-parser shards to capable nodes
  (:func:`satisfies`, :func:`constraints_for_parser`);
* **scaling** — :class:`AutoscalerPolicy` turns one
  :class:`ScalingSignals` snapshot plus a caller-supplied ``now`` into
  ``"up"`` / ``"down"`` / ``"hold"``.  The clock is always an argument,
  never read — which is what makes the autoscaler testable with a
  deterministic fake clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

#: Parsers the paper runs on accelerator-class nodes.  Shards carrying
#: them prefer workers advertising ``gpu=true``; when no such worker is
#: alive the constraint relaxes (any worker *can* run them — slowly).
HEAVYWEIGHT_PARSERS = frozenset({"nougat", "marker"})


def coerce_tag(value: Any) -> Any:
    """Normalise one tag value from CLI/wire strings (``"true"``, ``"8"``)."""
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("true", "yes", "on"):
            return True
        if lowered in ("false", "no", "off"):
            return False
        try:
            return int(lowered)
        except ValueError:
            return value.strip()
    return value


def coerce_tags(tags: Mapping[str, Any] | None) -> dict[str, Any]:
    return {str(key): coerce_tag(value) for key, value in (tags or {}).items()}


def tags_from_capabilities(capabilities: Mapping[str, Any]) -> dict[str, Any]:
    """A worker's effective tag set from its ``hello_ack`` capabilities.

    Explicit ``tags`` win; the implicit ``cache`` (cache-warm) and
    ``slots`` capabilities every worker already reports are folded in so
    constraints can target them without any worker-side change.
    """
    tags = coerce_tags(capabilities.get("tags"))
    tags.setdefault("cache", bool(capabilities.get("cache")))
    if capabilities.get("slots") is not None:
        tags.setdefault("slots", int(capabilities["slots"]))
    return tags


def satisfies(tags: Mapping[str, Any], constraints: Mapping[str, Any] | None) -> bool:
    """Does a worker's tag set satisfy a shard's placement constraints?

    Boolean constraints require truthiness, numeric constraints are
    minimums (``{"slots": 4}`` reads "at least 4 slots"), and everything
    else is equality after :func:`coerce_tag` normalisation.
    """
    for key, wanted in (constraints or {}).items():
        actual = coerce_tag(tags.get(key))
        wanted = coerce_tag(wanted)
        if isinstance(wanted, bool):
            if bool(actual) is not wanted:
                return False
        elif isinstance(wanted, (int, float)) and not isinstance(actual, bool):
            if actual is None or not isinstance(actual, (int, float)):
                return False
            if actual < wanted:
                return False
        elif actual != wanted:
            return False
    return True


def constraints_for_parser(parser_name: str) -> dict[str, Any]:
    """Default placement constraints of one parser (empty = anywhere)."""
    if parser_name in HEAVYWEIGHT_PARSERS:
        return {"gpu": True}
    return {}


# ---------------------------------------------------------------------- #
# Autoscaling
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScalingSignals:
    """One telemetry snapshot the policy decides on.

    ``queue_depth`` is the coordinator's total queued-not-dispatched
    backlog, ``in_flight`` the shards currently on workers, and
    ``batch_latency_seconds`` the latest per-batch latency observation
    (0.0 when none yet) — all three already flow through
    ``ExecutionStats.extra`` and the coordinator's counters.
    """

    queue_depth: int
    in_flight: int
    workers_alive: int
    batch_latency_seconds: float = 0.0


@dataclass
class PolicyState:
    """The policy's memory between ticks (sustain windows + cooldown)."""

    backlog_since: float | None = None
    idle_since: float | None = None
    last_scale_at: float | None = None


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Scale-up on sustained backlog, scale-down on sustained idleness.

    Parameters
    ----------
    min_workers / max_workers:
        Hard bounds on the alive-worker count.  Below the floor the
        policy scales up immediately (no sustain, no cooldown); above
        the ceiling it never scales up.
    scale_up_backlog:
        Queued shards **per alive worker** that count as backlog.
    backlog_sustain_seconds / idle_sustain_seconds:
        How long the respective condition must hold before acting —
        a single slow batch should not buy a machine.
    cooldown_seconds:
        Minimum spacing between scale actions, so a fresh worker gets a
        chance to drain the queue before the policy piles on another.
    """

    min_workers: int = 1
    max_workers: int = 4
    scale_up_backlog: float = 2.0
    backlog_sustain_seconds: float = 2.0
    idle_sustain_seconds: float = 10.0
    cooldown_seconds: float = 5.0
    state: PolicyState = field(default_factory=PolicyState, compare=False)

    def __post_init__(self) -> None:
        if self.min_workers < 0:
            raise ValueError("min_workers must be >= 0")
        if self.max_workers < max(1, self.min_workers):
            raise ValueError("max_workers must be >= max(1, min_workers)")

    def _cooled_down(self, now: float) -> bool:
        last = self.state.last_scale_at
        return last is None or now - last >= self.cooldown_seconds

    def decide(self, signals: ScalingSignals, now: float) -> str:
        """``"up"``, ``"down"``, or ``"hold"`` for one telemetry snapshot."""
        state = self.state
        alive = signals.workers_alive
        if alive < self.min_workers:
            state.backlog_since = None
            state.idle_since = None
            state.last_scale_at = now
            return "up"
        backlog_per_worker = signals.queue_depth / max(1, alive)
        backlogged = backlog_per_worker >= self.scale_up_backlog
        idle = signals.queue_depth == 0 and signals.in_flight == 0
        if backlogged:
            state.idle_since = None
            if state.backlog_since is None:
                state.backlog_since = now
            sustained = now - state.backlog_since >= self.backlog_sustain_seconds
            if sustained and alive < self.max_workers and self._cooled_down(now):
                state.backlog_since = None
                state.last_scale_at = now
                return "up"
            return "hold"
        state.backlog_since = None
        if idle:
            if state.idle_since is None:
                state.idle_since = now
            sustained = now - state.idle_since >= self.idle_sustain_seconds
            if sustained and alive > self.min_workers and self._cooled_down(now):
                state.idle_since = None
                state.last_scale_at = now
                return "down"
            return "hold"
        state.idle_since = None
        return "hold"

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "min_workers": self.min_workers,
            "max_workers": self.max_workers,
            "scale_up_backlog": self.scale_up_backlog,
            "backlog_sustain_seconds": self.backlog_sustain_seconds,
            "idle_sustain_seconds": self.idle_sustain_seconds,
            "cooldown_seconds": self.cooldown_seconds,
        }
