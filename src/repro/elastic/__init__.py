"""Elastic cluster operations: live membership, autoscaling, checkpoint/resume.

:mod:`repro.cluster` (PR 5) runs a campaign over a **fixed** worker list;
this package makes that membership *live*:

* :mod:`repro.elastic.membership` — the
  :class:`~repro.elastic.membership.MembershipRegistry` a
  :class:`~repro.cluster.coordinator.ClusterCoordinator` keeps of every
  worker it has ever talked to (joins, graceful leaves, deaths), and the
  :class:`~repro.elastic.membership.MembershipListener` that lets
  ``worker --join`` daemons announce themselves to a *running*
  coordinator mid-campaign.
* :mod:`repro.elastic.autoscaler` — the
  :class:`~repro.elastic.autoscaler.Autoscaler` policy loop that spawns
  and drains local worker processes from the queue-depth and batch-
  latency telemetry the coordinator already publishes.
* :mod:`repro.elastic.policy` — pure decision functions: capability-tag
  matching for heterogeneous placement and the deterministic-clock
  :class:`~repro.elastic.policy.AutoscalerPolicy`.
* :mod:`repro.elastic.ledger` — the persisted
  :class:`~repro.elastic.ledger.ShardLedger` that makes campaigns
  restartable: completed shards are skipped exactly-once on ``--resume``.

Like :mod:`repro.cluster` and :mod:`repro.hpc`, nothing here is imported
by ``import repro`` — the package loads only when elastic features are
actually used.
"""

from __future__ import annotations

from typing import Any

_LAZY_EXPORTS = {
    "MembershipRegistry": "repro.elastic.membership:MembershipRegistry",
    "MembershipListener": "repro.elastic.membership:MembershipListener",
    "WorkerRecord": "repro.elastic.membership:WorkerRecord",
    "Autoscaler": "repro.elastic.autoscaler:Autoscaler",
    "SubprocessLauncher": "repro.elastic.autoscaler:SubprocessLauncher",
    "AutoscalerPolicy": "repro.elastic.policy:AutoscalerPolicy",
    "ScalingSignals": "repro.elastic.policy:ScalingSignals",
    "ShardLedger": "repro.elastic.ledger:ShardLedger",
}

__all__ = sorted(_LAZY_EXPORTS)


def __getattr__(name: str) -> Any:
    """Resolve lazily exported public names (delegates to repro.utils.lazy)."""
    from repro.utils.lazy import resolve_lazy

    return resolve_lazy(__name__, globals(), _LAZY_EXPORTS, name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
