"""The ``remote`` execution backend: the cluster behind ``map_ordered``.

:class:`RemoteBackend` makes a worker cluster look like any other
:class:`~repro.pipeline.backends.ExecutionBackend`: the pipeline (and
:class:`~repro.serve.ParseService`) compose the parent-side cache layer
around :meth:`wrap_inner` exactly as they do for the process backend, and
``map_ordered`` keeps its bounded-window, input-ordered contract.

The split of responsibilities mirrors the process backend, one network
hop further out:

* **wrap_inner** distils the inner worker into a
  :class:`~repro.cluster.protocol.WorkerSpec` — the parser/engine's
  *registry name*, α override, and ``config_fingerprint()`` — instead of
  pickling it.  Workers rebuild the engine from the spec on their side
  and refuse shards whose fingerprint they cannot reproduce, so nothing
  executable ever crosses the wire.
* The returned stub submits each batch to the
  :class:`~repro.cluster.coordinator.ClusterCoordinator` (rendezvous
  placement, per-worker windows, heartbeat fault detection, re-queue on
  worker loss) and blocks for the shard future.
* The inherited thread orchestration (window, ordering, cancellation
  accounting) then guarantees ``completed + cancelled == dispatched``
  and input-ordered yielding, unchanged.

``ExecutionStats.extra`` carries the cluster telemetry under
``cluster_*`` keys: workers seen/alive/lost, shards reassigned after
worker loss, duplicate results dropped by the exactly-once filter, and
bytes/payload counts on the wire.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence, TypeVar

from repro.cluster.coordinator import ClusterCoordinator, ClusterError
from repro.cluster.protocol import WorkerSpec
from repro.obs import profiling as _profiling
from repro.obs import tracing as _tracing
from repro.pipeline.backends.base import (
    BackendError,
    BackendSpec,
    ExecutionStats,
    register_backend,
)
from repro.pipeline.backends.thread import ThreadBackend

_T = TypeVar("_T")
_R = TypeVar("_R")


def worker_spec_for(inner: Callable, cache: str = "readwrite") -> WorkerSpec:
    """Distil a pipeline inner worker into a wire-shippable spec.

    Accepts the two shapes the pipeline produces — an AdaParse engine's
    bound ``route_batch`` and a base parser's batch worker (or bound
    ``parse_with_telemetry``) — and rejects anything else: a remote
    worker can only rebuild parsers that resolve by name through its own
    pipeline.
    """
    from repro.core.engine import AdaParseEngine
    from repro.parsers.base import Parser

    owner = getattr(inner, "__self__", None)
    parser = owner if isinstance(owner, Parser) else getattr(inner, "parser", None)
    if not isinstance(parser, Parser):
        raise BackendError(
            f"remote backend requires a parser/engine work unit that workers "
            f"can rebuild by name; got {inner!r}. Run registry parsers or "
            f"engines (or pre-install the parser on the workers' pipelines)."
        )
    alpha = parser.config.alpha if isinstance(parser, AdaParseEngine) else None
    return WorkerSpec(
        parser=parser.name,
        fingerprint=parser.config_fingerprint(),
        alpha=alpha,
        cache=cache,
    )


def _parse_addresses(workers: "str | Sequence[str] | None") -> list[str]:
    """Worker endpoints from the option value (comma string or sequence)."""
    if workers is None:
        raise ValueError(
            "remote backend needs worker addresses: pass backend_options="
            '{"workers": "host:port,host:port"} (start daemons with '
            "`adaparse-repro worker`, or `adaparse-repro cluster` to spawn "
            "a local fleet)"
        )
    if isinstance(workers, str):
        addresses = [part.strip() for part in workers.split(",") if part.strip()]
    else:
        addresses = [str(part).strip() for part in workers]
    if not addresses:
        raise ValueError("remote backend needs at least one worker address")
    for address in addresses:
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"worker address must be host:port, got {address!r}"
            )
    return addresses


class RemoteBackend(ThreadBackend):
    """Execute batches on a cluster of worker daemons (see module docstring).

    Parameters
    ----------
    workers:
        Worker endpoints, ``"host:port,host:port"`` (or a sequence).
    window:
        In-flight shards per worker; the backend's total orchestration
        window is ``len(workers) * window``.
    placement:
        ``"rendezvous"`` (cache-affine; default) or ``"balanced"``.
    worker_cache:
        Cache policy workers apply to their local
        :class:`~repro.cache.ParseCache` (``"off"`` to force re-parses
        even on cache-carrying workers).
    connect_timeout / heartbeat_interval / heartbeat_timeout:
        See :class:`~repro.cluster.coordinator.ClusterCoordinator`.
    listen:
        Membership listener port (0 picks a free one; ``None`` disables).
        When set, ``worker --join`` daemons can join the running
        campaign and ``cluster status`` can query it.
    ledger_dir:
        Campaign checkpoint directory.  Completed shards are durably
        recorded to a :class:`~repro.elastic.ledger.ShardLedger` there;
        re-running with the same directory resumes, replaying completed
        shards instead of dispatching them.
    autoscale:
        Autoscaler configuration dict (``None`` disables).  Policy knobs
        (``min_workers``, ``max_workers``, ``scale_up_backlog``,
        ``backlog_sustain_seconds``, ``idle_sustain_seconds``,
        ``cooldown_seconds``) go to
        :class:`~repro.elastic.policy.AutoscalerPolicy`; launcher knobs
        (``worker_backend``, ``worker_jobs``, ``cache_dir``) to
        :class:`~repro.elastic.autoscaler.SubprocessLauncher`.  Implies
        a membership listener.

    Construction is lazy: addresses are validated eagerly (so queued
    :class:`~repro.pipeline.request.ParseRequest` objects fail fast) but
    the cluster is dialled — and any listener/autoscaler started — on
    first use.
    """

    name = "remote"

    def __init__(
        self,
        workers: "str | Sequence[str] | None" = None,
        window: int = 2,
        placement: str = "rendezvous",
        worker_cache: str = "readwrite",
        connect_timeout: float = 5.0,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float = 15.0,
        listen: "int | None" = None,
        ledger_dir: "str | None" = None,
        autoscale: "dict[str, Any] | None" = None,
    ) -> None:
        self.addresses = _parse_addresses(workers)
        if window < 1:
            raise ValueError("window must be positive")
        if placement not in ("rendezvous", "balanced"):
            raise ValueError(
                f"unknown placement {placement!r}; known: rendezvous, balanced"
            )
        from repro.cache import CachePolicy

        CachePolicy.coerce(worker_cache)  # validate eagerly
        super().__init__(
            n_jobs=len(self.addresses) * window,
            window=len(self.addresses) * window,
        )
        self.per_worker_window = window
        self.placement = placement
        self.worker_cache = worker_cache
        self.connect_timeout = connect_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        if listen is not None and (not isinstance(listen, int) or listen < 0):
            raise ValueError("listen must be a port number (0 picks a free one)")
        if autoscale is not None and not isinstance(autoscale, dict):
            raise ValueError("autoscale must be a dict of policy/launcher options")
        self.listen = listen
        self.ledger_dir = ledger_dir
        self.autoscale = dict(autoscale) if autoscale else None
        if self.autoscale is not None and self.listen is None:
            self.listen = 0  # autoscaled campaigns accept joins by default
        self._coordinator: ClusterCoordinator | None = None
        self._listener = None
        self._autoscaler = None

    @property
    def workers(self) -> int:
        return len(self.addresses)

    # ------------------------------------------------------------------ #
    def _ensure_coordinator(self) -> ClusterCoordinator:
        if self._closed:
            raise BackendError("remote backend is closed")
        if self._coordinator is None:
            ledger = None
            if self.ledger_dir:
                from repro.elastic.ledger import ShardLedger

                ledger = ShardLedger(self.ledger_dir)
            coordinator = ClusterCoordinator(
                self.addresses,
                window=self.per_worker_window,
                placement=self.placement,
                connect_timeout=self.connect_timeout,
                heartbeat_interval=self.heartbeat_interval,
                heartbeat_timeout=self.heartbeat_timeout,
                ledger=ledger,
            )
            try:
                coordinator.connect()
            except ClusterError as exc:
                raise BackendError(str(exc)) from exc
            self._coordinator = coordinator
            if self.listen is not None:
                from repro.elastic.membership import MembershipListener

                self._listener = MembershipListener(
                    coordinator, port=self.listen
                ).start()
            if self.autoscale is not None:
                self._start_autoscaler(coordinator)
        return self._coordinator

    def _start_autoscaler(self, coordinator: ClusterCoordinator) -> None:
        from repro.elastic.autoscaler import (
            Autoscaler,
            SubprocessLauncher,
            signals_from_coordinator,
        )
        from repro.elastic.policy import AutoscalerPolicy

        options = dict(self.autoscale or {})
        launcher = SubprocessLauncher(
            coordinator,
            worker_backend=str(options.pop("worker_backend", "serial")),
            worker_jobs=int(options.pop("worker_jobs", 1)),
            cache_dir=options.pop("cache_dir", None) or None,
        )
        try:
            policy = AutoscalerPolicy(**options)
        except TypeError as exc:
            raise BackendError(f"bad autoscale options: {exc}") from exc
        self._autoscaler = Autoscaler(
            policy, lambda: signals_from_coordinator(coordinator), launcher
        ).start()

    @property
    def membership_address(self) -> "str | None":
        """The live membership listener endpoint (``None`` until dialled)."""
        return self._listener.address if self._listener is not None else None

    def wrap_inner(self, inner: Callable[[_T], _R]) -> Callable[[_T], _R]:
        from repro.elastic.policy import constraints_for_parser

        spec = worker_spec_for(inner, cache=self.worker_cache)
        constraints = constraints_for_parser(spec.parser)
        coordinator = self._ensure_coordinator()

        def remote(batch: _T) -> _R:
            # submit() adopts the calling thread's active trace, so the
            # shard frame carries it to the worker; the span here times the
            # full round trip (queueing, transfer, remote parse, reply).
            with _tracing.span("cluster.shard", attributes={"backend": self.name}):
                future = coordinator.submit(
                    spec,
                    batch,  # type: ignore[arg-type]
                    constraints=constraints,
                )
                try:
                    output = future.result()
                except ClusterError as exc:
                    raise BackendError(str(exc)) from exc
                # The worker's phase table rode the result frame; merging
                # it here — inside the orchestration thread's open `parse`
                # phase — attributes remote work under its own phase keys
                # while the round-trip overhead stays in `parse` self time.
                timer = _profiling.current_timer()
                if timer is not None and future.phases:
                    timer.merge_table(future.phases)
                return output  # type: ignore[return-value]

        return remote

    def stats(self) -> ExecutionStats:
        stats = super().stats()
        extra: dict[str, Any] = {
            "cluster_workers_configured": len(self.addresses),
            "cluster_placement": self.placement,
        }
        if self._coordinator is not None:
            extra.update(
                {
                    f"cluster_{key}": value
                    for key, value in self._coordinator.stats().items()
                }
            )
        if self._autoscaler is not None:
            autoscaler_stats = self._autoscaler.stats()
            autoscaler_stats.pop("events", None)  # counters only in extra
            extra.update(
                {f"cluster_autoscaler_{k}": v for k, v in autoscaler_stats.items()}
            )
        stats.extra.update(extra)
        return stats

    def close(self) -> None:
        # The autoscaler goes first (it spawns/drains workers and must
        # stop mutating the membership), then the listener (no more
        # joins), then the coordinator: it fails any still-pending shard
        # futures, which unblocks orchestration threads so the inherited
        # close() can join the pool without deadlocking on them.
        if self._autoscaler is not None:
            self._autoscaler.stop()
        if self._listener is not None:
            self._listener.stop()
        if self._coordinator is not None:
            self._coordinator.close()
        super().close()


register_backend(
    BackendSpec(
        name="remote",
        factory=RemoteBackend,
        options=frozenset(
            {
                "workers",
                "window",
                "placement",
                "worker_cache",
                "connect_timeout",
                "heartbeat_interval",
                "heartbeat_timeout",
                "listen",
                "ledger_dir",
                "autoscale",
            }
        ),
        description="distributed execution on repro.cluster worker daemons",
    )
)
