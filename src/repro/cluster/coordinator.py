"""The cluster coordinator: shard planning, dispatch, and fault tolerance.

The coordinator owns the client side of every worker connection.  Its
contract with the :class:`~repro.cluster.backend.RemoteBackend` is small:
:meth:`ClusterCoordinator.submit` takes one shard (a
:class:`~repro.cluster.protocol.WorkerSpec` plus a batch of documents)
and returns a future; the coordinator guarantees every future eventually
resolves — with the shard's ordered results, or with a
:class:`ClusterError`.

Behind that contract it implements the distribution policy:

* **Placement** — shards are placed by rendezvous hashing over the
  shard's document content hashes (:func:`~repro.cluster.protocol.
  rank_workers`), so repeated runs over the same corpus land each shard
  on the same worker — whose document store and parse cache are then
  warm.  ``placement="balanced"`` trades that affinity for load
  balancing (least-backlogged worker, rendezvous rank as the tie-break).
* **Windowing** — at most ``window`` shards are in flight per worker;
  excess placements wait in that worker's queue, so a slow worker
  backpressures its own shards without stalling the others.
* **Transfer economy** — document payloads ship at most once per worker
  and session; descriptors for previously shipped (or worker-cached)
  content go hash-only, and the worker's ``shard_need`` reply pulls any
  payloads it genuinely lacks.
* **Fault tolerance** — a worker is dead on socket EOF/reset or after
  ``heartbeat_timeout`` without a beacon.  Both detection paths converge
  on one reap-and-requeue code path (:meth:`ClusterCoordinator.
  _on_worker_death`), idempotent under the link's ``alive`` flag — a
  worker dying *between* a heartbeat timeout and the EOF landing is
  reaped exactly once, never double-requeued.  Orphaned queued and
  in-flight shards are re-placed on the survivors (**at-least-once**
  dispatch); results are deduplicated by shard id, first writer wins, so
  the caller still observes **exactly-once** results.  When the last
  worker dies, every outstanding future fails with a
  :class:`ClusterError` rather than hanging.

Elastic extensions (:mod:`repro.elastic`) build on the same machinery:
a :class:`~repro.elastic.membership.MembershipRegistry` records every
admission and departure, :meth:`ClusterCoordinator.add_worker` admits a
worker to a *running* coordinator (re-placing only the queued shards
whose rendezvous preference moved — in-flight and completed shards never
move), :meth:`ClusterCoordinator.remove_worker` drains one gracefully,
capability tags route constrained shards to capable nodes, and an
optional :class:`~repro.elastic.ledger.ShardLedger` checkpoints every
completed shard so a killed campaign resumes with completed work
replayed, not re-parsed.
"""

from __future__ import annotations

import socket
import threading
from collections import deque
from time import monotonic
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from repro.cache.keys import document_content_hash
from repro.cluster import protocol
from repro.cluster.protocol import (
    MessageChannel,
    MessageTooLarge,
    ProtocolError,
    WorkerSpec,
    rank_workers,
    shard_placement_key,
)
from repro.core.engine import RoutingDecision
from repro.documents.document import SciDocument
from repro.documents.simpdf import document_to_dict
from repro.elastic.membership import MembershipRegistry
from repro.elastic.policy import satisfies, tags_from_capabilities
from repro.obs import metrics as _metrics
from repro.obs import profiling as _profiling
from repro.obs import tracing as _tracing
from repro.obs.logging import get_logger, log_event
from repro.obs.tracing import TraceContext
from repro.parsers.base import ParseResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.elastic.ledger import ShardLedger

#: Thread-name prefix of coordinator-owned threads (readers + monitor).
COORDINATOR_THREAD_PREFIX = "repro-cluster-coord"

_LOG = get_logger("cluster")

_CLUSTER_SHARDS = _metrics.counter(
    "repro_cluster_shards_total",
    "Shard outcomes observed by the coordinator "
    "(completed/failed/reassigned/duplicate).",
    ("outcome",),
)
_CLUSTER_WORKERS_LOST = _metrics.counter(
    "repro_cluster_workers_lost_total",
    "Workers declared dead (EOF, reset, or heartbeat timeout).",
)
_CLUSTER_BYTES = _metrics.gauge(
    "repro_cluster_bytes_on_wire",
    "Total bytes sent/received across all worker links.",
    ("direction",),
)

#: One shard's resolved output.
ShardOutput = tuple[list[ParseResult], list[RoutingDecision]]


class ClusterError(RuntimeError):
    """The cluster could not complete a shard (or could not start at all)."""


class ShardFuture:
    """Minimal thread-safe future for one shard's output."""

    def __init__(self, shard_id: str) -> None:
        self.shard_id = shard_id
        self._done = threading.Event()
        self._output: ShardOutput | None = None
        self._error: BaseException | None = None
        #: The worker-side phase table that rode the batch_result frame
        #: (set before the result resolves); the remote backend merges it
        #: into the submitting request's ambient timer.
        self.phases: "dict[str, Any] | None" = None

    def set_result(self, output: ShardOutput) -> None:
        self._output = output
        self._done.set()

    def set_exception(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> ShardOutput:
        if not self._done.wait(timeout):
            raise TimeoutError(f"shard {self.shard_id} not done within {timeout}s")
        if self._error is not None:
            raise self._error
        assert self._output is not None
        return self._output


class _Shard:
    """Coordinator-side state of one dispatched batch."""

    __slots__ = (
        "shard_id",
        "spec",
        "documents",
        "content_hashes",
        "placement_key",
        "future",
        "attempts",
        "excluded_workers",
        "assigned_worker",
        "trace",
        "constraints",
    )

    def __init__(
        self,
        shard_id: str,
        spec: WorkerSpec,
        documents: list[SciDocument],
        trace: TraceContext | None = None,
        constraints: Mapping[str, Any] | None = None,
    ) -> None:
        self.shard_id = shard_id
        self.spec = spec
        self.documents = documents
        self.content_hashes = [document_content_hash(doc) for doc in documents]
        self.placement_key = shard_placement_key(self.content_hashes)
        self.future = ShardFuture(shard_id)
        self.attempts = 0
        self.excluded_workers: set[str] = set()
        self.assigned_worker: str | None = None
        self.trace = trace
        #: Capability constraints (e.g. ``{"gpu": True}`` for heavyweight
        #: parsers); matched against worker tags, relaxed when no alive
        #: worker satisfies them.
        self.constraints = dict(constraints or {})


class _WorkerLink:
    """One connected worker: channel, identity, window, and backlog."""

    def __init__(self, address: str, channel: MessageChannel, window: int) -> None:
        self.address = address
        self.channel = channel
        self.window = window
        self.worker_id = address  # replaced by the hello_ack identity
        self.capabilities: dict[str, Any] = {}
        #: Effective capability tags (explicit ``tags`` plus the implicit
        #: cache/slots capabilities) used for constrained placement.
        self.tags: dict[str, Any] = {}
        #: How the worker arrived: "fixed" list, mid-run "join", or
        #: "autoscaler".
        self.source = "fixed"
        self.alive = True
        #: Draining workers finish their in-flight shards but receive no
        #: new placements; set by graceful removal (leave/scale-down).
        self.draining = False
        self.last_seen = monotonic()
        self.in_flight: dict[str, _Shard] = {}
        self.queued: deque[_Shard] = deque()
        #: Content hashes already shipped to (or confirmed held by) this
        #: worker this session — their payloads are skipped on later sends.
        self.sent_hashes: set[str] = set()
        self.reader: threading.Thread | None = None

    @property
    def backlog(self) -> int:
        return len(self.in_flight) + len(self.queued)


class ClusterCoordinator:
    """Dispatch shards to worker daemons (see the module docstring).

    Parameters
    ----------
    addresses:
        Worker endpoints as ``"host:port"`` strings.
    window:
        In-flight shards per worker; further placements queue.
    placement:
        ``"rendezvous"`` (cache-affine, the default) or ``"balanced"``
        (least-backlogged worker first, rendezvous rank as tie-break).
    connect_timeout:
        Per-worker TCP connect + handshake budget.  Workers that fail to
        connect are skipped; the coordinator starts as long as one
        worker answered, and :meth:`connect` raises otherwise.
    heartbeat_interval / heartbeat_timeout:
        Beacon period requested from workers, and the silence after
        which a worker is declared dead and its shards re-queued.
    ledger:
        Optional :class:`~repro.elastic.ledger.ShardLedger`.  Completed
        shards are durably recorded before their futures resolve, and
        submissions whose (placement key × fingerprint) the ledger
        already holds are replayed without dispatch — the
        checkpoint/resume path of ``cluster --ledger-dir``.
    """

    def __init__(
        self,
        addresses: Sequence[str],
        *,
        window: int = 2,
        placement: str = "rendezvous",
        connect_timeout: float = 5.0,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float = 15.0,
        ledger: "ShardLedger | None" = None,
    ) -> None:
        if not addresses:
            raise ClusterError("remote backend needs at least one worker address")
        if window < 1:
            raise ClusterError("window must be positive")
        if placement not in ("rendezvous", "balanced"):
            raise ClusterError(
                f"unknown placement {placement!r}; known: rendezvous, balanced"
            )
        self.addresses = list(addresses)
        self.window = window
        self.placement = placement
        self.connect_timeout = connect_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.ledger = ledger
        self._lock = threading.Lock()
        self._links: list[_WorkerLink] = []
        self._shards: dict[str, _Shard] = {}
        self._next_shard = 0
        self._closed = False
        self._monitor: threading.Thread | None = None
        self._monitor_stop = threading.Event()
        #: Membership history: every admission/departure this coordinator
        #: ever saw, including workers that joined and left mid-campaign.
        self.membership = MembershipRegistry()
        #: Seconds the most recent completed shard spent on its worker —
        #: the per-batch latency signal the autoscaler samples.
        self.last_batch_seconds = 0.0
        self.counters: dict[str, int] = {
            "workers_seen": 0,
            "workers_lost": 0,
            "workers_left": 0,
            "shards_submitted": 0,
            "shards_completed": 0,
            "shards_failed": 0,
            "shards_reassigned": 0,
            "shards_rebalanced": 0,
            "shards_replayed": 0,
            "duplicate_results_ignored": 0,
            "doc_payloads_sent": 0,
            "doc_payloads_skipped": 0,
            "remote_cache_hits": 0,
            "remote_cache_misses": 0,
            "placement_relaxed": 0,
        }

    # ------------------------------------------------------------------ #
    # Connection management
    # ------------------------------------------------------------------ #
    def connect(self) -> "ClusterCoordinator":
        """Dial every worker; start with the ones that answer."""
        errors: list[str] = []
        for address in self.addresses:
            try:
                self._connect_one(address)
            except (OSError, ProtocolError, ClusterError) as exc:
                errors.append(f"{address}: {exc}")
        if not self._links:
            raise ClusterError(
                f"no cluster workers reachable: {'; '.join(errors) or self.addresses}"
            )
        self._monitor = threading.Thread(
            target=self._monitor_loop,
            name=f"{COORDINATOR_THREAD_PREFIX}-monitor",
            daemon=True,
        )
        self._monitor.start()
        return self

    def _connect_one(self, address: str, source: str = "fixed") -> _WorkerLink:
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ClusterError(f"worker address must be host:port, got {address!r}")
        sock = socket.create_connection((host, int(port)), timeout=self.connect_timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        channel = MessageChannel(sock)
        link = _WorkerLink(address, channel, self.window)
        link.source = source
        try:
            channel.send(
                {
                    "type": protocol.HELLO,
                    "protocol": protocol.PROTOCOL_VERSION,
                    "heartbeat_interval": self.heartbeat_interval,
                    # Capability flag, not a version bump: v1 workers
                    # ignore it and keep working as fixed-list members.
                    "capabilities": {"membership": True},
                }
            )
            ack = channel.recv()
        except (OSError, ProtocolError):
            channel.close()
            raise
        if ack is None or ack.get("type") != protocol.HELLO_ACK:
            channel.close()
            detail = (ack or {}).get("message", "connection closed during handshake")
            raise ClusterError(f"worker refused the handshake: {detail}")
        if int(ack.get("protocol", -1)) != protocol.PROTOCOL_VERSION:
            channel.close()
            raise ClusterError(
                f"protocol version mismatch with worker at {address}: "
                f"coordinator speaks {protocol.PROTOCOL_VERSION}, worker "
                f"answered {ack.get('protocol')}"
            )
        link.worker_id = str(ack.get("worker_id", address))
        link.capabilities = dict(ack.get("capabilities", {}))
        link.tags = tags_from_capabilities(link.capabilities)
        sock.settimeout(None)
        with self._lock:
            if any(peer.worker_id == link.worker_id for peer in self._links):
                channel.close()
                raise ClusterError(
                    f"duplicate worker id {link.worker_id!r} at {address}; give "
                    f"workers distinct --name values for stable placement"
                )
            self._links.append(link)
            self.counters["workers_seen"] += 1
        self.membership.record_join(
            link.worker_id, address, source=source, tags=link.tags
        )
        link.reader = threading.Thread(
            target=self._read_loop,
            args=(link,),
            name=f"{COORDINATOR_THREAD_PREFIX}-reader-{link.worker_id}",
            daemon=True,
        )
        link.reader.start()
        return link

    # ------------------------------------------------------------------ #
    # Live membership (repro.elastic)
    # ------------------------------------------------------------------ #
    def add_worker(self, address: str, *, source: str = "join") -> str:
        """Admit a worker to a *running* coordinator; returns its id.

        The new worker goes through the ordinary handshake and then only
        the **queued** shards whose rendezvous preference moved to it are
        re-placed (:meth:`_rebalance_after_join`) — in-flight shards stay
        where they are and completed shards are gone, so a join disrupts
        the minimal shard set.
        """
        with self._lock:
            if self._closed:
                raise ClusterError("coordinator is closed")
        link = self._connect_one(address, source=source)
        self._rebalance_after_join(link)
        log_event(
            _LOG, "info", "worker_added",
            worker=link.worker_id, address=address, source=source,
        )
        return link.worker_id

    def remove_worker(self, worker_id: str) -> None:
        """Gracefully drain one worker out of the cluster.

        The link stops receiving placements immediately, its queued
        shards re-place onto the other workers, and a ``drain`` asks it
        to finish in-flight work and say ``bye`` — at which point the
        departure is recorded as a *leave*, not a death.
        """
        with self._lock:
            link = next(
                (
                    peer
                    for peer in self._links
                    if peer.worker_id == worker_id and peer.alive
                ),
                None,
            )
            if link is None:
                raise ClusterError(f"no alive worker {worker_id!r} to remove")
            if link.draining:
                return  # removal already underway
            link.draining = True
            requeued = list(link.queued)
            link.queued.clear()
            for shard in requeued:
                self._place_locked(shard)
            sends = self._pump_locked()
        self.membership.mark_draining(worker_id)
        self._send_planned(sends)
        try:
            link.channel.send({"type": protocol.DRAIN})
        except (OSError, ProtocolError) as exc:
            self._on_worker_death(link, f"send failed during drain: {exc}")

    def _rebalance_after_join(self, link: _WorkerLink) -> None:
        """Move queued shards that now rendezvous-prefer the new worker.

        Only queued (never dispatched) shards move, and only those whose
        top-ranked worker *is* the newcomer — the minimal-disruption
        property of rendezvous hashing, applied to a join.  Balanced
        placement skips this: its queues drain least-backlogged-first
        and the newcomer's empty backlog attracts new work naturally.
        """
        if self.placement != "rendezvous":
            return
        moved = 0
        with self._lock:
            if not link.alive or self._closed:
                return
            alive_ids = [
                peer.worker_id
                for peer in self._links
                if peer.alive and not peer.draining
            ]
            for peer in self._links:
                if peer is link or not peer.alive:
                    continue
                kept: deque[_Shard] = deque()
                for shard in peer.queued:
                    candidates = [
                        wid for wid in alive_ids if wid not in shard.excluded_workers
                    ] or alive_ids
                    if shard.constraints:
                        tagged = [
                            wid
                            for wid in candidates
                            if satisfies(self._tags_of_locked(wid), shard.constraints)
                        ]
                        candidates = tagged or candidates
                    ranked = rank_workers(shard.placement_key, candidates)
                    if ranked and ranked[0] == link.worker_id:
                        shard.assigned_worker = link.worker_id
                        link.queued.append(shard)
                        moved += 1
                    else:
                        kept.append(shard)
                peer.queued = kept
            self.counters["shards_rebalanced"] += moved
            sends = self._pump_locked()
        self._send_planned(sends)
        if moved:
            log_event(
                _LOG, "info", "shards_rebalanced",
                worker=link.worker_id, moved=moved,
            )

    def _tags_of_locked(self, worker_id: str) -> dict[str, Any]:
        for peer in self._links:
            if peer.worker_id == worker_id:
                return peer.tags
        return {}

    # ------------------------------------------------------------------ #
    # Submission and placement
    # ------------------------------------------------------------------ #
    def submit(
        self,
        spec: WorkerSpec,
        documents: Iterable[SciDocument],
        trace: TraceContext | None = None,
        constraints: Mapping[str, Any] | None = None,
    ) -> ShardFuture:
        """Plan one shard onto the cluster; returns its future immediately.

        ``trace`` (default: the caller's active trace) rides the
        ``submit_shard`` frame so worker-side spans join the submitting
        request's distributed trace.  ``constraints`` are capability
        requirements matched against worker tags (relaxed when no alive
        worker satisfies them).  With a ledger attached, a shard the
        ledger already holds resolves immediately from the checkpoint —
        the resume path — and is never dispatched.
        """
        batch = list(documents)
        if trace is None:
            trace = _tracing.current_trace()
        with self._lock:
            if self._closed:
                raise ClusterError("coordinator is closed")
            shard = _Shard(
                f"s{self._next_shard:06d}",
                spec,
                batch,
                trace=trace,
                constraints=constraints,
            )
            self._next_shard += 1
            self.counters["shards_submitted"] += 1
        if self.ledger is not None:
            replay = self.ledger.completed_output(shard.placement_key, spec.fingerprint)
            if replay is not None:
                with self._lock:
                    self.counters["shards_replayed"] += 1
                _CLUSTER_SHARDS.inc(outcome="replayed")
                shard.future.set_result(replay)
                return shard.future
        with self._lock:
            if self._closed:
                raise ClusterError("coordinator is closed")
            self._shards[shard.shard_id] = shard
            self._place_locked(shard)
            sends = self._pump_locked()
        self._send_planned(sends)
        return shard.future

    def _alive_links(self) -> list[_WorkerLink]:
        return [link for link in self._links if link.alive]

    def _fail_shard_locked(self, shard: _Shard, error: BaseException) -> None:
        """Settle a shard that can no longer run anywhere (lock held)."""
        self._shards.pop(shard.shard_id, None)
        self.counters["shards_failed"] += 1
        shard.future.set_exception(error)

    def _fail_unsendable(
        self, link: _WorkerLink, shard: _Shard, error: MessageTooLarge
    ) -> None:
        """Fail one shard whose message cannot cross the wire."""
        with self._lock:
            link.in_flight.pop(shard.shard_id, None)
            if shard.shard_id in self._shards:
                self._fail_shard_locked(shard, ClusterError(str(error)))
            sends = self._pump_locked()
        self._send_planned(sends)

    def _placeable_links(self) -> list[_WorkerLink]:
        """Links that may receive *new* shards (alive and not draining)."""
        return [link for link in self._links if link.alive and not link.draining]

    def _place_locked(self, shard: _Shard) -> None:
        """Pick a worker for a shard and queue it there (lock held)."""
        alive = self._placeable_links()
        if not alive:
            self._fail_shard_locked(
                shard, ClusterError("no alive cluster workers to place shards on")
            )
            return
        by_id = {link.worker_id: link for link in alive}
        candidates = [wid for wid in by_id if wid not in shard.excluded_workers]
        if not candidates:
            candidates = list(by_id)  # every survivor already tried: retry anyway
        if shard.constraints:
            # Capability-tagged placement: prefer workers whose tags
            # satisfy the shard's constraints; when none do, relax — any
            # worker *can* run a heavyweight parser, just more slowly.
            tagged = [
                wid
                for wid in candidates
                if satisfies(by_id[wid].tags, shard.constraints)
            ]
            if tagged:
                candidates = tagged
            else:
                self.counters["placement_relaxed"] += 1
        ranked = rank_workers(shard.placement_key, candidates)
        if self.placement == "balanced":
            rank_index = {wid: i for i, wid in enumerate(ranked)}
            ranked = sorted(ranked, key=lambda wid: (by_id[wid].backlog, rank_index[wid]))
        target = by_id[ranked[0]]
        shard.assigned_worker = target.worker_id
        shard.attempts += 1
        target.queued.append(shard)

    def _pump_locked(self) -> list[tuple[_WorkerLink, _Shard]]:
        """Move queued shards into free windows (lock held); returns sends."""
        sends: list[tuple[_WorkerLink, _Shard]] = []
        for link in self._links:
            if not link.alive or link.draining:
                continue
            while link.queued and len(link.in_flight) < link.window:
                shard = link.queued.popleft()
                link.in_flight[shard.shard_id] = shard
                sends.append((link, shard))
        return sends

    def _send_planned(self, sends: list[tuple[_WorkerLink, _Shard]]) -> None:
        """Transmit planned submissions outside the lock.

        Hashes already shipped this session always go hash-only.  For the
        rest the worker's capabilities decide: a worker *with* a local
        cache gets hash-only descriptors (it may hold the parse from an
        earlier run and then needs nothing at all; ``shard_need`` pulls
        any payloads it genuinely lacks), while a cache-less worker gets
        payloads inline, saving the guaranteed round trip.
        """
        for link, shard in sends:
            hash_first = bool(link.capabilities.get("cache"))
            descriptors: list[dict[str, Any]] = []
            shipped: list[str] = []
            skipped = 0
            for document, content_hash in zip(shard.documents, shard.content_hashes):
                descriptor: dict[str, Any] = {
                    "doc_id": document.doc_id,
                    "content_hash": content_hash,
                }
                if content_hash in link.sent_hashes or hash_first:
                    skipped += 1
                else:
                    descriptor["payload"] = document_to_dict(document)
                    shipped.append(content_hash)
                descriptors.append(descriptor)
            message = {
                "type": protocol.SUBMIT_SHARD,
                "shard_id": shard.shard_id,
                "spec": shard.spec.to_json_dict(),
                "docs": descriptors,
            }
            if shard.trace is not None:
                message["trace"] = shard.trace.to_json_dict()
            try:
                link.channel.send(message)
            except MessageTooLarge as exc:
                # The shard itself is unsendable — fail it alone (nothing
                # was written, the connection is fine); declaring the
                # worker dead would just re-bounce the shard around the
                # cluster until every worker was "lost".
                self._fail_unsendable(link, shard, exc)
                continue
            except (OSError, ProtocolError) as exc:
                self._on_worker_death(link, f"send failed: {exc}")
                continue
            with self._lock:
                self.counters["doc_payloads_sent"] += len(shipped)
                self.counters["doc_payloads_skipped"] += skipped
                link.sent_hashes.update(shipped)

    # ------------------------------------------------------------------ #
    # Reader / message handling
    # ------------------------------------------------------------------ #
    def _read_loop(self, link: _WorkerLink) -> None:
        reason = "connection closed by worker"
        try:
            while True:
                message = link.channel.recv()
                if message is None:
                    break
                link.last_seen = monotonic()
                kind = message.get("type")
                if kind == protocol.BATCH_RESULT:
                    self._on_batch_result(link, message)
                elif kind == protocol.SHARD_NEED:
                    self._on_shard_need(link, message)
                elif kind == protocol.SHARD_ERROR:
                    self._on_shard_error(link, message)
                elif kind == protocol.HEARTBEAT:
                    pass  # last_seen already refreshed
                elif kind == protocol.BYE:
                    reason = f"worker said bye: {message.get('reason')}"
                    break
                elif kind == protocol.ERROR:
                    reason = f"worker error: {message.get('message')}"
                    break
                else:
                    reason = f"unexpected message type {kind!r}"
                    break
        except (OSError, ProtocolError) as exc:
            reason = str(exc)
        self._on_worker_death(link, reason)

    def _on_batch_result(self, link: _WorkerLink, message: Mapping[str, Any]) -> None:
        shard_id = str(message.get("shard_id"))
        with self._lock:
            shard = self._shards.pop(shard_id, None)
            link.in_flight.pop(shard_id, None)
            if shard is None:
                # A worker we gave up on still answered after the shard was
                # re-run elsewhere: at-least-once dispatch, exactly-once
                # results — first writer won, this copy is dropped.
                self.counters["duplicate_results_ignored"] += 1
                sends = self._pump_locked()
            else:
                self.counters["shards_completed"] += 1
                self.counters["remote_cache_hits"] += int(message.get("cache_hits", 0))
                self.counters["remote_cache_misses"] += int(
                    message.get("cache_misses", 0)
                )
                self.last_batch_seconds = float(message.get("elapsed_seconds", 0.0))
                # Everything the shard carried is now materialised worker-side.
                link.sent_hashes.update(shard.content_hashes)
                sends = self._pump_locked()
        self._send_planned(sends)
        if shard is None:
            _CLUSTER_SHARDS.inc(outcome="duplicate")
            return
        _CLUSTER_SHARDS.inc(outcome="completed")
        # Worker-side spans ride the result frame; ingesting them into the
        # coordinator process's recorder is what joins worker execution
        # into the submitting request's trace tree.
        worker_spans = message.get("spans")
        if isinstance(worker_spans, list) and worker_spans:
            _tracing.default_recorder().ingest(worker_spans)
        # Worker-side phase tables and profiles ride the same frame.  The
        # table is stashed on the future (the submitting thread merges it
        # into its run's timer when the result resolves); the profile is
        # filed in the process profile store under the shard id, where
        # ``obs profile`` / the gateway PROFILE RPC can find it.
        worker_phases = message.get("phases")
        if isinstance(worker_phases, Mapping) and worker_phases:
            shard.future.phases = dict(worker_phases)
        worker_profile = message.get("profile")
        if isinstance(worker_profile, Mapping) and worker_profile:
            try:
                _profiling.default_store().merge_into(
                    f"shard:{shard_id}",
                    _profiling.Profile.from_dict(worker_profile),
                )
            except (TypeError, ValueError):
                pass  # malformed profile payloads must not fail the shard
        try:
            output = protocol.parse_batch_result(message)
        except (KeyError, TypeError, ValueError) as exc:
            shard.future.set_exception(
                ClusterError(f"malformed batch_result for {shard_id}: {exc}")
            )
            return
        if len(output[0]) != len(shard.documents):
            shard.future.set_exception(
                ClusterError(
                    f"worker {link.worker_id} returned {len(output[0])} results "
                    f"for shard {shard_id} of {len(shard.documents)} documents"
                )
            )
            return
        if self.ledger is not None:
            # Checkpoint *before* resolving the future: once the caller
            # observes the shard complete, a coordinator kill cannot
            # un-complete it on resume.
            try:
                self.ledger.record(
                    shard.placement_key,
                    shard.spec.fingerprint,
                    message.get("results", []),
                    message.get("decisions", []),
                    worker_id=link.worker_id,
                )
            except OSError as exc:
                log_event(
                    _LOG, "warning", "ledger_record_failed",
                    shard_id=shard_id, reason=str(exc),
                )
        shard.future.set_result(output)

    def _on_shard_need(self, link: _WorkerLink, message: Mapping[str, Any]) -> None:
        shard_id = str(message.get("shard_id"))
        needed = {str(item) for item in message.get("need", [])}
        with self._lock:
            shard = link.in_flight.get(shard_id)
        if shard is None:
            return  # re-placed meanwhile; the new worker owns it now
        docs = []
        for document, content_hash in zip(shard.documents, shard.content_hashes):
            if content_hash in needed:
                docs.append(
                    {
                        "doc_id": document.doc_id,
                        "content_hash": content_hash,
                        "payload": document_to_dict(document),
                    }
                )
                needed.discard(content_hash)
        try:
            link.channel.send(
                {"type": protocol.DOC_DATA, "shard_id": shard_id, "docs": docs}
            )
        except MessageTooLarge as exc:
            self._fail_unsendable(link, shard, exc)
            return
        except (OSError, ProtocolError) as exc:
            self._on_worker_death(link, f"send failed: {exc}")
            return
        with self._lock:
            self.counters["doc_payloads_sent"] += len(docs)
            self.counters["doc_payloads_skipped"] -= len(docs)
            link.sent_hashes.update(doc["content_hash"] for doc in docs)

    def _on_shard_error(self, link: _WorkerLink, message: Mapping[str, Any]) -> None:
        shard_id = str(message.get("shard_id"))
        with self._lock:
            shard = self._shards.pop(shard_id, None)
            link.in_flight.pop(shard_id, None)
            if shard is not None:
                self.counters["shards_failed"] += 1
            sends = self._pump_locked()
        self._send_planned(sends)
        if shard is None:
            return
        _CLUSTER_SHARDS.inc(outcome="failed")
        log_event(
            _LOG, "warning", "shard_failed",
            shard_id=shard_id, worker=link.worker_id,
            code=message.get("code", "error"),
            trace_id=shard.trace.trace_id if shard.trace is not None else None,
        )
        shard.future.set_exception(
            ClusterError(
                f"shard {shard_id} failed on worker {link.worker_id} "
                f"[{message.get('code', 'error')}]: {message.get('error')}"
            )
        )

    # ------------------------------------------------------------------ #
    # Fault handling
    # ------------------------------------------------------------------ #
    def _reap_link_locked(
        self, link: _WorkerLink
    ) -> "tuple[int, list[tuple[_WorkerLink, _Shard]], bool] | None":
        """Mark one link dead and requeue its orphans (lock held).

        **The single dedup/requeue code path** for every way a worker
        leaves: socket EOF/reset (reader loop), heartbeat timeout
        (monitor loop), a failed send, and graceful drains all land
        here.  The ``link.alive`` flip under the coordinator lock is the
        double-requeue guard — when a worker dies *between* a heartbeat
        timeout and the EOF landing, whichever path arrives second
        observes ``alive == False`` and returns ``None`` without
        touching a single shard.  The per-shard ``future.done`` /
        ``not in self._shards`` checks additionally skip shards that
        already completed or were re-placed, so a completed shard never
        moves.

        Returns ``(reassigned, sends, closing)``; ``None`` if the link
        was already reaped.
        """
        if not link.alive:
            return None
        link.alive = False
        closing = self._closed
        reassigned = 0
        if not closing:
            if link.draining:
                self.counters["workers_left"] += 1
            else:
                self.counters["workers_lost"] += 1
        orphans = list(link.in_flight.values()) + list(link.queued)
        link.in_flight.clear()
        link.queued.clear()
        sends: list[tuple[_WorkerLink, _Shard]] = []
        for shard in orphans:
            if shard.future.done or shard.shard_id not in self._shards:
                continue  # completed or already re-placed: never moved twice
            shard.excluded_workers.add(link.worker_id)
            if not closing:
                self.counters["shards_reassigned"] += 1
                reassigned += 1
            self._place_locked(shard)
        if not closing:
            sends = self._pump_locked()
        return reassigned, sends, closing

    def _on_worker_death(self, link: _WorkerLink, reason: str) -> None:
        with self._lock:
            reaped = self._reap_link_locked(link)
        if reaped is None:
            return  # another detection path won the race; nothing to redo
        reassigned, sends, closing = reaped
        graceful = link.draining
        link.channel.close()
        if not closing:
            if graceful:
                self.membership.record_leave(link.worker_id)
                log_event(
                    _LOG, "info", "worker_left",
                    worker=link.worker_id, reason=reason,
                    shards_reassigned=reassigned,
                )
            else:
                self.membership.record_death(link.worker_id)
                _CLUSTER_WORKERS_LOST.inc()
                log_event(
                    _LOG, "warning", "worker_lost",
                    worker=link.worker_id, reason=reason,
                    shards_reassigned=reassigned,
                )
            if reassigned:
                _CLUSTER_SHARDS.inc(reassigned, outcome="reassigned")
        self._send_planned(sends)

    def _monitor_loop(self) -> None:
        poll = max(0.05, min(self.heartbeat_interval, self.heartbeat_timeout / 4))
        while not self._monitor_stop.wait(poll):
            now = monotonic()
            for link in list(self._links):
                if link.alive and now - link.last_seen > self.heartbeat_timeout:
                    self._on_worker_death(
                        link,
                        f"no heartbeat for {self.heartbeat_timeout:.1f}s",
                    )

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        """Cluster telemetry (the ``cluster_*`` block of ``ExecutionStats``)."""
        with self._lock:
            stats: dict[str, Any] = dict(self.counters)
            stats["workers_alive"] = sum(1 for link in self._links if link.alive)
            stats["workers_draining"] = sum(
                1 for link in self._links if link.alive and link.draining
            )
            stats["bytes_sent"] = sum(link.channel.bytes_sent for link in self._links)
            stats["bytes_received"] = sum(
                link.channel.bytes_received for link in self._links
            )
        if self.ledger is not None:
            stats["ledger_entries"] = len(self.ledger)
        _CLUSTER_BYTES.set(stats["bytes_sent"], direction="sent")
        _CLUSTER_BYTES.set(stats["bytes_received"], direction="received")
        return stats

    def workers(self) -> list[dict[str, Any]]:
        """Connected workers and their live backlog (CLI summary block)."""
        with self._lock:
            return [
                {
                    "worker_id": link.worker_id,
                    "address": link.address,
                    "alive": link.alive,
                    "draining": link.draining,
                    "source": link.source,
                    "in_flight": len(link.in_flight),
                    "queued": len(link.queued),
                    "capabilities": dict(link.capabilities),
                    "tags": dict(link.tags),
                }
                for link in self._links
            ]

    def status(self) -> dict[str, Any]:
        """The full membership/counters snapshot (``cluster status``)."""
        return {
            "counters": self.stats(),
            "workers": self.workers(),
            "membership": self.membership.snapshot(),
            "membership_counters": dict(self.membership.counters),
        }

    def close(self) -> None:
        """Fail outstanding shards, say goodbye, and join the threads."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            outstanding = list(self._shards.values())
            self._shards.clear()
            links = list(self._links)
        for shard in outstanding:
            if not shard.future.done:
                shard.future.set_exception(
                    ClusterError(f"coordinator closed with shard {shard.shard_id} pending")
                )
        self._monitor_stop.set()
        for link in links:
            if link.alive:
                try:
                    link.channel.send({"type": protocol.DRAIN})
                except (OSError, ProtocolError):
                    pass
        for link in links:
            link.channel.close()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
        for link in links:
            if link.reader is not None and link.reader is not threading.current_thread():
                link.reader.join(timeout=5.0)

    def __enter__(self) -> "ClusterCoordinator":
        return self.connect() if not self._links else self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
