"""The cluster wire protocol: length-prefixed NDJSON messages over TCP.

Every message on a cluster connection is one JSON object, encoded as a
single UTF-8 line and framed by an ASCII decimal byte-length prefix::

    <decimal length of body>\\n
    {"type": "...", ...}\\n

The prefix makes framing robust (a reader never has to guess where a
message ends, even mid-recovery), while the NDJSON body keeps the stream
greppable — ``nc`` into a worker and you can read the conversation.

Message types
-------------
``hello`` / ``hello_ack``
    Version + capability handshake.  The coordinator opens with ``hello``
    (protocol version, heartbeat interval); the worker answers with its
    identity, parallel slot count, and whether it runs a local parse
    cache.  Version mismatches are refused with ``error``.
``submit_shard``
    One shard of work: a :class:`WorkerSpec` (parser name, α override,
    and the coordinator-side ``config_fingerprint()`` the worker must
    reproduce) plus the documents as **content-hash-addressed
    descriptors**.  Payloads are only attached for hashes the coordinator
    has not shipped to this worker before; a cache- or store-warm worker
    resolves the rest locally and skips the re-transfer entirely.  An
    optional ``trace`` field carries the submitting request's
    :class:`~repro.obs.tracing.TraceContext` as JSON so worker-side spans
    join the same distributed trace; workers that predate tracing ignore
    it (and coordinators tolerate replies without ``spans``), which is
    why this needs no protocol version bump.
``shard_need``
    The worker's response when descriptors arrived hash-only and it holds
    neither the document nor a cached parse: the list of content hashes
    it needs payloads for.
``doc_data``
    The coordinator's payload top-up answering ``shard_need``.
``batch_result``
    One shard's ordered results and routing decisions, plus worker-side
    cache counters and timing.
``shard_error``
    A shard failed on the worker (bad spec fingerprint, unknown parser,
    worker-side crash); carries the error text and a machine-checkable
    ``code``.
``heartbeat``
    Worker liveness beacon, sent every ``heartbeat_interval`` seconds.
    The coordinator declares a silent worker dead after its timeout and
    re-queues the worker's in-flight shards.
``drain`` / ``bye``
    Graceful shutdown: ``drain`` asks the peer to finish in-flight work
    and reply ``bye``; ``bye`` ends the conversation in either direction.
``join`` / ``join_ack`` / ``leave`` / ``leave_ack``
    Live-membership announcements (``repro.elastic``): a starting worker
    sends ``join`` (identity, listen address, capability tags) to a
    coordinator's membership listener, which dials the worker back over
    the ordinary ``hello`` path and answers ``join_ack``; ``leave`` asks
    the coordinator to drain one worker gracefully.  Membership support
    is advertised as a ``capabilities: {"membership": true}`` flag in
    ``hello``/``hello_ack`` — v1 peers ignore the unknown key and keep
    working as a fixed-list cluster, so no version bump.
``status`` / ``status_result``
    Membership-listener introspection: current workers, their states and
    tags, and the coordinator counters (``cluster status``).
``error``
    Fatal connection-level failure (before/outside any shard).

Documents cross the wire as :func:`repro.documents.simpdf.document_to_dict`
payloads — the same JSON schema the on-disk SimPDF container uses — so
the cluster introduces no second serialisation format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.core.engine import RoutingDecision
from repro.parsers.base import ParseResult

# The framing machinery (length-prefixed NDJSON read/write, oversized-
# frame refusal, byte counters) lives in repro.utils.wire and is shared
# with the gateway wire; these names are re-exported unchanged so every
# historical `from repro.cluster.protocol import ...` keeps working.
from repro.utils.wire import (  # noqa: F401  (re-exports)
    MAX_MESSAGE_BYTES,
    MessageChannel,
    MessageTooLarge,
    ProtocolError,
    encode_message,
)

#: Wire protocol version.  Bump on any incompatible message change; both
#: sides refuse to talk across versions (the handshake checks it).
PROTOCOL_VERSION = 1


# ---------------------------------------------------------------------- #
# Message type names
# ---------------------------------------------------------------------- #
HELLO = "hello"
HELLO_ACK = "hello_ack"
SUBMIT_SHARD = "submit_shard"
SHARD_NEED = "shard_need"
DOC_DATA = "doc_data"
BATCH_RESULT = "batch_result"
SHARD_ERROR = "shard_error"
HEARTBEAT = "heartbeat"
DRAIN = "drain"
BYE = "bye"
ERROR = "error"
# Live-membership messages (repro.elastic); capability-flagged, so the
# protocol version stays 1 — v1 peers never see or send these.
JOIN = "join"
JOIN_ACK = "join_ack"
LEAVE = "leave"
LEAVE_ACK = "leave_ack"
STATUS = "status"
STATUS_RESULT = "status_result"


# ---------------------------------------------------------------------- #
# The worker spec
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class WorkerSpec:
    """What a worker must execute a shard with.

    The worker resolves ``parser`` through its *own*
    :class:`~repro.pipeline.ParsePipeline` (registry names, engine names,
    or pre-installed engine instances), applies the α override, and then
    proves it built the same thing the coordinator holds by comparing
    ``config_fingerprint()`` output against :attr:`fingerprint` — a
    mismatched worker (different version, different trained weights)
    refuses the shard rather than silently parsing differently.
    """

    parser: str
    fingerprint: str
    alpha: float | None = None
    #: Worker-side cache policy for this shard ("off"/"read"/"write"/
    #: "readwrite"); applied only when the worker runs a local cache.
    cache: str = "readwrite"

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "parser": self.parser,
            "fingerprint": self.fingerprint,
            "alpha": self.alpha,
            "cache": self.cache,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "WorkerSpec":
        return cls(
            parser=str(payload["parser"]),
            fingerprint=str(payload["fingerprint"]),
            alpha=None if payload.get("alpha") is None else float(payload["alpha"]),
            cache=str(payload.get("cache", "readwrite")),
        )


# ---------------------------------------------------------------------- #
# Result / decision serialisation (shared with the cache's JSONL schema)
# ---------------------------------------------------------------------- #
def decision_to_dict(decision: RoutingDecision) -> dict[str, Any]:
    return {
        "doc_id": decision.doc_id,
        "chosen_parser": decision.chosen_parser,
        "stage": decision.stage,
        "predicted_improvement": decision.predicted_improvement,
        "doc_type": decision.doc_type,
    }


def decision_from_dict(payload: Mapping[str, Any]) -> RoutingDecision:
    return RoutingDecision(
        doc_id=str(payload["doc_id"]),
        chosen_parser=str(payload["chosen_parser"]),
        stage=str(payload["stage"]),
        predicted_improvement=float(payload.get("predicted_improvement", 0.0)),
        doc_type=str(payload.get("doc_type", "pdf")),
    )


def batch_result_message(
    shard_id: str,
    results: Iterable[ParseResult],
    decisions: Iterable[RoutingDecision],
    worker_id: str,
    elapsed_seconds: float,
    cache_hits: int = 0,
    cache_misses: int = 0,
    spans: "list[dict[str, Any]] | None" = None,
    phases: "Mapping[str, Any] | None" = None,
    profile: "Mapping[str, Any] | None" = None,
) -> dict[str, Any]:
    """Build a ``batch_result`` message from worker-side objects.

    ``spans`` optionally ships the worker-side span records of this
    shard's trace (the :class:`~repro.obs.SpanRecorder` schema) back to
    the coordinator, which ingests them into its own recorder — that is
    how one ``obs trace`` tree shows worker execution.  ``phases``
    (a :meth:`~repro.obs.PhaseTimer.snapshot` table) and ``profile``
    (a :meth:`~repro.obs.Profile.to_dict` payload) ride the same way:
    the coordinator merges the phase table into the submitting request's
    timer and files the profile under the shard id.  All three fields
    are version-tolerant: old coordinators ignore them.
    """
    message = {
        "type": BATCH_RESULT,
        "shard_id": shard_id,
        "worker_id": worker_id,
        "elapsed_seconds": elapsed_seconds,
        "results": [result.to_json_dict() for result in results],
        "decisions": [decision_to_dict(decision) for decision in decisions],
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
    }
    if spans:
        message["spans"] = list(spans)
    if phases:
        message["phases"] = dict(phases)
    if profile:
        message["profile"] = dict(profile)
    return message


def parse_batch_result(
    message: Mapping[str, Any],
) -> tuple[list[ParseResult], list[RoutingDecision]]:
    """Rehydrate a ``batch_result`` message's payload."""
    results = [ParseResult.from_json_dict(item) for item in message.get("results", [])]
    decisions = [decision_from_dict(item) for item in message.get("decisions", [])]
    return results, decisions


# ---------------------------------------------------------------------- #
# Rendezvous placement
# ---------------------------------------------------------------------- #
def shard_placement_key(content_hashes: Iterable[str]) -> str:
    """Stable placement key of one shard (order-sensitive over its docs).

    Repeated runs over the same corpus chunk into the same batches, so the
    same key — and therefore, under rendezvous hashing against a stable
    worker set, the same worker — which is what keeps that worker's local
    parse cache and document store warm across runs.
    """
    from repro.utils.hashing import stable_hash_hex

    return stable_hash_hex("shard-placement", *content_hashes)


def rank_workers(placement_key: str, worker_ids: Iterable[str]) -> list[str]:
    """Rendezvous (highest-random-weight) order of workers for one shard.

    Every (shard, worker) pair gets an independent stable score; the
    shard prefers workers in descending score order.  Removing a worker
    only re-places the shards that preferred it — every other shard keeps
    its worker, which is exactly the cache-friendly property plain modulo
    hashing lacks.
    """
    from repro.utils.hashing import stable_hash

    return sorted(
        worker_ids,
        key=lambda worker_id: stable_hash("rendezvous", placement_key, worker_id),
        reverse=True,
    )
