"""Multi-process distributed execution: workers, a coordinator, a backend.

``repro.cluster`` turns the simulator's campaign model into something you
can actually run across processes and hosts:

* :mod:`repro.cluster.protocol` — length-prefixed NDJSON messages over
  TCP, with content-hash-addressed document payloads;
* :mod:`repro.cluster.worker` — :class:`WorkerDaemon`, the process that
  parses shards (``adaparse-repro worker`` runs one);
* :mod:`repro.cluster.coordinator` — :class:`ClusterCoordinator`,
  rendezvous shard placement, per-worker windows, heartbeat fault
  detection, and exactly-once result collection;
* :mod:`repro.cluster.backend` — :class:`RemoteBackend`, registered as
  ``"remote"`` in the execution-backend registry, so
  ``ParseRequest(backend="remote", backend_options={"workers": ...})``
  and :class:`repro.serve.ParseService` run on a cluster unchanged.

Public names resolve lazily (PEP 562): importing :mod:`repro` — or even
this package — does not pull in sockets, the pipeline, or any backend
until a cluster component is actually used.
"""

from __future__ import annotations

#: Public name → "module:attribute", resolved on first access.
_LAZY_EXPORTS: dict[str, str] = {
    "ClusterCoordinator": "repro.cluster.coordinator:ClusterCoordinator",
    "ClusterError": "repro.cluster.coordinator:ClusterError",
    "MessageChannel": "repro.cluster.protocol:MessageChannel",
    "PROTOCOL_VERSION": "repro.cluster.protocol:PROTOCOL_VERSION",
    "ProtocolError": "repro.cluster.protocol:ProtocolError",
    "RemoteBackend": "repro.cluster.backend:RemoteBackend",
    "ShardFuture": "repro.cluster.coordinator:ShardFuture",
    "WorkerDaemon": "repro.cluster.worker:WorkerDaemon",
    "WorkerSpec": "repro.cluster.protocol:WorkerSpec",
    "rank_workers": "repro.cluster.protocol:rank_workers",
    "shard_placement_key": "repro.cluster.protocol:shard_placement_key",
    "worker_spec_for": "repro.cluster.backend:worker_spec_for",
}

__all__ = sorted(_LAZY_EXPORTS)


def __getattr__(name: str):
    """Resolve lazily exported public names (delegates to repro.utils.lazy)."""
    from repro.utils.lazy import resolve_lazy

    return resolve_lazy(__name__, globals(), _LAZY_EXPORTS, name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
