"""The cluster worker daemon: a process that parses shards for a coordinator.

A :class:`WorkerDaemon` listens on a TCP port and speaks the
:mod:`repro.cluster.protocol`.  For every shard it

1. resolves the shard's :class:`~repro.cluster.protocol.WorkerSpec`
   through its **own** :class:`~repro.pipeline.ParsePipeline` — registry
   parser names, ``adaparse_*`` engine names (trained locally on first
   use), or engines pre-installed on the pipeline — and refuses the shard
   unless the locally built parser reproduces the coordinator's
   ``config_fingerprint()`` exactly;
2. resolves the shard's content-hash-addressed document descriptors
   against its session document store and (when configured) its local
   :class:`~repro.cache.ParseCache`, asking the coordinator for payloads
   only for hashes it cannot serve — a warm worker re-parses nothing and
   re-transfers nothing;
3. runs the cache misses as **one sub-batch** through a local
   :class:`~repro.pipeline.backends.ExecutionBackend` (preserving the
   engine's per-batch α semantics, exactly like the parent-side cache
   wrapper does), stores fresh parses policy-permitting, and
4. streams an ordered ``batch_result`` back.

Shards execute on a small slot pool (default: the local backend's worker
count), so transfer and parse overlap; a heartbeat thread beacons
liveness so the coordinator can distinguish *slow* from *dead*.

The daemon is embeddable (tests and benchmarks run several in one
process, each on its own port) and is what ``adaparse-repro worker``
runs in daemon mode.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
from contextlib import ExitStack
from time import perf_counter
from typing import Any, Callable, Mapping

from repro.cache import CachePolicy, ParseCache
from repro.cache.keys import CacheKey
from repro.cluster import protocol
from repro.cluster.protocol import (
    MessageChannel,
    MessageTooLarge,
    ProtocolError,
    WorkerSpec,
)
from repro.documents.document import SciDocument
from repro.documents.simpdf import document_from_dict
from repro.obs import profiling as _profiling
from repro.obs import tracing as _tracing
from repro.obs.logging import get_logger, log_event
from repro.obs.tracing import SpanRecorder, TraceContext
from repro.parsers.base import ParseResult

#: Thread-name prefix of daemon-owned threads (accept/reader/slots/heartbeat).
WORKER_THREAD_PREFIX = "repro-cluster-worker"

_LOG = get_logger("cluster.worker")


class SpecError(RuntimeError):
    """A shard's worker spec could not be satisfied on this daemon."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class _ShardJob:
    """One shard queued for execution on the slot pool."""

    __slots__ = ("shard_id", "spec", "descriptors", "trace")

    def __init__(
        self,
        shard_id: str,
        spec: WorkerSpec,
        descriptors: list[dict[str, Any]],
        trace: TraceContext | None = None,
    ) -> None:
        self.shard_id = shard_id
        self.spec = spec
        self.descriptors = descriptors
        self.trace = trace


class WorkerDaemon:
    """Serve parse shards over TCP (see the module docstring).

    Parameters
    ----------
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    pipeline:
        The pipeline shards resolve parsers through.  Pass one with
        pre-installed ``engines`` to serve custom parsers; by default a
        fresh pipeline over the default registry is built.
    backend / backend_options:
        The local :class:`~repro.pipeline.backends.ExecutionBackend`
        parsing runs on (registry name; default ``serial``).
    cache:
        Optional local :class:`~repro.cache.ParseCache` (or a directory
        path for a persistent one).  A warm cache lets the worker answer
        shards without ever receiving the documents.
    slots:
        Shards executing concurrently (default: the local backend's
        worker count).
    name:
        Stable worker identity used for rendezvous placement.  Give
        long-lived workers stable names so repeated runs land shards on
        the same (cache-warm) worker; the default derives from the bound
        address.
    heartbeat_interval:
        Default liveness beacon period (the coordinator's ``hello`` may
        override it per connection).
    tags:
        Capability tags advertised in the ``hello_ack`` handshake
        (``{"gpu": True, "cpu_class": "large"}``); coordinators route
        constrained (heavyweight-parser) shards to workers whose tags
        satisfy them.  Values are normalised from CLI strings
        (``"true"`` → ``True``, ``"8"`` → ``8``).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        pipeline: Any | None = None,
        backend: str = "serial",
        backend_options: Mapping[str, Any] | None = None,
        cache: "ParseCache | str | None" = None,
        slots: int | None = None,
        name: str | None = None,
        heartbeat_interval: float = 1.0,
        tags: Mapping[str, Any] | None = None,
    ) -> None:
        self._host = host
        self._requested_port = port
        self._pipeline = pipeline
        self._backend_name = backend
        self._backend_options = dict(backend_options or {})
        if isinstance(cache, (str, os.PathLike)):
            cache = ParseCache(cache)
        self.cache = cache
        self._slots = slots
        self._name = name
        self.heartbeat_interval = heartbeat_interval
        from repro.elastic.policy import coerce_tags

        self.tags = coerce_tags(tags)

        self._listener: socket.socket | None = None
        self._bound_port: int | None = None
        self._backend = None
        self._accept_thread: threading.Thread | None = None
        self._handlers: list[_ConnectionHandler] = []
        self._lock = threading.Lock()
        self._stopped = threading.Event()
        self._started = False

        #: Session document store: content hash → document.  Shared across
        #: connections so a reconnecting coordinator skips re-transfer too.
        self._doc_store: dict[str, SciDocument] = {}
        self._doc_store_lock = threading.Lock()
        #: Resolved specs: config fingerprint → (parser, batch callable).
        self._workers_by_fingerprint: dict[str, Callable] = {}
        self._resolve_lock = threading.Lock()
        #: Counters exposed in ``describe()`` and CLI logging.  Updated
        #: from concurrent slot threads, so bumps go through ``_bump``.
        self.counters = {
            "shards_completed": 0,
            "shards_failed": 0,
            "docs_parsed": 0,
            "docs_from_cache": 0,
            "docs_received": 0,
            "docs_reused": 0,
        }
        self._counters_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def port(self) -> int:
        if self._bound_port is None:
            raise RuntimeError("worker is not started")
        return self._bound_port

    @property
    def address(self) -> str:
        return f"{self._host}:{self.port}"

    @property
    def name(self) -> str:
        if self._name is not None:
            return self._name
        return f"worker-{self.address}"

    @property
    def pipeline(self):
        if self._pipeline is None:
            from repro.pipeline.pipeline import ParsePipeline

            self._pipeline = ParsePipeline()
        return self._pipeline

    def start(self) -> "WorkerDaemon":
        """Bind, spin up the local backend, and begin accepting coordinators."""
        if self._started:
            raise RuntimeError("worker already started")
        from repro.pipeline.backends.base import create_backend

        self._backend = create_backend(self._backend_name, self._backend_options)
        if self._slots is None:
            self._slots = max(1, self._backend.workers)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._requested_port))
        listener.listen(8)
        self._listener = listener
        self._bound_port = listener.getsockname()[1]
        self._started = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"{WORKER_THREAD_PREFIX}-accept-{self.port}",
            daemon=True,
        )
        self._accept_thread.start()
        log_event(
            _LOG, "info", "listening",
            worker=self.name, host=self._host, port=self.port,
        )
        return self

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopped.is_set():
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed by stop()/kill()
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            handler = _ConnectionHandler(self, MessageChannel(sock))
            with self._lock:
                if self._stopped.is_set():
                    handler.channel.close()
                    return
                self._handlers.append(handler)
            handler.start()

    def serve_forever(self) -> None:
        """Block until :meth:`stop` (the CLI daemon mode)."""
        if not self._started:
            self.start()
        self._stopped.wait()

    def stop(self, drain: bool = True) -> None:
        """Stop accepting and shut down; ``drain`` finishes in-flight shards."""
        if not self._started or self._stopped.is_set():
            self._stopped.set()
            return
        self._stopped.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            handlers = list(self._handlers)
        for handler in handlers:
            handler.shutdown(drain=drain)
        if self._backend is not None:
            self._backend.close()

    def kill(self) -> None:
        """Die abruptly: sever every connection without drain or goodbye.

        The crash double for fault-tolerance tests — from the
        coordinator's point of view this is indistinguishable from the
        worker process being SIGKILLed (immediate EOF on the socket).
        """
        self._stopped.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            handlers = list(self._handlers)
        for handler in handlers:
            handler.channel.close()
        for handler in handlers:
            handler.shutdown(drain=False)
        if self._backend is not None:
            self._backend.close()

    def __enter__(self) -> "WorkerDaemon":
        return self.start() if not self._started else self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Live membership (repro.elastic)
    # ------------------------------------------------------------------ #
    def _announce(
        self,
        coordinator_address: str,
        message: Mapping[str, Any],
        *,
        timeout: float,
        retries: int,
        retry_delay: float,
    ) -> dict[str, Any]:
        """One request-response on a coordinator's membership listener."""
        from time import sleep

        host, _, port = coordinator_address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"coordinator address must be host:port, got {coordinator_address!r}"
            )
        last_error: Exception | None = None
        for attempt in range(max(1, retries)):
            if attempt:
                sleep(retry_delay)
            try:
                sock = socket.create_connection((host, int(port)), timeout=timeout)
            except OSError as exc:
                # The membership listener may start moments after us
                # (the coordinator dials lazily); keep knocking.
                last_error = exc
                continue
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            channel = MessageChannel(sock)
            try:
                channel.send(dict(message))
                reply = channel.recv()
            except (OSError, ProtocolError) as exc:
                last_error = exc
                continue
            finally:
                channel.close()
            if reply is None:
                last_error = ProtocolError("membership listener closed mid-reply")
                continue
            return reply
        raise ProtocolError(
            f"could not announce to coordinator at {coordinator_address}: "
            f"{last_error}"
        )

    def join(
        self,
        coordinator_address: str,
        *,
        timeout: float = 5.0,
        retries: int = 20,
        retry_delay: float = 0.5,
    ) -> str:
        """Announce this (started) worker to a running coordinator.

        Sends a ``join`` to the coordinator's membership listener; the
        coordinator dials back through the ordinary handshake, so after
        this returns the worker is a full cluster member receiving
        shards.  Retries while the listener is still coming up.
        """
        if not self._started:
            raise RuntimeError("start the worker before joining a coordinator")
        reply = self._announce(
            coordinator_address,
            {
                "type": protocol.JOIN,
                "protocol": protocol.PROTOCOL_VERSION,
                "worker_id": self.name,
                "address": self.address,
                "tags": dict(self.tags),
            },
            timeout=timeout,
            retries=retries,
            retry_delay=retry_delay,
        )
        if reply.get("type") != protocol.JOIN_ACK or not reply.get("accepted"):
            raise ProtocolError(
                f"coordinator refused the join: {reply.get('message', reply)}"
            )
        log_event(
            _LOG, "info", "joined_coordinator",
            worker=self.name, coordinator=coordinator_address,
        )
        return str(reply.get("worker_id", self.name))

    def leave(
        self,
        coordinator_address: str,
        *,
        timeout: float = 5.0,
    ) -> bool:
        """Ask the coordinator to drain this worker out gracefully.

        Best-effort: returns ``False`` (never raises on wire errors)
        when the coordinator is unreachable — it will then observe the
        departure as an EOF/timeout death instead, which is safe, just
        noisier.
        """
        try:
            reply = self._announce(
                coordinator_address,
                {"type": protocol.LEAVE, "worker_id": self.name},
                timeout=timeout,
                retries=1,
                retry_delay=0.0,
            )
        except (OSError, ProtocolError, ValueError):
            return False
        return bool(reply.get("accepted"))

    def _bump(self, counter: str, n: int = 1) -> None:
        """Increment a counter (slot threads race on plain ``+=``)."""
        with self._counters_lock:
            self.counters[counter] += n

    def describe(self) -> dict[str, Any]:
        """Inventory of this worker (counters, store sizes, backend stats)."""
        with self._counters_lock:
            description: dict[str, Any] = dict(self.counters)
        description.update(
            {
                "name": self.name,
                "address": self.address if self._bound_port is not None else None,
                "slots": self._slots,
                "tags": dict(self.tags),
                "doc_store_entries": len(self._doc_store),
                "cache": self.cache is not None,
                "backend": (
                    self._backend.stats().to_json_dict()
                    if self._backend is not None
                    else None
                ),
            }
        )
        return description

    # ------------------------------------------------------------------ #
    # Shard execution (called from connection slot threads)
    # ------------------------------------------------------------------ #
    def _resolve_spec(self, spec: WorkerSpec) -> Callable:
        """The batch callable for one spec, fingerprint-checked and memoised."""
        with self._resolve_lock:
            worker = self._workers_by_fingerprint.get(spec.fingerprint)
            if worker is not None:
                return worker
            from repro.core.engine import AdaParseEngine

            try:
                parser = self.pipeline.resolve_parser(spec.parser, alpha=spec.alpha)
            except KeyError as exc:
                raise SpecError("unknown_parser", str(exc)) from exc
            fingerprint = parser.config_fingerprint()
            if fingerprint != spec.fingerprint:
                raise SpecError(
                    "fingerprint_mismatch",
                    f"worker built {spec.parser!r} with fingerprint {fingerprint}, "
                    f"but the coordinator expects {spec.fingerprint}; parser "
                    f"versions or trained weights differ between the hosts",
                )
            if isinstance(parser, AdaParseEngine):
                worker = parser.route_batch
            else:
                worker = parser.parse_with_telemetry
            self._workers_by_fingerprint[spec.fingerprint] = worker
            return worker

    def _store_documents(self, docs: list[dict[str, Any]]) -> int:
        """Install payload-bearing descriptors into the session doc store."""
        received = 0
        with self._doc_store_lock:
            for descriptor in docs:
                payload = descriptor.get("payload")
                if payload is None:
                    continue
                content_hash = str(descriptor["content_hash"])
                if content_hash not in self._doc_store:
                    self._doc_store[content_hash] = document_from_dict(payload)
                    received += 1
        self._bump("docs_received", received)
        return received

    def missing_hashes(self, spec: WorkerSpec, docs: list[dict[str, Any]]) -> list[str]:
        """Content hashes this worker can serve neither from store nor cache."""
        policy = CachePolicy.coerce(spec.cache)
        missing: list[str] = []
        for descriptor in docs:
            if descriptor.get("payload") is not None:
                continue
            content_hash = str(descriptor["content_hash"])
            with self._doc_store_lock:
                if content_hash in self._doc_store:
                    continue
            if (
                self.cache is not None
                and policy.reads
                and self.cache.lookup(CacheKey(content_hash, spec.fingerprint))
                is not None
            ):
                continue
            missing.append(content_hash)
        return missing

    def run_shard(
        self, spec: WorkerSpec, descriptors: list[dict[str, Any]]
    ) -> tuple[list[ParseResult], list, int, int]:
        """Execute one fully resolvable shard.

        Returns ``(results, decisions, cache_hits, cache_misses)`` with
        results in descriptor order.  Cache hits are replayed from the
        local cache; the remaining documents run as **one** sub-batch on
        the local execution backend (matching the parent-side cache
        wrapper's α semantics), and fresh parses are stored when the
        spec's policy writes.
        """
        worker = self._resolve_spec(spec)
        policy = CachePolicy.coerce(spec.cache) if self.cache is not None else CachePolicy.OFF
        timer = _profiling.current_timer() if _profiling.phases_enabled() else None
        n = len(descriptors)
        slots: list[tuple[ParseResult, Any] | None] = [None] * n
        to_parse: list[tuple[int, str, SciDocument]] = []
        hits = 0
        lookup_seconds = 0.0
        lookup_calls = 0
        store_seconds = 0.0
        store_calls = 0
        for i, descriptor in enumerate(descriptors):
            content_hash = str(descriptor["content_hash"])
            key = CacheKey(content_hash, spec.fingerprint)
            if policy.reads:
                tick = perf_counter()
                entry = self.cache.lookup(key)  # type: ignore[union-attr]
                lookup_seconds += perf_counter() - tick
                lookup_calls += 1
                if entry is not None:
                    slots[i] = (entry.fresh_result(), entry.decision)
                    hits += 1
                    continue
            with self._doc_store_lock:
                document = self._doc_store.get(content_hash)
            if document is None:
                raise SpecError(
                    "missing_document",
                    f"document {content_hash} is neither stored nor cached on "
                    f"this worker (protocol error: submit before doc_data?)",
                )
            to_parse.append((i, content_hash, document))
            if descriptor.get("payload") is None:
                self._bump("docs_reused")
        if to_parse:
            sub_batch = [document for _, _, document in to_parse]
            started = perf_counter()
            if timer is not None:
                # Capture the parse's phase table through the local backend
                # exactly as the pipeline does for its own pools — a fresh
                # child timer whose table merges back, so the shipped table
                # carries the same engine-internal keys on every worker
                # backend (pool threads do not inherit contextvars).
                from repro.pipeline.pipeline import _ChildPhasedWorker

                output, table = self._map_on_backend(
                    _ChildPhasedWorker(worker), sub_batch
                )
                results, decisions = output
                timer.merge_table(table)
            else:
                results, decisions = self._map_on_backend(worker, sub_batch)
            elapsed = perf_counter() - started
            if len(results) != len(sub_batch):
                raise SpecError(
                    "bad_worker_output",
                    f"worker returned {len(results)} results for "
                    f"{len(sub_batch)} documents",
                )
            decision_by_doc = {d.doc_id: d for d in decisions}
            per_doc_seconds = elapsed / len(sub_batch)
            for (i, content_hash, _), result in zip(to_parse, results):
                decision = decision_by_doc.get(result.doc_id)
                if policy.writes:
                    tick = perf_counter()
                    self.cache.store(  # type: ignore[union-attr]
                        CacheKey(content_hash, spec.fingerprint),
                        result,
                        decision,
                        compute_seconds=per_doc_seconds,
                    )
                    store_seconds += perf_counter() - tick
                    store_calls += 1
                slots[i] = (result, decision)
        results_out: list[ParseResult] = []
        decisions_out: list = []
        for slot in slots:
            assert slot is not None
            result, decision = slot
            results_out.append(result)
            if decision is not None:
                decisions_out.append(decision)
        if timer is not None:
            if lookup_calls:
                timer.record(
                    "cache.lookup",
                    lookup_seconds,
                    cpu_seconds=lookup_seconds,
                    calls=lookup_calls,
                )
            if store_calls:
                timer.record(
                    "cache.store",
                    store_seconds,
                    cpu_seconds=store_seconds,
                    calls=store_calls,
                )
        self._bump("docs_parsed", len(to_parse))
        self._bump("docs_from_cache", hits)
        return results_out, decisions_out, hits, len(to_parse)

    def _map_on_backend(self, worker: Callable, sub_batch: list[SciDocument]):
        """Run one sub-batch through the local execution backend."""
        assert self._backend is not None
        for output in self._backend.map_ordered(worker, [sub_batch]):
            return output
        raise SpecError("backend_closed", "local execution backend yielded nothing")


class _ConnectionHandler:
    """One coordinator connection: reader + slot pool + heartbeat."""

    def __init__(self, daemon: WorkerDaemon, channel: MessageChannel) -> None:
        self.daemon = daemon
        self.channel = channel
        self._queue: "queue.Queue[_ShardJob | None]" = queue.Queue()
        self._pending: dict[str, _ShardJob] = {}  # awaiting doc_data
        self._pending_lock = threading.Lock()
        self._in_flight = 0
        self._in_flight_lock = threading.Lock()
        self._idle = threading.Condition(self._in_flight_lock)
        self._draining = threading.Event()
        self._closed = threading.Event()
        self._heartbeat_interval = daemon.heartbeat_interval
        self._threads: list[threading.Thread] = []

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        reader = threading.Thread(
            target=self._read_loop,
            name=f"{WORKER_THREAD_PREFIX}-reader",
            daemon=True,
        )
        self._threads.append(reader)
        reader.start()

    def _start_workers(self) -> None:
        for index in range(self.daemon._slots or 1):
            slot = threading.Thread(
                target=self._slot_loop,
                name=f"{WORKER_THREAD_PREFIX}-slot-{index}",
                daemon=True,
            )
            self._threads.append(slot)
            slot.start()
        beat = threading.Thread(
            target=self._heartbeat_loop,
            name=f"{WORKER_THREAD_PREFIX}-heartbeat",
            daemon=True,
        )
        self._threads.append(beat)
        beat.start()

    def shutdown(self, drain: bool = True) -> None:
        if drain and not self._closed.is_set():
            self._begin_drain()
            self._await_drained(timeout=30.0)
            self._safe_send({"type": protocol.BYE, "reason": "worker stopping"})
        self._close()
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=5.0)

    def _close(self) -> None:
        self._closed.set()
        self._draining.set()
        self._queue.put(None)
        self.channel.close()

    # ------------------------------------------------------------------ #
    # Reader
    # ------------------------------------------------------------------ #
    def _read_loop(self) -> None:
        try:
            if not self._handshake():
                return
            self._start_workers()
            while not self._closed.is_set():
                message = self.channel.recv()
                if message is None:
                    return
                self._dispatch(message)
        except (ProtocolError, OSError, ValueError) as exc:
            self._safe_send({"type": protocol.ERROR, "message": str(exc)})
        finally:
            self._close()
            with self.daemon._lock:
                if self in self.daemon._handlers:
                    self.daemon._handlers.remove(self)

    def _handshake(self) -> bool:
        message = self.channel.recv()
        if message is None:
            return False
        if message.get("type") != protocol.HELLO:
            self._safe_send(
                {"type": protocol.ERROR, "message": "expected hello first"}
            )
            return False
        version = int(message.get("protocol", -1))
        if version != protocol.PROTOCOL_VERSION:
            self._safe_send(
                {
                    "type": protocol.ERROR,
                    "message": f"protocol version mismatch: worker speaks "
                    f"{protocol.PROTOCOL_VERSION}, coordinator sent {version}",
                }
            )
            return False
        interval = float(message.get("heartbeat_interval", 0.0))
        if interval > 0:
            self._heartbeat_interval = interval
        self.channel.send(
            {
                "type": protocol.HELLO_ACK,
                "protocol": protocol.PROTOCOL_VERSION,
                "worker_id": self.daemon.name,
                "pid": os.getpid(),
                "capabilities": {
                    "backend": self.daemon._backend_name,
                    "slots": self.daemon._slots,
                    "cache": self.daemon.cache is not None,
                    # Elastic-era capability flags: v1 coordinators
                    # ignore unknown keys, so no protocol version bump.
                    "membership": True,
                    "tags": dict(self.daemon.tags),
                },
            }
        )
        return True

    def _dispatch(self, message: dict[str, Any]) -> None:
        kind = message.get("type")
        if kind == protocol.SUBMIT_SHARD:
            self._on_submit(message)
        elif kind == protocol.DOC_DATA:
            self._on_doc_data(message)
        elif kind == protocol.DRAIN:
            self._begin_drain()
            self._await_drained(timeout=None)
            self._safe_send({"type": protocol.BYE, "reason": "drained"})
            self._close()
        elif kind == protocol.BYE:
            self._close()
        elif kind == protocol.HEARTBEAT:
            pass  # coordinators may echo beacons; nothing to do
        else:
            raise ProtocolError(f"unexpected message type {kind!r}")

    def _on_submit(self, message: dict[str, Any]) -> None:
        if self._draining.is_set():
            self._safe_send(
                {
                    "type": protocol.SHARD_ERROR,
                    "shard_id": message.get("shard_id"),
                    "code": "draining",
                    "error": "worker is draining",
                }
            )
            return
        shard_id = str(message["shard_id"])
        spec = WorkerSpec.from_json_dict(message["spec"])
        docs = list(message.get("docs", []))
        self.daemon._store_documents(docs)
        missing = self.daemon.missing_hashes(spec, docs)
        job = _ShardJob(
            shard_id, spec, docs, trace=TraceContext.from_wire(message.get("trace"))
        )
        if missing:
            with self._pending_lock:
                self._pending[shard_id] = job
            self.channel.send(
                {"type": protocol.SHARD_NEED, "shard_id": shard_id, "need": missing}
            )
            return
        self._enqueue(job)

    def _on_doc_data(self, message: dict[str, Any]) -> None:
        shard_id = str(message["shard_id"])
        self.daemon._store_documents(list(message.get("docs", [])))
        with self._pending_lock:
            job = self._pending.pop(shard_id, None)
        if job is None:
            raise ProtocolError(f"doc_data for unknown shard {shard_id!r}")
        still_missing = self.daemon.missing_hashes(job.spec, job.descriptors)
        if still_missing:
            self._safe_send(
                {
                    "type": protocol.SHARD_ERROR,
                    "shard_id": shard_id,
                    "code": "missing_document",
                    "error": f"doc_data left {len(still_missing)} hash(es) "
                    f"unresolved: {still_missing[:3]}",
                }
            )
            return
        self._enqueue(job)

    def _enqueue(self, job: _ShardJob) -> None:
        with self._in_flight_lock:
            self._in_flight += 1
        self._queue.put(job)

    # ------------------------------------------------------------------ #
    # Slot pool
    # ------------------------------------------------------------------ #
    def _slot_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                self._queue.put(None)  # release sibling slots
                return
            try:
                self._run_job(job)
            finally:
                with self._in_flight_lock:
                    self._in_flight -= 1
                    self._idle.notify_all()

    def _run_job(self, job: _ShardJob) -> None:
        started = perf_counter()
        # When the shard carries a trace, record worker-side spans into a
        # private recorder (not the process default — shards from many
        # coordinators share this daemon) and ship them with the result.
        recorder: SpanRecorder | None = None
        if job.trace is not None and _tracing.enabled():
            recorder = SpanRecorder()
        # Phase attribution mirrors the span pattern: a private per-shard
        # timer (never the daemon's ambient state) whose table rides the
        # batch_result frame back to the coordinator.  The sampler is the
        # same shape again, for the collapsed-stack profile.
        timer: "_profiling.PhaseTimer | None" = (
            _profiling.PhaseTimer() if _profiling.phases_enabled() else None
        )
        sampler: "_profiling.StackSampler | None" = (
            _profiling.StackSampler() if _profiling.profiling_enabled() else None
        )
        try:
            with ExitStack() as stack:
                if timer is not None:
                    stack.enter_context(_profiling.use_timer(timer))
                if sampler is not None:
                    stack.enter_context(sampler)
                if recorder is not None:
                    assert job.trace is not None
                    stack.enter_context(_tracing.use_recorder(recorder))
                    stack.enter_context(_tracing.activate(job.trace))
                    stack.enter_context(
                        _tracing.span(
                            "worker.shard",
                            attributes={
                                "shard_id": job.shard_id,
                                "worker": self.daemon.name,
                                "n_documents": len(job.descriptors),
                            },
                        )
                    )
                results, decisions, hits, misses = self.daemon.run_shard(
                    job.spec, job.descriptors
                )
        except SpecError as exc:
            self.daemon._bump("shards_failed")
            self._safe_send(
                {
                    "type": protocol.SHARD_ERROR,
                    "shard_id": job.shard_id,
                    "code": exc.code,
                    "error": str(exc),
                }
            )
            return
        except Exception as exc:  # noqa: BLE001 - shard failures must travel
            self.daemon._bump("shards_failed")
            self._safe_send(
                {
                    "type": protocol.SHARD_ERROR,
                    "shard_id": job.shard_id,
                    "code": "worker_exception",
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
            return
        self.daemon._bump("shards_completed")
        log_event(
            _LOG, "debug", "shard_completed",
            shard_id=job.shard_id, cache_hits=hits, cache_misses=misses,
            trace_id=job.trace.trace_id if job.trace is not None else None,
        )
        serialize_started = perf_counter()
        message = protocol.batch_result_message(
            job.shard_id,
            results,
            decisions,
            worker_id=self.daemon.name,
            elapsed_seconds=perf_counter() - started,
            cache_hits=hits,
            cache_misses=misses,
            spans=(
                recorder.spans(job.trace.trace_id)
                if recorder is not None and job.trace is not None
                else None
            ),
            phases=timer.snapshot() if timer is not None else None,
            profile=sampler.profile.to_dict() if sampler is not None else None,
        )
        if timer is not None:
            # Result serialization is a wire-path cost, not a parse phase:
            # it lands in the shared duration histogram (where the
            # raw-speed work will read it), keeping `phases` keys
            # identical across backends that never serialize.
            _profiling.phase_seconds_histogram().observe(
                perf_counter() - serialize_started, phase="serialize.result"
            )
        try:
            self.channel.send(message)
        except MessageTooLarge as exc:
            # The results cannot cross the wire: report a shard error so
            # the coordinator fails this shard instead of waiting forever.
            self._safe_send(
                {
                    "type": protocol.SHARD_ERROR,
                    "shard_id": job.shard_id,
                    "code": "result_too_large",
                    "error": str(exc),
                }
            )
        except (ProtocolError, OSError):
            pass  # connection death; the reader loop handles it

    # ------------------------------------------------------------------ #
    # Heartbeat / drain
    # ------------------------------------------------------------------ #
    def _heartbeat_loop(self) -> None:
        while not self._closed.wait(self._heartbeat_interval):
            with self._in_flight_lock:
                in_flight = self._in_flight
            if not self._safe_send(
                {
                    "type": protocol.HEARTBEAT,
                    "worker_id": self.daemon.name,
                    "in_flight": in_flight,
                }
            ):
                return

    def _begin_drain(self) -> None:
        self._draining.set()

    def _await_drained(self, timeout: float | None) -> None:
        # Queued-but-unstarted jobs already count in ``_in_flight`` (the
        # counter moves at enqueue time), so this is the whole condition.
        with self._idle:
            self._idle.wait_for(lambda: self._in_flight == 0, timeout)

    def _safe_send(self, message: Mapping[str, Any]) -> bool:
        """Send, swallowing connection failures (the reader handles death)."""
        try:
            self.channel.send(message)
            return True
        except (ProtocolError, OSError):
            return False
