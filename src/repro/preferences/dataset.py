"""Preference dataset assembly and splits.

The paper partitions its 2 794 collected preferences into training (712),
validation (234) and test (1 848) subsets, deliberately keeping most
judgements for evaluation.  :func:`build_preference_dataset` runs the
simulated study and produces the same three-way split (proportionally scaled
to however many judgements the study yields).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.documents.corpus import Corpus
from repro.ml.dpo import PreferencePair
from repro.parsers.registry import ParserRegistry
from repro.preferences.study import PreferenceStudy, StudyConfig, StudyResult
from repro.utils.rng import rng_from

#: The paper's split sizes, used as proportions.
PAPER_SPLIT_SIZES = {"train": 712, "validation": 234, "test": 1848}


@dataclass
class PreferenceDataset:
    """Preference pairs partitioned into train/validation/test splits."""

    train: list[PreferencePair] = field(default_factory=list)
    validation: list[PreferencePair] = field(default_factory=list)
    test: list[PreferencePair] = field(default_factory=list)
    study_result: StudyResult | None = None

    @property
    def n_total(self) -> int:
        return len(self.train) + len(self.validation) + len(self.test)

    def split_sizes(self) -> dict[str, int]:
        """Number of pairs per split."""
        return {
            "train": len(self.train),
            "validation": len(self.validation),
            "test": len(self.test),
        }


def split_preference_pairs(
    pairs: list[PreferencePair], seed: int = 515
) -> dict[str, list[PreferencePair]]:
    """Partition pairs into train/validation/test with the paper's proportions.

    Pairs from the same document page always land in the same split so that
    DPO training pairs never leak into the evaluation subset.
    """
    total_paper = sum(PAPER_SPLIT_SIZES.values())
    fractions = {k: v / total_paper for k, v in PAPER_SPLIT_SIZES.items()}
    doc_ids = sorted({p.doc_id for p in pairs})
    rng = rng_from(seed, "preference-split", len(pairs))
    order = rng.permutation(len(doc_ids))
    shuffled = [doc_ids[int(i)] for i in order]
    n_docs = len(shuffled)
    n_train = int(round(fractions["train"] * n_docs))
    n_val = int(round(fractions["validation"] * n_docs))
    assignment: dict[str, str] = {}
    for i, doc_id in enumerate(shuffled):
        if i < n_train:
            assignment[doc_id] = "train"
        elif i < n_train + n_val:
            assignment[doc_id] = "validation"
        else:
            assignment[doc_id] = "test"
    splits: dict[str, list[PreferencePair]] = {"train": [], "validation": [], "test": []}
    for pair in pairs:
        splits[assignment[pair.doc_id]].append(pair)
    return splits


def build_preference_dataset(
    corpus: Corpus,
    registry: ParserRegistry,
    config: StudyConfig | None = None,
) -> PreferenceDataset:
    """Run the simulated study over a corpus and split the resulting pairs."""
    study = PreferenceStudy(registry, config=config)
    result = study.run(corpus)
    pairs = result.preference_pairs()
    splits = split_preference_pairs(pairs, seed=(config or StudyConfig()).seed)
    return PreferenceDataset(
        train=splits["train"],
        validation=splits["validation"],
        test=splits["test"],
        study_result=result,
    )
