"""The pairwise preference study: sampling, judging, and aggregate statistics.

A :class:`PreferenceStudy` reproduces the paper's data-collection protocol:
document pages are sampled, two parsers' outputs for the same page are shown
to one or more (simulated) scientists, and the choices are recorded.  The
result object exposes the statistics Section 7.1 reports — normalised win
rates, decisiveness, consensus among repeated judgements, and the correlation
between BLEU and win rate — plus the preference pairs used for DPO.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.documents.corpus import Corpus
from repro.documents.document import SciDocument
from repro.metrics.bleu import bleu_score
from repro.metrics.winrate import PairwiseOutcome, WinRateTally, consensus_rate
from repro.ml.dpo import PreferencePair
from repro.parsers.base import ParseResult
from repro.parsers.registry import ParserRegistry
from repro.preferences.annotators import AnnotatorPanel
from repro.utils.rng import rng_from


@dataclass(frozen=True)
class StudyConfig:
    """Configuration of the preference study.

    Attributes
    ----------
    n_pages:
        Number of distinct document pages sampled (the paper used 642).
    comparisons_per_page:
        How many parser pairs are judged per page.
    repeat_fraction:
        Fraction of (page, pair) triplets shown to a second annotator, used to
        measure consensus.
    n_annotators:
        Size of the simulated panel (the paper recruited 23 scientists).
    seed:
        Seed of all sampling in the study.
    """

    n_pages: int = 120
    comparisons_per_page: int = 4
    repeat_fraction: float = 0.35
    n_annotators: int = 23
    seed: int = 404


@dataclass
class JudgedComparison:
    """One judgement of one (page, parser A, parser B) triplet."""

    doc_id: str
    page_index: int
    parser_a: str
    parser_b: str
    text_a: str
    text_b: str
    annotator_id: str
    winner: str | None


@dataclass
class StudyResult:
    """All judgements of a study plus derived statistics."""

    judgements: list[JudgedComparison] = field(default_factory=list)
    page_bleu: dict[tuple[str, int, str], float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    def outcomes(self) -> list[PairwiseOutcome]:
        """Judgements as metric-layer outcomes."""
        return [
            PairwiseOutcome(
                doc_id=f"{j.doc_id}#p{j.page_index}",
                parser_a=j.parser_a,
                parser_b=j.parser_b,
                winner=j.winner,
            )
            for j in self.judgements
        ]

    def win_rates(self) -> dict[str, float]:
        """Normalised win rate per parser."""
        tally = WinRateTally()
        for outcome in self.outcomes():
            tally.add(outcome)
        return {p: tally.win_rate(p) for p in sorted(tally.appearances)}

    def decisiveness(self) -> float:
        """Fraction of judgements where a preference was expressed."""
        tally = WinRateTally()
        for outcome in self.outcomes():
            tally.add(outcome)
        return tally.decisiveness()

    def consensus(self) -> float:
        """Agreement rate among triplets judged by multiple annotators."""
        by_triplet: dict[tuple[str, str, str], list[str | None]] = defaultdict(list)
        for j in self.judgements:
            key = (f"{j.doc_id}#p{j.page_index}", j.parser_a, j.parser_b)
            by_triplet[key].append(j.winner)
        return consensus_rate(by_triplet)

    def bleu_win_rate_correlation(self) -> float:
        """Pearson correlation between per-parser mean BLEU and win rate."""
        win_rates = self.win_rates()
        parsers = sorted(win_rates)
        mean_bleu: list[float] = []
        for parser in parsers:
            values = [v for (doc, page, p), v in self.page_bleu.items() if p == parser]
            mean_bleu.append(float(np.mean(values)) if values else 0.0)
        rates = [win_rates[p] for p in parsers]
        if len(parsers) < 3 or np.std(mean_bleu) == 0 or np.std(rates) == 0:
            return 0.0
        return float(np.corrcoef(mean_bleu, rates)[0, 1])

    def preference_pairs(self) -> list[PreferencePair]:
        """Decided judgements as DPO training pairs."""
        pairs: list[PreferencePair] = []
        for j in self.judgements:
            if j.winner is None:
                continue
            if j.winner == j.parser_a:
                preferred, rejected = j.text_a, j.text_b
                preferred_parser, rejected_parser = j.parser_a, j.parser_b
            else:
                preferred, rejected = j.text_b, j.text_a
                preferred_parser, rejected_parser = j.parser_b, j.parser_a
            pairs.append(
                PreferencePair(
                    doc_id=f"{j.doc_id}#p{j.page_index}",
                    preferred_text=preferred,
                    rejected_text=rejected,
                    preferred_parser=preferred_parser,
                    rejected_parser=rejected_parser,
                )
            )
        return pairs

    def summary(self) -> dict[str, object]:
        """Headline statistics (the numbers quoted in Section 7.1)."""
        return {
            "n_judgements": len(self.judgements),
            "win_rates": {k: round(v, 3) for k, v in self.win_rates().items()},
            "decisiveness": round(self.decisiveness(), 3),
            "consensus": round(self.consensus(), 3),
            "bleu_win_rate_correlation": round(self.bleu_win_rate_correlation(), 3),
        }


class PreferenceStudy:
    """Runs the simulated pairwise preference study."""

    def __init__(
        self,
        registry: ParserRegistry,
        config: StudyConfig | None = None,
        panel: AnnotatorPanel | None = None,
    ) -> None:
        self.registry = registry
        self.config = config or StudyConfig()
        self.panel = panel or AnnotatorPanel(self.config.n_annotators, seed=self.config.seed)

    # ------------------------------------------------------------------ #
    def _page_parse(self, result: ParseResult, page_index: int) -> str:
        if page_index < len(result.page_texts):
            return result.page_texts[page_index]
        return ""

    def run(self, corpus: Corpus) -> StudyResult:
        """Execute the study over a corpus and return all judgements."""
        cfg = self.config
        rng = rng_from(cfg.seed, "preference-study", len(corpus))
        result = StudyResult()
        parser_names = self.registry.names
        documents: list[SciDocument] = list(corpus)
        if not documents:
            return result
        # Cache parses per document to avoid re-parsing for every comparison.
        for _ in range(cfg.n_pages):
            doc = documents[int(rng.integers(0, len(documents)))]
            page_index = int(rng.integers(0, doc.n_pages))
            parses: dict[str, str] = {}
            for name in parser_names:
                parse = self.registry.get(name).parse(doc)
                page_text = self._page_parse(parse, page_index)
                parses[name] = page_text
                key = (doc.doc_id, page_index, name)
                if key not in result.page_bleu:
                    gt = doc.pages[page_index].ground_truth_text()
                    result.page_bleu[key] = bleu_score(page_text, gt)
            for _ in range(cfg.comparisons_per_page):
                a, b = rng.choice(len(parser_names), size=2, replace=False)
                parser_a, parser_b = parser_names[int(a)], parser_names[int(b)]
                n_judges = 2 if rng.random() < cfg.repeat_fraction else 1
                judges = self.panel.sample(rng, k=n_judges)
                for judge in judges:
                    verdict = judge.compare(
                        parses[parser_a],
                        parses[parser_b],
                        doc.pages[page_index],
                        salt=f"{doc.doc_id}:{page_index}:{parser_a}:{parser_b}",
                    )
                    winner: str | None
                    if verdict > 0:
                        winner = parser_a
                    elif verdict < 0:
                        winner = parser_b
                    else:
                        winner = None
                    result.judgements.append(
                        JudgedComparison(
                            doc_id=doc.doc_id,
                            page_index=page_index,
                            parser_a=parser_a,
                            parser_b=parser_b,
                            text_a=parses[parser_a],
                            text_b=parses[parser_b],
                            annotator_id=judge.annotator_id,
                            winner=winner,
                        )
                    )
        return result
