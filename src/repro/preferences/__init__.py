"""Simulated human-preference study (Section 6.3 / 7.1 of the paper).

The paper recruits 23 scientists who compare pairs of parser outputs for the
same document page, producing 2 794 preferences used (a) to evaluate parsers
by win rate and (b) to post-train the selector with DPO.  Human annotators are
not available offline, so this package provides a *behavioural model* of them:
each simulated scientist scores a page parse by a personal mixture of fidelity
to the shown page, cleanliness (absence of whitespace junk and scrambled
words), completeness, and math fidelity, plus idiosyncratic noise.  The model
is calibrated so the study-level statistics the paper reports (decisiveness
≈ 91 %, consensus ≈ 82 %, BLEU–win-rate correlation ≈ 0.5, Nougat winning the
tournament) emerge from the simulation rather than being hard-coded.
"""

from __future__ import annotations

from repro.preferences.annotators import AnnotatorPanel, SimulatedAnnotator
from repro.preferences.study import PreferenceStudy, StudyConfig, StudyResult
from repro.preferences.dataset import PreferenceDataset, build_preference_dataset

__all__ = [
    "AnnotatorPanel",
    "SimulatedAnnotator",
    "PreferenceStudy",
    "StudyConfig",
    "StudyResult",
    "PreferenceDataset",
    "build_preference_dataset",
]
