"""Behavioural model of the human annotators.

Each :class:`SimulatedAnnotator` judges a parsed page by a personal utility

    u = w_fidelity · BLEU(page parse, page ground truth)
      + w_clean    · cleanliness(parse)
      + w_complete · completeness(parse vs ground truth)
      + w_math     · math fidelity (LaTeX preserved where the page has math)
      − formatting fatigue (markdown artifacts)            + noise

The weights are drawn per annotator around panel-level means, so different
scientists disagree occasionally (the paper measures 82 % consensus) but agree
on clear-cut cases.  Because cleanliness and math fidelity matter to readers
more than n-gram overlap alone, the resulting tournament prefers Nougat/Marker
slightly over raw extraction even where BLEU does not — reproducing the
paper's observation that BLEU correlates with, but does not determine, human
preference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.documents.document import PageContent
from repro.metrics.bleu import bleu_score
from repro.ml.features import TEXT_FEATURE_NAMES, TextStatisticsExtractor
from repro.utils.hashing import stable_hash
from repro.utils.rng import rng_from

_FEATURE_INDEX = {name: i for i, name in enumerate(TEXT_FEATURE_NAMES)}
_EXTRACTOR = TextStatisticsExtractor(max_chars=4000)


def cleanliness_score(text: str) -> float:
    """1 for clean readable text, 0 for junk (whitespace/scramble artefacts)."""
    if not text.strip():
        return 0.0
    features = _EXTRACTOR.extract(text)
    penalty = (
        2.5 * features[_FEATURE_INDEX["vowel_free_word_ratio"]]
        + 2.0 * features[_FEATURE_INDEX["single_char_word_ratio"]]
        + 1.5 * features[_FEATURE_INDEX["non_ascii_ratio"]]
        + 1.0 * max(0.0, features[_FEATURE_INDEX["whitespace_ratio"]] - 0.22)
        + 1.0 * features[_FEATURE_INDEX["repeated_char_run_ratio"]]
    )
    return float(np.clip(1.0 - penalty, 0.0, 1.0))


def completeness_score(parsed: str, ground_truth: str) -> float:
    """Rough recall of the ground-truth page length, clipped to [0, 1]."""
    if not ground_truth:
        return 1.0
    if not parsed.strip():
        return 0.0
    return float(np.clip(len(parsed) / max(1, len(ground_truth)), 0.0, 1.0))


def math_fidelity_score(parsed: str, page: PageContent) -> float:
    """Whether LaTeX-ish structure survived on pages that contain equations."""
    equations = page.elements_of_kind("equation")
    if not equations:
        return 0.5  # neutral on math-free pages
    latex_markers = parsed.count("\\") + parsed.count("frac") + parsed.count("^")
    return float(np.clip(latex_markers / (2.0 * len(equations)), 0.0, 1.0))


def formatting_fatigue(parsed: str) -> float:
    """Small penalty for markdown artefacts (hashtags, pipes) in the parse."""
    if not parsed:
        return 0.0
    markers = parsed.count("#") + parsed.count(" | ")
    return float(np.clip(markers / 80.0, 0.0, 0.15))


@dataclass(frozen=True)
class AnnotatorProfile:
    """Utility weights of one simulated scientist."""

    fidelity_weight: float
    cleanliness_weight: float
    completeness_weight: float
    math_weight: float
    noise_scale: float
    tie_threshold: float


class SimulatedAnnotator:
    """One simulated scientist."""

    def __init__(self, annotator_id: str, profile: AnnotatorProfile, seed: int) -> None:
        self.annotator_id = annotator_id
        self.profile = profile
        self._seed = seed

    def utility(self, parsed: str, page: PageContent, salt: str = "") -> float:
        """Perceived quality of a parsed page (higher is better)."""
        ground_truth = page.ground_truth_text()
        fidelity = bleu_score(parsed, ground_truth, max_n=2)
        profile = self.profile
        noise_rng = rng_from(
            self._seed, "utility-noise", self.annotator_id, salt, stable_hash(parsed)
        )
        value = (
            profile.fidelity_weight * fidelity
            + profile.cleanliness_weight * cleanliness_score(parsed)
            + profile.completeness_weight * completeness_score(parsed, ground_truth)
            + profile.math_weight * math_fidelity_score(parsed, page)
            - formatting_fatigue(parsed)
        )
        return float(value + noise_rng.normal(0.0, profile.noise_scale))

    def compare(
        self, parsed_a: str, parsed_b: str, page: PageContent, salt: str = ""
    ) -> int:
        """Preference: 1 if A preferred, -1 if B preferred, 0 for indifference."""
        utility_a = self.utility(parsed_a, page, salt=salt + ":a")
        utility_b = self.utility(parsed_b, page, salt=salt + ":b")
        if abs(utility_a - utility_b) < self.profile.tie_threshold:
            return 0
        return 1 if utility_a > utility_b else -1


class AnnotatorPanel:
    """The panel of simulated scientists taking part in the study."""

    #: Panel-level mean utility weights; individual annotators jitter around
    #: these.  Cleanliness and completeness weigh as much as n-gram fidelity,
    #: which is what decouples win rate from BLEU.
    MEAN_PROFILE = AnnotatorProfile(
        fidelity_weight=0.9,
        cleanliness_weight=0.65,
        completeness_weight=0.55,
        math_weight=0.30,
        noise_scale=0.045,
        tie_threshold=0.04,
    )

    def __init__(self, n_annotators: int = 23, seed: int = 202) -> None:
        if n_annotators < 1:
            raise ValueError("n_annotators must be positive")
        self.seed = seed
        self.annotators: list[SimulatedAnnotator] = []
        mean = self.MEAN_PROFILE
        for i in range(n_annotators):
            rng = rng_from(seed, "annotator-profile", i)
            # Scientists differ in what they value (the paper's panel spans
            # eight disciplines) but the jitter is kept modest so that
            # clear-cut comparisons still produce the high consensus the
            # paper measures (82.2 % agreement on repeated triplets).
            profile = AnnotatorProfile(
                fidelity_weight=float(max(0.1, rng.normal(mean.fidelity_weight, 0.10))),
                cleanliness_weight=float(max(0.05, rng.normal(mean.cleanliness_weight, 0.10))),
                completeness_weight=float(max(0.05, rng.normal(mean.completeness_weight, 0.08))),
                math_weight=float(max(0.0, rng.normal(mean.math_weight, 0.08))),
                noise_scale=float(abs(rng.normal(mean.noise_scale, 0.012))),
                tie_threshold=float(abs(rng.normal(mean.tie_threshold, 0.01))),
            )
            self.annotators.append(SimulatedAnnotator(f"annotator-{i:02d}", profile, seed=seed + i))

    def __len__(self) -> int:
        return len(self.annotators)

    def sample(self, rng: np.random.Generator, k: int = 1) -> list[SimulatedAnnotator]:
        """Draw ``k`` distinct annotators."""
        k = min(k, len(self.annotators))
        indices = rng.choice(len(self.annotators), size=k, replace=False)
        return [self.annotators[int(i)] for i in indices]
