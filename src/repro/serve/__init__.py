"""Long-running parse serving: queue, admission, progress streaming.

:class:`ParseService` accepts many concurrent
:class:`~repro.pipeline.request.ParseRequest` submissions and multiplexes
them onto **one shared execution backend** (``async`` by default) and
**one shared parse cache**, so single-flight deduplication holds across
requests, admission follows a priority + fair-share policy, and every
submission streams :class:`~repro.serve.events.ProgressEvent` values
while it runs.

Example
-------
>>> from repro.pipeline import ParseRequest
>>> from repro.serve import ParseService
>>> with ParseService() as service:
...     ticket = service.submit(ParseRequest(parser="pymupdf", source="synthetic:8?seed=3"))
...     report = ticket.result()
>>> report.n_documents
8

The CLI front ends are ``repro serve`` (demo service loop streaming
NDJSON events) and ``repro submit`` (single-request client smoke path).

Public names resolve lazily (PEP 562) so importing :mod:`repro.serve`
stays cheap until a service is actually constructed.
"""

from __future__ import annotations

#: Public name → "module:attribute", resolved on first access.
_LAZY_EXPORTS: dict[str, str] = {
    "EventKind": "repro.serve.events:EventKind",
    "FairShareAdmission": "repro.serve.admission:FairShareAdmission",
    "ParseService": "repro.serve.service:ParseService",
    "ParseTicket": "repro.serve.service:ParseTicket",
    "ProgressEvent": "repro.serve.events:ProgressEvent",
    "ServiceConfig": "repro.serve.service:ServiceConfig",
    "ServiceError": "repro.serve.service:ServiceError",
    "TicketState": "repro.serve.service:TicketState",
    "serve_requests": "repro.serve.service:serve_requests",
}

__all__ = sorted(_LAZY_EXPORTS)


def __getattr__(name: str):
    """Resolve lazily exported public names (delegates to repro.utils.lazy)."""
    from repro.utils.lazy import resolve_lazy

    return resolve_lazy(__name__, globals(), _LAZY_EXPORTS, name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
