"""Progress events streamed by :class:`repro.serve.ParseService`.

A ticket's lifecycle is narrated as an ordered stream of
:class:`ProgressEvent` values: ``queued`` → ``started`` → ``batch``*
→ exactly one terminal event (``completed``, ``failed``, or
``cancelled``).  Events are plain JSON-serialisable records so the CLI
can stream them as NDJSON and remote clients of a future network
frontend can consume the same schema.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Any, Mapping


class EventKind(str, enum.Enum):
    """What a progress event reports."""

    QUEUED = "queued"
    STARTED = "started"
    BATCH = "batch"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """Whether this event ends the ticket's stream."""
        return self in (EventKind.COMPLETED, EventKind.FAILED, EventKind.CANCELLED)


@dataclass(frozen=True)
class ProgressEvent:
    """One step of a ticket's lifecycle.

    Attributes
    ----------
    kind:
        The :class:`EventKind` value (stored as its string).
    ticket_id:
        Which submission this event belongs to.
    seq:
        Per-ticket sequence number (0-based, gapless) — consumers can
        detect missed events without timestamps.
    timestamp:
        Wall-clock time the event was emitted (``time.time()``).
    payload:
        Kind-specific details: ``batch`` events carry
        ``documents_done``/``n_documents``/``batches_done``; terminal
        events carry the report summary or the error string.
    """

    kind: str
    ticket_id: str
    seq: int
    timestamp: float = field(default_factory=time.time)
    payload: dict[str, Any] = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        """Whether this event ends the ticket's stream.

        Tolerant of kinds this client does not know (a newer server may
        stream new intermediate event kinds): unknown kinds are treated
        as non-terminal rather than raising, so old clients keep reading
        the stream until a terminal kind they *do* understand arrives.
        """
        try:
            return EventKind(self.kind).terminal
        except ValueError:
            return False

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "ticket_id": self.ticket_id,
            "seq": self.seq,
            "timestamp": self.timestamp,
            "payload": dict(self.payload),
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "ProgressEvent":
        return cls(
            kind=str(payload["kind"]),
            ticket_id=str(payload["ticket_id"]),
            seq=int(payload["seq"]),
            timestamp=float(payload.get("timestamp", 0.0)),
            payload=dict(payload.get("payload", {})),
        )
