"""The long-running parse service: many requests, one backend, one cache.

:class:`ParseService` is the request multiplexer the ROADMAP's serving
north-star asks for.  Where :meth:`repro.pipeline.ParsePipeline.run`
executes one request on a private backend, the service accepts **many
concurrent** :class:`~repro.pipeline.request.ParseRequest` submissions
and multiplexes them onto

* **one shared execution backend** (``async`` by default — every
  request's batches interleave on the same event loop and executor
  pool), and
* **one shared :class:`~repro.cache.ParseCache`** — so single-flight
  deduplication works *across requests*, not just across one request's
  workers: two clients submitting overlapping corpora parse each
  document exactly once, with the second request's lookups coalescing
  onto the first's in-progress parses.

Submissions are admitted under a priority + fair-share policy
(:class:`~repro.serve.admission.FairShareAdmission`) with at most
``max_active`` requests executing at once, and every ticket streams
incremental :class:`~repro.serve.events.ProgressEvent` values
(``queued`` → ``started`` → per-batch ``batch`` → terminal) while the
final :class:`~repro.pipeline.report.ParseReport` is delivered through
:meth:`ParseTicket.result`.
"""

from __future__ import annotations

import enum
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import ExitStack
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Iterator, Mapping

from repro.cache import CachePolicy, CacheStats, CacheStatsRecorder
from repro.obs import metrics as _metrics
from repro.obs import profiling as _profiling
from repro.obs import tracing as _tracing
from repro.obs.tracing import TraceContext
from repro.pipeline.backends.base import ExecutionBackend, resolve_execution
from repro.pipeline.pipeline import ParsePipeline
from repro.pipeline.report import ParseReport
from repro.pipeline.request import ParseRequest
from repro.serve.admission import FairShareAdmission
from repro.serve.events import EventKind, ProgressEvent

#: Thread-name prefix of the service's request-runner threads.
SERVE_THREAD_PREFIX = "repro-serve"

_TICKETS = _metrics.counter(
    "repro_service_tickets_total",
    "Ticket lifecycle transitions (submitted/completed/failed/cancelled).",
    ("state",),
)
_QUEUE_DEPTH = _metrics.gauge(
    "repro_service_queue_depth", "Tickets waiting for an execution slot."
)
_ACTIVE = _metrics.gauge(
    "repro_service_active", "Tickets currently executing."
)
_ADMISSION_WAIT = _metrics.histogram(
    "repro_service_admission_wait_seconds",
    "Time a ticket waited between submission and starting to run.",
)


class ServiceError(RuntimeError):
    """The parse service could not accept or complete a submission."""


class TicketState(str, enum.Enum):
    """Lifecycle state of one submission."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (TicketState.COMPLETED, TicketState.FAILED, TicketState.CANCELLED)


@dataclass(frozen=True)
class ServiceConfig:
    """Construction knobs of a :class:`ParseService`.

    Attributes
    ----------
    backend:
        Registry name of the shared execution backend (default
        ``"async"``); every admitted request executes on this one
        instance, so its worker pool is the service's parse capacity.
    backend_options:
        Construction options for the shared backend (e.g. ``{"n_jobs":
        8, "max_window": 32}``).
    max_active:
        Requests executing concurrently; submissions beyond this wait in
        the admission queue.
    """

    backend: str = "async"
    backend_options: dict[str, Any] = field(default_factory=dict)
    max_active: int = 4


class ParseTicket:
    """Handle to one submitted request: progress events plus the report.

    Tickets are created by :meth:`ParseService.submit`; user code only
    reads them.  ``events()`` streams the lifecycle (it can be called by
    several consumers, each sees the full ordered stream), ``result()``
    blocks for the final :class:`ParseReport`, and ``cancel()`` withdraws
    a ticket that has not started running.
    """

    def __init__(
        self,
        ticket_id: str,
        request: ParseRequest,
        priority: int,
        client: str,
        seq: int,
        sink: Callable[[ProgressEvent], None] | None = None,
        trace: TraceContext | None = None,
    ) -> None:
        self.id = ticket_id
        self.request = request
        self.priority = priority
        self.client = client
        self.seq = seq
        self.state = TicketState.QUEUED
        #: The trace this ticket runs under; every event payload carries
        #: its trace id so remote consumers can correlate.
        self.trace = trace
        #: Monotonic submission instant (admission-wait measurement).
        self.queued_at = perf_counter()
        self._started_at: float | None = None
        self._cond = threading.Condition()
        self._events: list[ProgressEvent] = []
        self._next_event_seq = 0
        self._report: ParseReport | None = None
        self._error: BaseException | None = None
        self._sink = sink

    @property
    def trace_id(self) -> str | None:
        return self.trace.trace_id if self.trace is not None else None

    def _elapsed_s(self) -> float:
        """Monotonic seconds since this ticket started running (falls back
        to time since submission for tickets cancelled before starting)."""
        origin = self._started_at if self._started_at is not None else self.queued_at
        return perf_counter() - origin

    # ------------------------------------------------------------------ #
    # Service-side transitions
    # ------------------------------------------------------------------ #
    def _emit(self, kind: EventKind, payload: dict[str, Any]) -> ProgressEvent:
        if self.trace is not None:
            payload = dict(payload)
            payload.setdefault("trace_id", self.trace.trace_id)
        with self._cond:
            event = ProgressEvent(
                kind=kind.value,
                ticket_id=self.id,
                seq=self._next_event_seq,
                payload=payload,
            )
            self._next_event_seq += 1
            self._events.append(event)
            self._cond.notify_all()
        if self._sink is not None:
            # Outside the condition: a slow or re-entrant sink must not
            # block consumers of events()/result().  A *raising* sink must
            # not break the ticket lifecycle either (a closed stdout pipe
            # on the CLI's NDJSON stream would otherwise leave the ticket
            # RUNNING forever) — telemetry failures are swallowed.
            try:
                self._sink(event)
            except Exception:
                pass
        return event

    def _set_state(
        self,
        state: TicketState,
        report: ParseReport | None = None,
        error: BaseException | None = None,
    ) -> None:
        with self._cond:
            self.state = state
            if report is not None:
                self._report = report
            if error is not None:
                self._error = error
            self._cond.notify_all()

    # ------------------------------------------------------------------ #
    # Consumer API
    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        return self.state.terminal

    @property
    def n_events(self) -> int:
        """Events emitted so far (streamers use this for backlog telemetry)."""
        with self._cond:
            return len(self._events)

    def events(
        self, timeout: float | None = None, after_seq: int = -1
    ) -> Iterator[ProgressEvent]:
        """Yield this ticket's events in order, ending at the terminal one.

        Events already emitted are replayed first, so subscribing after
        completion still sees the full stream.  ``after_seq`` skips the
        replay up to and including that sequence number (reconnecting
        consumers resume without duplicates).  ``timeout`` bounds each
        wait for the *next* event, not the whole stream.
        """
        index = max(0, after_seq + 1)
        while True:
            with self._cond:
                while index >= len(self._events):
                    if not self._cond.wait(timeout):
                        raise TimeoutError(
                            f"no event within {timeout}s for ticket {self.id}"
                        )
                event = self._events[index]
            index += 1
            yield event
            if event.terminal:
                return

    def result(self, timeout: float | None = None) -> ParseReport:
        """Block until the request finishes; return (or re-raise) its outcome."""
        with self._cond:
            if not self._cond.wait_for(lambda: self.state.terminal, timeout):
                raise TimeoutError(f"ticket {self.id} not done within {timeout}s")
            if self.state is TicketState.FAILED:
                assert self._error is not None
                raise self._error
            if self.state is TicketState.CANCELLED:
                raise ServiceError(f"ticket {self.id} was cancelled")
            assert self._report is not None
            return self._report


class ParseService:
    """Multiplex concurrent parse requests onto one backend and one cache.

    Parameters
    ----------
    pipeline:
        The :class:`~repro.pipeline.ParsePipeline` to execute on.  Its
        cache is the service's shared cache; pass a pipeline built with
        ``ParsePipeline(cache=ParseCache(directory))`` for persistence.
    config:
        Service knobs (shared backend spec, ``max_active``).
    backend:
        An already-constructed :class:`ExecutionBackend` instance to
        share (its lifecycle stays with the caller); by default the
        service constructs — and owns — one from ``config``.

    The service is a context manager; leaving the block drains queued
    and running work, then releases the backend.
    """

    def __init__(
        self,
        pipeline: ParsePipeline | None = None,
        config: ServiceConfig | None = None,
        backend: ExecutionBackend | None = None,
        event_sink: Callable[[ProgressEvent], None] | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        if self.config.max_active < 1:
            raise ValueError("max_active must be positive")
        self.pipeline = pipeline or ParsePipeline()
        self._backend, self._owns_backend = resolve_execution(
            backend if backend is not None else self.config.backend,
            None if backend is not None else self.config.backend_options,
        )
        self._policy = FairShareAdmission()
        self._sink = event_sink
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._queued: list[ParseTicket] = []
        self._active: dict[str, ParseTicket] = {}
        self._active_by_client: dict[str, int] = {}
        self._served_by_client: dict[str, int] = {}
        self._counters = {"submitted": 0, "completed": 0, "failed": 0, "cancelled": 0}
        self._next_seq = 0
        self._closed = False
        self._torn_down = False
        self._resolve_lock = threading.Lock()
        self._runners = ThreadPoolExecutor(
            max_workers=self.config.max_active,
            thread_name_prefix=SERVE_THREAD_PREFIX,
        )

    # ------------------------------------------------------------------ #
    # Submission and admission
    # ------------------------------------------------------------------ #
    @property
    def backend(self) -> ExecutionBackend:
        """The shared execution backend every admitted request runs on."""
        return self._backend

    def submit(
        self,
        request: ParseRequest,
        *,
        priority: int = 0,
        client: str = "default",
        trace: TraceContext | None = None,
    ) -> ParseTicket:
        """Queue a request; returns immediately with its ticket.

        ``priority`` ranks admission (higher first); ``client`` is the
        fair-share identity — concurrent clients split the service's
        ``max_active`` slots evenly at equal priority.  The request's own
        ``backend`` spec is superseded by the service's shared backend
        (that is the point of a service); its cache policy is honoured.

        ``trace`` carries an upstream :class:`TraceContext` (the gateway
        passes its submit span); by default the caller's active trace is
        adopted, or a fresh root trace is started, so every ticket's
        events and spans share one trace id end to end.
        """
        if trace is None and _tracing.enabled():
            trace = _tracing.current_trace() or TraceContext.new()
        with self._lock:
            if self._closed:
                raise ServiceError("service is closed to new submissions")
            seq = self._next_seq
            self._next_seq += 1
            ticket = ParseTicket(
                ticket_id=f"t{seq:04d}",
                request=request,
                priority=priority,
                client=client,
                seq=seq,
                sink=self._sink,
                trace=trace,
            )
            self._counters["submitted"] += 1
            queue_position = len(self._queued) + 1
        _TICKETS.inc(state="submitted")
        # Emit QUEUED before the ticket becomes visible to admission (and
        # without holding the service lock, so a slow or re-entrant sink
        # cannot stall submissions or deadlock on describe()/submit()):
        # no dispatcher can emit STARTED until the ticket is enqueued below.
        ticket._emit(
            EventKind.QUEUED,
            {"priority": priority, "client": client, "queue_position": queue_position},
        )
        with self._lock:
            if self._closed:
                # close() raced in between: the ticket never became
                # admissible, so settle it instead of stranding it queued.
                self._counters["cancelled"] += 1
                closed_mid_submit = True
            else:
                self._queued.append(ticket)
                self._sync_gauges()
                closed_mid_submit = False
        if closed_mid_submit:
            _TICKETS.inc(state="cancelled")
            ticket._set_state(TicketState.CANCELLED)
            ticket._emit(
                EventKind.CANCELLED,
                {"reason": "service closed", "elapsed_s": round(ticket._elapsed_s(), 6)},
            )
            raise ServiceError("service is closed to new submissions")
        self._maybe_dispatch()
        return ticket

    def _sync_gauges(self) -> None:
        """Refresh the queue-depth/active gauges; caller holds ``_lock``."""
        _QUEUE_DEPTH.set(len(self._queued))
        _ACTIVE.set(len(self._active))

    def cancel(self, ticket: ParseTicket) -> bool:
        """Withdraw a ticket that has not started; False once running."""
        with self._lock:
            if ticket not in self._queued:
                return False
            self._queued.remove(ticket)
            self._counters["cancelled"] += 1
            self._sync_gauges()
        _TICKETS.inc(state="cancelled")
        ticket._set_state(TicketState.CANCELLED)
        ticket._emit(
            EventKind.CANCELLED,
            {
                "reason": "cancelled before admission",
                "elapsed_s": round(ticket._elapsed_s(), 6),
            },
        )
        return True

    def _maybe_dispatch(self) -> None:
        to_start: list[ParseTicket] = []
        with self._lock:
            while self._queued and len(self._active) < self.config.max_active:
                pick = self._policy.select(
                    self._queued, self._active_by_client, self._served_by_client
                )
                self._queued.remove(pick)
                self._active[pick.id] = pick
                self._active_by_client[pick.client] = (
                    self._active_by_client.get(pick.client, 0) + 1
                )
                to_start.append(pick)
            self._sync_gauges()
        for ticket in to_start:
            try:
                self._runners.submit(self._run_ticket, ticket)
            except RuntimeError:
                # close() won the race: the runner pool shut down between
                # this ticket leaving the queue and reaching the pool.  It
                # would otherwise sit in _active forever with no terminal
                # event — a consumer blocked in events()/result() (or a
                # drain()) would hang.  Settle it as cancelled instead.
                self._settle_stranded(ticket)

    def _settle_stranded(self, ticket: ParseTicket) -> None:
        """Cancel a ticket the closed runner pool refused to execute."""
        with self._lock:
            self._active.pop(ticket.id, None)
            remaining = self._active_by_client.get(ticket.client, 1) - 1
            if remaining > 0:
                self._active_by_client[ticket.client] = remaining
            else:
                self._active_by_client.pop(ticket.client, None)
            self._counters["cancelled"] += 1
            self._sync_gauges()
            self._idle.notify_all()
        _TICKETS.inc(state="cancelled")
        ticket._set_state(TicketState.CANCELLED)
        ticket._emit(
            EventKind.CANCELLED,
            {"reason": "service closed", "elapsed_s": round(ticket._elapsed_s(), 6)},
        )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _run_ticket(self, ticket: ParseTicket) -> None:
        ticket._started_at = perf_counter()
        admission_wait = ticket._started_at - ticket.queued_at
        _ADMISSION_WAIT.observe(admission_wait)
        if ticket.trace is not None:
            # The wait already happened — record it as an externally-timed
            # span rather than wrapping code that has finished running.
            _tracing.record_span(
                "service.admission",
                parent=ticket.trace,
                duration_s=admission_wait,
                attributes={"ticket_id": ticket.id, "client": ticket.client},
            )
        ticket._set_state(TicketState.RUNNING)
        ticket._emit(
            EventKind.STARTED,
            {"backend": self._backend.name, "workers": self._backend.workers},
        )
        failed = True
        # Opt-in per-ticket sampling: the profile is filed under the
        # ticket id as soon as sampling stops, so `obs profile TICKET-ID`
        # (via the gateway PROFILE RPC) can fetch it after completion.
        sampler = (
            _profiling.StackSampler() if _profiling.profiling_enabled() else None
        )
        try:
            with ExitStack() as stack:
                if ticket.trace is not None:
                    # Runner threads have no inherited contextvars: re-activate
                    # the submission's trace so pipeline/cache/backend spans
                    # and cluster shards all attach to this ticket's trace id.
                    stack.enter_context(_tracing.activate(ticket.trace))
                    stack.enter_context(
                        _tracing.span(
                            "service.ticket",
                            attributes={"ticket_id": ticket.id, "client": ticket.client},
                        )
                    )
                try:
                    with ExitStack() as sampling:
                        if sampler is not None:
                            # The profile must land in the store *before*
                            # the terminal event is emitted — a client that
                            # reacts to "completed" with a PROFILE RPC must
                            # never race the store write.
                            sampling.callback(
                                lambda: _profiling.default_store().put(
                                    ticket.id, sampler.profile
                                )
                            )
                            sampling.enter_context(sampler)
                        report = self._execute(ticket)
                except BaseException as exc:  # report *any* failure to the waiters
                    ticket._set_state(TicketState.FAILED, error=exc)
                    ticket._emit(
                        EventKind.FAILED,
                        {
                            "error": str(exc),
                            "error_type": type(exc).__name__,
                            "elapsed_s": round(ticket._elapsed_s(), 6),
                        },
                    )
                else:
                    ticket._set_state(TicketState.COMPLETED, report=report)
                    ticket._emit(
                        EventKind.COMPLETED,
                        {
                            "summary": report.summary(),
                            "elapsed_s": round(ticket._elapsed_s(), 6),
                        },
                    )
                    failed = False
        finally:
            _TICKETS.inc(state="failed" if failed else "completed")
            with self._lock:
                self._active.pop(ticket.id, None)
                remaining = self._active_by_client.get(ticket.client, 1) - 1
                if remaining > 0:
                    self._active_by_client[ticket.client] = remaining
                else:
                    self._active_by_client.pop(ticket.client, None)
                self._served_by_client[ticket.client] = (
                    self._served_by_client.get(ticket.client, 0) + 1
                )
                self._counters["failed" if failed else "completed"] += 1
                self._sync_gauges()
                self._idle.notify_all()
            self._maybe_dispatch()

    def _execute(self, ticket: ParseTicket) -> ParseReport:
        """Run one admitted request on the shared backend, emitting progress.

        The ticket gets its own :class:`~repro.obs.PhaseTimer` (ambient
        for the duration, so pipeline, cache, and backend instrumentation
        all accumulate into it) and the report carries the merged table.
        """
        timer = _profiling.PhaseTimer() if _profiling.phases_enabled() else None
        with _profiling.use_timer(timer):
            report = self._execute_timed(ticket)
        if timer is not None:
            report.phases = timer.snapshot()
            histogram = _profiling.phase_seconds_histogram()
            for name, row in report.phases.items():
                histogram.observe(row["total_s"], phase=name)
        # The service path bypasses ParsePipeline.run(), so it publishes
        # the same throughput counter itself (obs top's docs/sec).
        _metrics.counter(
            "repro_pipeline_documents_total",
            "Documents parsed by completed pipeline runs",
        ).inc(report.n_documents)
        return report

    def _execute_timed(self, ticket: ParseTicket) -> ParseReport:
        from repro.parsers.base import ResourceUsage

        request = ticket.request
        pipeline = self.pipeline
        with self._resolve_lock:
            # Engine training and corpus building mutate pipeline-level
            # state; serialising resolution keeps concurrent tickets from
            # double-training one engine.  Parsing itself runs unlocked.
            parser = pipeline.resolve_parser(request.parser, alpha=request.alpha)
            documents = pipeline.resolve_documents(request)
        cache_policy = request.cache_policy
        cache_recorder = (
            CacheStatsRecorder() if cache_policy is not CachePolicy.OFF else None
        )
        results: list = []
        decisions: list = []
        batches_done = 0
        started = perf_counter()
        for batch_results, batch_decisions in pipeline.parse_batches(
            parser,
            documents,
            batch_size=request.batch_size,
            cache_policy=cache_policy,
            cache_recorder=cache_recorder,
            backend=self._backend,
        ):
            results.extend(batch_results)
            decisions.extend(batch_decisions)
            batches_done += 1
            ticket._emit(
                EventKind.BATCH,
                {
                    "documents_done": len(results),
                    "n_documents": len(documents),
                    "batches_done": batches_done,
                    # Monotonic progress clock: wall-clock timestamps on the
                    # event envelope can step under NTP; elapsed_s cannot.
                    "elapsed_s": round(perf_counter() - started, 6),
                },
            )
        if cache_policy.writes:
            pipeline.cache.flush()
        wall_time = perf_counter() - started
        execution = self._backend.stats()
        # The backend is shared across tickets, so the execution block is
        # service-scoped telemetry, not this request's alone — say so.
        execution.extra["shared_backend"] = True
        usage = ResourceUsage()
        for result in results:
            usage = usage + result.usage
        return ParseReport(
            request=request,
            parser_name=parser.name,
            n_documents=len(documents),
            results=results,
            decisions=decisions,
            usage=usage,
            wall_time_seconds=wall_time,
            cache=(
                cache_recorder.snapshot() if cache_recorder is not None else CacheStats()
            ),
            execution=execution,
        )

    # ------------------------------------------------------------------ #
    # Introspection and lifecycle
    # ------------------------------------------------------------------ #
    def describe(self) -> dict[str, Any]:
        """Live counters of the service (the ``repro serve`` summary block)."""
        with self._lock:
            description: dict[str, Any] = dict(self._counters)
            description.update(
                {
                    "queued": len(self._queued),
                    "active": len(self._active),
                    "max_active": self.config.max_active,
                    "served_by_client": dict(sorted(self._served_by_client.items())),
                }
            )
        description["backend"] = self._backend.stats().to_json_dict()
        return description

    def drain(self, timeout: float | None = None) -> None:
        """Block until no work is queued or running."""
        with self._idle:
            if not self._idle.wait_for(
                lambda: not self._queued and not self._active, timeout
            ):
                raise TimeoutError(f"service did not drain within {timeout}s")

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop accepting submissions, settle outstanding work, release pools.

        ``drain=True`` (default) lets queued and running requests finish;
        ``drain=False`` cancels everything still queued (running requests
        always complete — the backend has no preemption).
        """
        with self._lock:
            already_torn_down = self._torn_down
            self._torn_down = True
            self._closed = True
            abandoned = [] if drain else list(self._queued)
            if not drain:
                self._queued.clear()
                self._counters["cancelled"] += len(abandoned)
                self._sync_gauges()
        if already_torn_down:
            return  # idempotent: the first close() owns the teardown
        for ticket in abandoned:
            _TICKETS.inc(state="cancelled")
            ticket._set_state(TicketState.CANCELLED)
            ticket._emit(
                EventKind.CANCELLED,
                {"reason": "service closed", "elapsed_s": round(ticket._elapsed_s(), 6)},
            )
        if drain:
            self.drain(timeout)
        self._runners.shutdown(wait=True)
        if self._owns_backend:
            self._backend.close()
        self.pipeline.cache.flush()

    def __enter__(self) -> "ParseService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def serve_requests(
    requests: "Mapping[str, ParseRequest] | list[ParseRequest]",
    pipeline: ParsePipeline | None = None,
    config: ServiceConfig | None = None,
    event_sink: Callable[[ProgressEvent], None] | None = None,
    priorities: Mapping[str, int] | None = None,
) -> dict[str, ParseReport]:
    """Convenience: run a batch of requests through a service, return reports.

    ``requests`` maps client names to requests (a plain list gets
    ``client-N`` names); the optional ``priorities`` map ranks clients.
    This is the one-call path the ``repro submit`` smoke test uses.
    """
    if isinstance(requests, list):
        requests = {f"client-{i}": request for i, request in enumerate(requests)}
    reports: dict[str, ParseReport] = {}
    with ParseService(pipeline=pipeline, config=config, event_sink=event_sink) as service:
        tickets = {
            name: service.submit(
                request,
                client=name,
                priority=(priorities or {}).get(name, 0),
            )
            for name, request in requests.items()
        }
        for name, ticket in tickets.items():
            reports[name] = ticket.result()
    return reports
