"""Admission policy of the parse service: priorities with fair share.

When the service has a free execution slot it must pick one queued
ticket.  :class:`FairShareAdmission` implements the scheduling
discipline the service promises its callers:

1. **Priority first** — only tickets of the highest queued priority are
   eligible (higher numbers are more urgent; the default is 0).
2. **Fair share within a priority tier** — among eligible tickets, the
   client with the least work currently *running* goes first; ties break
   toward the client that has been *served least* overall, so a chatty
   client cannot starve a quiet one even between bursts.
3. **FIFO within a client** — the oldest submission of the chosen
   client runs first.

The policy is a pure function over queue state (no clocks, no
randomness), which keeps admission decisions unit-testable and
replayable.
"""

from __future__ import annotations

from typing import Mapping, Protocol, Sequence


class AdmissibleTicket(Protocol):
    """What the policy needs to know about a queued ticket."""

    priority: int
    client: str
    seq: int


class FairShareAdmission:
    """Priority tiers with least-active / least-served fair share inside."""

    def select(
        self,
        queued: Sequence[AdmissibleTicket],
        active_by_client: Mapping[str, int],
        served_by_client: Mapping[str, int],
    ) -> AdmissibleTicket:
        """Pick the next ticket to admit from a non-empty queue."""
        if not queued:
            raise ValueError("select() requires a non-empty queue")
        top = max(ticket.priority for ticket in queued)
        eligible = [ticket for ticket in queued if ticket.priority == top]
        return min(
            eligible,
            key=lambda ticket: (
                active_by_client.get(ticket.client, 0),
                served_by_client.get(ticket.client, 0),
                ticket.seq,
            ),
        )

    def order(
        self,
        queued: Sequence[AdmissibleTicket],
        active_by_client: Mapping[str, int] | None = None,
        served_by_client: Mapping[str, int] | None = None,
    ) -> list[AdmissibleTicket]:
        """The full admission order of a queue snapshot (for introspection).

        Simulates repeated :meth:`select` calls, counting each pick as
        active work for its client — the order real admissions would take
        if every admitted ticket kept running.
        """
        active = dict(active_by_client or {})
        served = dict(served_by_client or {})
        remaining = list(queued)
        ordered: list[AdmissibleTicket] = []
        while remaining:
            pick = self.select(remaining, active, served)
            remaining.remove(pick)
            active[pick.client] = active.get(pick.client, 0) + 1
            ordered.append(pick)
        return ordered
