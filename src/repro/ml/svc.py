"""Linear support-vector classification (Pegasos-style SGD, one-vs-rest).

Table 4's "CLS I: Metadata" rows use support vector classification over
metadata features (format, producer, year, publisher, category).  This is a
from-scratch linear SVM with hinge loss, trained with the Pegasos stochastic
sub-gradient method, wrapped one-vs-rest for multi-class problems.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import rng_from


@dataclass
class LinearSVC:
    """One-vs-rest linear SVM with hinge loss.

    Attributes
    ----------
    n_classes:
        Number of classes.
    regularization:
        Pegasos λ (weight of the L2 term).
    n_epochs:
        Passes over the training data.
    seed:
        Seed of the sampling order.
    """

    n_classes: int = 2
    regularization: float = 1e-3
    n_epochs: int = 30
    seed: int = 13
    weights: np.ndarray | None = field(default=None, init=False)
    bias: np.ndarray | None = field(default=None, init=False)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LinearSVC":
        """Fit on ``features [n, d]`` and integer ``labels [n]``."""
        X = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels, dtype=np.int64)
        if X.shape[0] != y.shape[0]:
            raise ValueError("features and labels must have the same number of rows")
        n, d = X.shape
        self.weights = np.zeros((d, self.n_classes), dtype=np.float64)
        self.bias = np.zeros(self.n_classes, dtype=np.float64)
        rng = rng_from(self.seed, "linear-svc", n, d)
        # Pegasos: learning rate 1 / (λ t) with t the global update counter.
        t = 0
        for _ in range(self.n_epochs):
            order = rng.permutation(n)
            for i in order:
                t += 1
                eta = 1.0 / (self.regularization * t)
                x = X[i]
                targets = np.where(np.arange(self.n_classes) == y[i], 1.0, -1.0)
                margins = targets * (x @ self.weights + self.bias)
                violating = margins < 1.0
                # L2 shrinkage on every step, hinge sub-gradient on violators.
                self.weights *= 1.0 - eta * self.regularization
                if violating.any():
                    update = eta * targets * violating
                    self.weights += np.outer(x, update)
                    self.bias += update
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Raw per-class scores ``[n, n_classes]``."""
        if self.weights is None or self.bias is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(features, dtype=np.float64)
        return X @ self.weights + self.bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most likely class per row."""
        return self.decision_function(features).argmax(axis=1)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy."""
        return float(np.mean(self.predict(features) == np.asarray(labels)))
