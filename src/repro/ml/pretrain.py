"""Masked-token pre-training of the Transformer encoders.

Table 4 of the paper contrasts encoders pre-trained on scientific corpora
(SciBERT, SPECTER) with encoders pre-trained on web-scale text (BERT,
MiniLM-L6): the scientific ones transfer better to parser-accuracy prediction.
Offline we cannot load those checkpoints, so the distinction is reproduced
mechanistically: every encoder variant is pre-trained here with a small
masked-token objective, either on sentences drawn from the synthetic
*scientific* corpus or on *generic* web-style sentences, before being
fine-tuned on the selector task.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.documents import lexicon
from repro.documents.textgen import ScientificTextGenerator, generate_generic_sentences
from repro.ml.tokenizer import MASK_ID, PAD_ID
from repro.ml.trainer import AdamOptimizer, TrainingHistory, clip_gradients, minibatch_indices
from repro.ml.transformer import TransformerEncoder
from repro.utils.rng import rng_from


@dataclass(frozen=True)
class PretrainConfig:
    """Masked-token pre-training hyper-parameters."""

    n_sentences: int = 1500
    mask_probability: float = 0.15
    n_epochs: int = 2
    batch_size: int = 32
    learning_rate: float = 1e-3
    max_grad_norm: float = 5.0
    seed: int = 23


def scientific_sentences(n_sentences: int, seed: int) -> list[str]:
    """Sentences sampled across scientific domains (SciBERT-style corpus)."""
    rng = rng_from(seed, "pretrain-scientific")
    sentences: list[str] = []
    domains = list(lexicon.DOMAINS)
    per_domain = max(1, n_sentences // len(domains))
    for domain in domains:
        generator = ScientificTextGenerator(domain, rng)
        for _ in range(per_domain):
            sentences.append(generator.sentence())
    return sentences[:n_sentences]


def generic_sentences(n_sentences: int, seed: int) -> list[str]:
    """Web-style sentences (BERT/MiniLM-style corpus)."""
    rng = rng_from(seed, "pretrain-generic")
    return generate_generic_sentences(rng, n_sentences)


def masked_token_pretrain(
    encoder: TransformerEncoder,
    sentences: list[str],
    config: PretrainConfig | None = None,
) -> TrainingHistory:
    """Pre-train an encoder with a masked-token objective (tied output embedding).

    A random subset of non-padding positions is replaced with the MASK token;
    the encoder must recover the original token id through a softmax over the
    (tied) token-embedding matrix.  The procedure teaches the embeddings and
    attention layers the co-occurrence statistics of their pre-training corpus,
    which is exactly the property the downstream selector exploits.
    """
    config = config or PretrainConfig()
    history = TrainingHistory()
    if not sentences:
        return history
    ids_all, mask_all = encoder.encode_texts(sentences)
    rng = rng_from(config.seed, "mlm", len(sentences))
    optimizer = AdamOptimizer(learning_rate=config.learning_rate)
    vocab_size = encoder.config.vocab_size
    for epoch in range(config.n_epochs):
        epoch_loss = 0.0
        n_batches = 0
        for batch in minibatch_indices(len(sentences), config.batch_size, config.seed, epoch):
            ids = ids_all[batch].copy()
            mask = mask_all[batch]
            maskable = (mask > 0) & (ids != PAD_ID)
            maskable[:, 0] = False  # never mask the CLS position
            random_mask = rng.random(ids.shape) < config.mask_probability
            positions = maskable & random_mask
            if not positions.any():
                continue
            targets = ids[positions]
            masked_ids = ids.copy()
            masked_ids[positions] = MASK_ID
            hidden, cache = encoder.forward(masked_ids, mask)
            token_embedding = encoder.params["token_embedding"]
            masked_hidden = hidden[positions]  # [n_masked, D]
            logits = masked_hidden @ token_embedding.T  # [n_masked, V]
            logits -= logits.max(axis=1, keepdims=True)
            exp = np.exp(logits)
            probs = exp / exp.sum(axis=1, keepdims=True)
            n_masked = targets.shape[0]
            loss = float(-np.mean(np.log(probs[np.arange(n_masked), targets] + 1e-12)))
            epoch_loss += loss
            n_batches += 1
            grad_logits = probs
            grad_logits[np.arange(n_masked), targets] -= 1.0
            grad_logits /= n_masked
            # Tied output projection: gradients flow both into the masked
            # hidden states and into the embedding matrix.
            grad_masked_hidden = grad_logits @ token_embedding
            grad_token_embedding_out = grad_logits.T @ masked_hidden  # [V, D]
            grad_hidden = np.zeros_like(hidden)
            grad_hidden[positions] = grad_masked_hidden
            grads = encoder.backward(grad_hidden, cache)
            grads["token_embedding"] = grads["token_embedding"] + grad_token_embedding_out
            clip_gradients(grads, config.max_grad_norm)
            optimizer.step(encoder.params, grads)
        history.record(epoch_loss / max(1, n_batches))
    return history


def pretrain_encoder_variant(
    encoder: TransformerEncoder,
    corpus_kind: str,
    config: PretrainConfig | None = None,
) -> TrainingHistory:
    """Pre-train an encoder on a named corpus kind (``"scientific"`` or ``"generic"``)."""
    config = config or PretrainConfig()
    if corpus_kind == "scientific":
        sentences = scientific_sentences(config.n_sentences, config.seed)
    elif corpus_kind == "generic":
        sentences = generic_sentences(config.n_sentences, config.seed)
    else:
        raise ValueError(f"unknown pre-training corpus kind {corpus_kind!r}")
    return masked_token_pretrain(encoder, sentences, config)
