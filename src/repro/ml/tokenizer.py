"""Hashed word tokeniser shared by the fastText and Transformer models.

Real SciBERT/BERT checkpoints bring their own WordPiece vocabularies; offline
we use the hashing trick instead: every word (and, for fastText, character
n-gram) maps to a bucket through a stable hash.  Hashing keeps the
implementation dependency-free, gives a fixed vocabulary size, and — because
the hash is stable — keeps models reproducible across processes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.utils.hashing import stable_hash

_TOKEN_RE = re.compile(r"[a-z0-9]+|[^\sa-z0-9]")

#: Reserved token ids.
PAD_ID = 0
CLS_ID = 1
MASK_ID = 2
FIRST_HASH_ID = 3


@dataclass(frozen=True)
class HashingTokenizer:
    """Stable hashing tokeniser.

    Attributes
    ----------
    vocab_size:
        Total number of token ids, including the reserved PAD/CLS/MASK ids.
    max_length:
        Maximum sequence length (including the leading CLS token); longer
        texts are truncated, shorter ones padded with PAD.
    lowercase:
        Whether to lowercase before tokenising.
    """

    vocab_size: int = 4096
    max_length: int = 128
    lowercase: bool = True

    def __post_init__(self) -> None:
        if self.vocab_size <= FIRST_HASH_ID + 1:
            raise ValueError("vocab_size too small for reserved ids")
        if self.max_length < 2:
            raise ValueError("max_length must be at least 2")

    # ------------------------------------------------------------------ #
    def words(self, text: str) -> list[str]:
        """Split text into word/punctuation tokens."""
        if self.lowercase:
            text = text.lower()
        return _TOKEN_RE.findall(text)

    def token_id(self, token: str) -> int:
        """Stable id of one token."""
        span = self.vocab_size - FIRST_HASH_ID
        return FIRST_HASH_ID + (stable_hash("tok", token) % span)

    def encode(self, text: str) -> np.ndarray:
        """Encode text into a fixed-length id array ``[CLS, tokens..., PAD...]``."""
        ids = [CLS_ID]
        for token in self.words(text):
            ids.append(self.token_id(token))
            if len(ids) >= self.max_length:
                break
        attention = len(ids)
        if len(ids) < self.max_length:
            ids.extend([PAD_ID] * (self.max_length - len(ids)))
        array = np.asarray(ids, dtype=np.int64)
        return array

    def encode_batch(self, texts: list[str]) -> tuple[np.ndarray, np.ndarray]:
        """Encode a batch; returns ``(ids [B, L], attention_mask [B, L])``."""
        ids = np.stack([self.encode(t) for t in texts], axis=0)
        mask = (ids != PAD_ID).astype(np.float64)
        return ids, mask
