"""Labelled datasets for training and evaluating the selection models.

The supervised signal of the paper (Appendix A) is a regression dataset: for
every training document, the default parser's first-page text is paired with
the accuracy (BLEU) that *each* available parser achieves on that document.
Building the dataset therefore means running every parser on every training
document once and scoring its output — exactly what this module does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.documents.corpus import Corpus
from repro.documents.document import SciDocument
from repro.documents.metadata import DocumentMetadata
from repro.metrics.bleu import bleu_score
from repro.metrics.tokenize import word_tokenize
from repro.parsers.base import ParseResult
from repro.parsers.registry import ParserRegistry


@dataclass(frozen=True)
class QualityExample:
    """One supervised example for the selector."""

    doc_id: str
    default_text: str
    metadata: DocumentMetadata
    targets: np.ndarray  # per-parser accuracy, ordered like the dataset's parser_names
    n_tokens: int


@dataclass
class QualityDataset:
    """A collection of :class:`QualityExample` with a fixed parser ordering."""

    parser_names: list[str]
    examples: list[QualityExample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.examples)

    @property
    def texts(self) -> list[str]:
        """Default-parser first-page texts."""
        return [e.default_text for e in self.examples]

    @property
    def targets(self) -> np.ndarray:
        """Accuracy matrix ``[n_examples, n_parsers]``."""
        if not self.examples:
            return np.zeros((0, len(self.parser_names)))
        return np.stack([e.targets for e in self.examples], axis=0)

    @property
    def metadatas(self) -> list[DocumentMetadata]:
        return [e.metadata for e in self.examples]

    @property
    def doc_ids(self) -> list[str]:
        return [e.doc_id for e in self.examples]

    def best_parser_labels(self) -> np.ndarray:
        """Index of the accuracy-maximal parser per example."""
        return self.targets.argmax(axis=1)

    def subset(self, indices: Sequence[int]) -> "QualityDataset":
        """Dataset restricted to the given example indices."""
        return QualityDataset(
            parser_names=list(self.parser_names),
            examples=[self.examples[i] for i in indices],
        )


def default_parser_first_page_text(
    document: SciDocument, registry: ParserRegistry, default_parser: str = "pymupdf"
) -> str:
    """The text CLS I–III operate on: the default parser's first-page output."""
    parser = registry.get(default_parser)
    result: ParseResult = parser.parse(document)
    return result.page_texts[0] if result.page_texts else ""


def document_parser_bleu(
    document: SciDocument,
    result: ParseResult,
    label_pages: int | None = None,
) -> float:
    """BLEU of one parse against the document's ground truth.

    ``label_pages`` restricts scoring to the first *k* pages, which is how the
    paper's stage-1 regression targets (page-wise accuracy) are built; ``None``
    scores the whole document.
    """
    gt_pages = document.ground_truth_pages()
    parsed_pages = result.page_texts
    if label_pages is not None:
        gt_pages = gt_pages[:label_pages]
        parsed_pages = parsed_pages[:label_pages]
    return bleu_score("\n".join(parsed_pages), "\n".join(gt_pages))


def build_quality_dataset(
    corpus: Corpus,
    registry: ParserRegistry,
    default_parser: str = "pymupdf",
    label_pages: int | None = 3,
) -> QualityDataset:
    """Run every parser over the corpus and assemble the regression dataset.

    Parameters
    ----------
    corpus:
        Documents to label (normally the training split).
    registry:
        Parsers to label with; the dataset's target ordering follows
        ``registry.names``.
    default_parser:
        The parser whose first-page output forms the model input.
    label_pages:
        Number of leading pages used for the BLEU targets (``None`` = all).
    """
    if default_parser not in registry:
        raise KeyError(f"default parser {default_parser!r} not in registry")
    parser_names = registry.names
    dataset = QualityDataset(parser_names=parser_names)
    for document in corpus:
        targets = np.zeros(len(parser_names), dtype=np.float64)
        default_text = ""
        for j, name in enumerate(parser_names):
            result = registry.get(name).parse(document)
            targets[j] = document_parser_bleu(document, result, label_pages=label_pages)
            if name == default_parser:
                default_text = result.page_texts[0] if result.page_texts else ""
        n_tokens = len(word_tokenize(document.ground_truth_text()))
        dataset.examples.append(
            QualityExample(
                doc_id=document.doc_id,
                default_text=default_text,
                metadata=document.metadata,
                targets=targets,
                n_tokens=n_tokens,
            )
        )
    return dataset
