"""Direct preference optimisation (DPO) post-training.

Following the paper's Appendix A, the selector encoder is post-trained on
human preference pairs: for a document page, the text produced by the
preferred parser should receive a higher scalar quality score than the text
produced by the rejected parser.  The loss is the Bradley–Terry / DPO
objective

    L = −E log σ( β · [(s_θ(x⁺) − s_ref(x⁺)) − (s_θ(x⁻) − s_ref(x⁻))] )

where ``s_θ`` is the trainable scorer (shared encoder + scalar head) and
``s_ref`` is a frozen copy of the scorer taken before post-training.  By
default only the LoRA adapters and the scalar head are updated, matching the
paper's parameter-efficient recipe; the adapted encoder is then re-used by the
per-parser regression head (stage 3 re-fine-tuning with a lowered learning
rate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.ml.trainer import AdamOptimizer, TrainingHistory, clip_gradients, minibatch_indices
from repro.ml.transformer import TransformerEncoder
from repro.utils.rng import rng_from


@dataclass(frozen=True)
class PreferencePair:
    """One human judgement: ``preferred_text`` beat ``rejected_text``."""

    doc_id: str
    preferred_text: str
    rejected_text: str
    preferred_parser: str = ""
    rejected_parser: str = ""


@dataclass(frozen=True)
class DPOConfig:
    """DPO post-training hyper-parameters."""

    beta: float = 1.0
    learning_rate: float = 1e-3
    n_epochs: int = 3
    batch_size: int = 8
    lora_only: bool = True
    max_grad_norm: float = 5.0
    max_text_chars: int = 1500
    seed: int = 41


class DPOTrainer:
    """Post-trains an encoder-backed scorer on preference pairs."""

    def __init__(self, encoder: TransformerEncoder, config: DPOConfig | None = None) -> None:
        self.encoder = encoder
        self.config = config or DPOConfig()
        d = encoder.config.d_model
        rng = rng_from(self.config.seed, "dpo-head", d)
        self.score_weight = rng.normal(0.0, 0.05, size=d)
        self.score_bias = 0.0
        # Frozen reference scorer: a full parameter snapshot plus head copy.
        self._reference_params = encoder.clone_parameters()
        self._reference_weight = self.score_weight.copy()
        self._reference_bias = float(self.score_bias)
        self.history = TrainingHistory()

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def _pooled(self, texts: Sequence[str]) -> tuple[np.ndarray, dict, np.ndarray]:
        truncated = [t[: self.config.max_text_chars] for t in texts]
        ids, mask = self.encoder.encode_texts(truncated)
        hidden, cache = self.encoder.forward(ids, mask)
        pooled = self.encoder.pool(hidden, mask)
        cache["__hidden_shape"] = hidden.shape
        cache["__mask"] = mask
        return pooled, cache, mask

    def score(self, texts: Sequence[str]) -> np.ndarray:
        """Scalar quality score of each text under the current policy."""
        if not texts:
            return np.zeros(0)
        pooled, _, _ = self._pooled(texts)
        return pooled @ self.score_weight + self.score_bias

    def reference_score(self, texts: Sequence[str]) -> np.ndarray:
        """Scalar score of each text under the frozen reference scorer."""
        if not texts:
            return np.zeros(0)
        live_params = self.encoder.clone_parameters()
        self.encoder.load_parameters(self._reference_params)
        try:
            pooled, _, _ = self._pooled(texts)
            scores = pooled @ self._reference_weight + self._reference_bias
        finally:
            self.encoder.load_parameters(live_params)
        return scores

    def preference_accuracy(self, pairs: Sequence[PreferencePair]) -> float:
        """Fraction of pairs where the preferred text scores higher."""
        if not pairs:
            return 0.0
        preferred = self.score([p.preferred_text for p in pairs])
        rejected = self.score([p.rejected_text for p in pairs])
        return float(np.mean(preferred > rejected))

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def train(self, pairs: Sequence[PreferencePair]) -> TrainingHistory:
        """Run DPO post-training on a set of preference pairs."""
        cfg = self.config
        if not pairs:
            return self.history
        trainable = (
            self.encoder.lora_parameter_names()
            if cfg.lora_only and self.encoder.config.lora_rank > 0
            else self.encoder.parameter_names()
        )
        encoder_optimizer = AdamOptimizer(learning_rate=cfg.learning_rate)
        head_optimizer = AdamOptimizer(learning_rate=cfg.learning_rate)
        head_params = {"weight": self.score_weight.reshape(-1)}
        preferred_texts = [p.preferred_text[: cfg.max_text_chars] for p in pairs]
        rejected_texts = [p.rejected_text[: cfg.max_text_chars] for p in pairs]
        ref_preferred = self.reference_score(preferred_texts)
        ref_rejected = self.reference_score(rejected_texts)
        for epoch in range(cfg.n_epochs):
            epoch_loss = 0.0
            n_batches = 0
            for batch in minibatch_indices(len(pairs), cfg.batch_size, cfg.seed, epoch):
                batch = np.asarray(batch)
                pooled_pos, cache_pos, _ = self._pooled([preferred_texts[i] for i in batch])
                pooled_neg, cache_neg, _ = self._pooled([rejected_texts[i] for i in batch])
                score_pos = pooled_pos @ self.score_weight + self.score_bias
                score_neg = pooled_neg @ self.score_weight + self.score_bias
                margin = cfg.beta * (
                    (score_pos - ref_preferred[batch]) - (score_neg - ref_rejected[batch])
                )
                sigma = 1.0 / (1.0 + np.exp(-margin))
                loss = float(np.mean(-np.log(sigma + 1e-12)))
                epoch_loss += loss
                n_batches += 1
                # dL/dmargin = −(1 − σ); distribute to the two scores.
                grad_margin = -(1.0 - sigma) / batch.shape[0]
                grad_score_pos = cfg.beta * grad_margin
                grad_score_neg = -cfg.beta * grad_margin
                grad_weight = pooled_pos.T @ grad_score_pos + pooled_neg.T @ grad_score_neg
                self.score_bias -= cfg.learning_rate * float(
                    grad_score_pos.sum() + grad_score_neg.sum()
                )
                grad_pooled_pos = np.outer(grad_score_pos, self.score_weight)
                grad_pooled_neg = np.outer(grad_score_neg, self.score_weight)
                grads_pos = self.encoder.backward(
                    self.encoder.pool_backward(
                        grad_pooled_pos, cache_pos["__hidden_shape"], cache_pos["__mask"]
                    ),
                    cache_pos,
                )
                grads_neg = self.encoder.backward(
                    self.encoder.pool_backward(
                        grad_pooled_neg, cache_neg["__hidden_shape"], cache_neg["__mask"]
                    ),
                    cache_neg,
                )
                encoder_grads = {
                    name: grads_pos[name] + grads_neg[name] for name in trainable
                }
                clip_gradients(encoder_grads, cfg.max_grad_norm)
                encoder_optimizer.step(self.encoder.params, encoder_grads)
                head_optimizer.step(head_params, {"weight": grad_weight})
                self.score_weight = head_params["weight"]
            self.history.record(epoch_loss / max(1, n_batches))
        return self.history
