"""fastText-style text model: hashed bag-of-n-gram embeddings + linear head.

AdaParse (FT), the cheaper engine variant, does not run an LLM: it uses
pre-computed fastText word embeddings to decide whether the extracted text is
acceptable or the document should go straight to the high-quality parser.
This module provides that model: words and character n-grams are hashed into
an embedding table, averaged into a text vector, and fed to a linear head that
is trained either as a multi-output regressor (predicting per-parser accuracy)
or as a classifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.ml.tokenizer import HashingTokenizer
from repro.ml.trainer import AdamOptimizer, TrainingHistory, minibatch_indices
from repro.utils.hashing import stable_hash
from repro.utils.rng import rng_from


@dataclass(frozen=True)
class FastTextConfig:
    """Hyper-parameters of the fastText-style model."""

    embedding_dim: int = 64
    n_buckets: int = 1 << 15
    char_ngram_min: int = 3
    char_ngram_max: int = 5
    max_tokens: int = 300
    learning_rate: float = 5e-3
    n_epochs: int = 25
    batch_size: int = 32
    l2: float = 1e-5
    seed: int = 17


class FastTextModel:
    """Hashed n-gram embedding model with a linear output head.

    Parameters
    ----------
    config:
        Model hyper-parameters.
    n_outputs:
        Output dimension (one accuracy per parser for the regression use, or
        number of classes for classification).
    task:
        ``"regression"`` (squared error) or ``"classification"`` (softmax
        cross-entropy).
    """

    def __init__(self, config: FastTextConfig, n_outputs: int, task: str = "regression") -> None:
        if task not in ("regression", "classification"):
            raise ValueError(f"unknown task {task!r}")
        self.config = config
        self.n_outputs = n_outputs
        self.task = task
        self._tokenizer = HashingTokenizer(vocab_size=1 << 20, max_length=config.max_tokens + 1)
        rng = rng_from(config.seed, "fasttext-init", n_outputs, task)
        scale = 1.0 / np.sqrt(config.embedding_dim)
        self.embeddings = rng.normal(0.0, scale, size=(config.n_buckets, config.embedding_dim))
        self.head_weight = rng.normal(0.0, scale, size=(config.embedding_dim, n_outputs))
        self.head_bias = np.zeros(n_outputs, dtype=np.float64)
        self.history = TrainingHistory()

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #
    def bucket_ids(self, text: str) -> np.ndarray:
        """Hashed feature ids (words + character n-grams) of a text."""
        cfg = self.config
        words = self._tokenizer.words(text)[: cfg.max_tokens]
        ids: list[int] = []
        for word in words:
            ids.append(stable_hash("ft-word", word) % cfg.n_buckets)
            padded = f"<{word}>"
            for n in range(cfg.char_ngram_min, cfg.char_ngram_max + 1):
                if len(padded) < n:
                    continue
                for i in range(len(padded) - n + 1):
                    ids.append(stable_hash("ft-char", padded[i : i + n]) % cfg.n_buckets)
        if not ids:
            ids = [0]
        return np.asarray(ids, dtype=np.int64)

    def text_vector(self, text: str) -> np.ndarray:
        """Mean embedding of a text's hashed features."""
        ids = self.bucket_ids(text)
        return self.embeddings[ids].mean(axis=0)

    def text_vectors(self, texts: Sequence[str]) -> np.ndarray:
        """Matrix of text vectors ``[n_texts, embedding_dim]``."""
        return np.stack([self.text_vector(t) for t in texts], axis=0)

    # ------------------------------------------------------------------ #
    # Forward / loss
    # ------------------------------------------------------------------ #
    def predict(self, texts: Sequence[str]) -> np.ndarray:
        """Model outputs: regression values or class probabilities."""
        hidden = self.text_vectors(texts)
        logits = hidden @ self.head_weight + self.head_bias
        if self.task == "classification":
            shifted = logits - logits.max(axis=1, keepdims=True)
            exp = np.exp(shifted)
            return exp / exp.sum(axis=1, keepdims=True)
        return logits

    def _loss_and_grad_logits(
        self, logits: np.ndarray, targets: np.ndarray
    ) -> tuple[float, np.ndarray]:
        n = logits.shape[0]
        if self.task == "regression":
            diff = logits - targets
            loss = float(np.mean(diff * diff))
            grad = 2.0 * diff / (n * max(1, logits.shape[1]))
            return loss, grad
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        labels = targets.astype(np.int64).reshape(-1)
        loss = float(-np.mean(np.log(probs[np.arange(n), labels] + 1e-12)))
        grad = probs.copy()
        grad[np.arange(n), labels] -= 1.0
        return loss, grad / n

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(
        self,
        texts: Sequence[str],
        targets: np.ndarray,
        validation: tuple[Sequence[str], np.ndarray] | None = None,
    ) -> TrainingHistory:
        """Train the embedding table and head on (text, target) pairs."""
        cfg = self.config
        targets = np.asarray(targets, dtype=np.float64)
        if self.task == "regression" and targets.ndim == 1:
            targets = targets[:, None]
        if self.task == "regression" and not np.any(self.head_bias):
            # Start the head at the marginal target means so early epochs fit
            # residuals rather than the global offset.
            self.head_bias = targets.mean(axis=0).astype(np.float64)
        cached_ids = [self.bucket_ids(t) for t in texts]
        optimizer = AdamOptimizer(learning_rate=cfg.learning_rate, weight_decay=cfg.l2)
        params = {
            "embeddings": self.embeddings,
            "head_weight": self.head_weight,
            "head_bias": self.head_bias,
        }
        for epoch in range(cfg.n_epochs):
            epoch_loss = 0.0
            n_batches = 0
            for batch in minibatch_indices(len(texts), cfg.batch_size, cfg.seed, epoch):
                ids_batch = [cached_ids[i] for i in batch]
                hidden = np.stack([self.embeddings[ids].mean(axis=0) for ids in ids_batch], axis=0)
                logits = hidden @ self.head_weight + self.head_bias
                loss, grad_logits = self._loss_and_grad_logits(logits, targets[batch])
                epoch_loss += loss
                n_batches += 1
                grad_head_w = hidden.T @ grad_logits
                grad_head_b = grad_logits.sum(axis=0)
                grad_hidden = grad_logits @ self.head_weight.T
                grad_emb = np.zeros_like(self.embeddings)
                for row, ids in enumerate(ids_batch):
                    np.add.at(grad_emb, ids, grad_hidden[row] / len(ids))
                grads = {
                    "embeddings": grad_emb,
                    "head_weight": grad_head_w,
                    "head_bias": grad_head_b,
                }
                optimizer.step(params, grads)
            train_loss = epoch_loss / max(1, n_batches)
            val_loss = None
            if validation is not None:
                val_texts, val_targets = validation
                val_loss = self.evaluate_loss(val_texts, np.asarray(val_targets, dtype=np.float64))
            self.history.record(train_loss, val_loss)
        return self.history

    def evaluate_loss(self, texts: Sequence[str], targets: np.ndarray) -> float:
        """Loss of the current model on a labelled set."""
        targets = np.asarray(targets, dtype=np.float64)
        if self.task == "regression" and targets.ndim == 1:
            targets = targets[:, None]
        hidden = self.text_vectors(texts)
        logits = hidden @ self.head_weight + self.head_bias
        loss, _ = self._loss_and_grad_logits(logits, targets)
        return loss
