"""Per-parser accuracy regression: the model behind CLS III.

Given the default parser's (PyMuPDF's) first-page text, the predictor
regresses the accuracy (BLEU) every available parser would achieve on the
document — the quantity the AdaParse engine ranks and budgets on.  Two
backends are provided, matching the paper's two engine variants:

* ``"transformer"`` — a Transformer encoder (optionally LoRA-adapted and DPO
  post-trained) with a linear regression head: the AdaParse (LLM) path.
* ``"fasttext"`` — the hashed-n-gram embedding model: the AdaParse (FT) path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.fasttext import FastTextConfig, FastTextModel
from repro.ml.trainer import AdamOptimizer, TrainingHistory, clip_gradients, minibatch_indices
from repro.ml.transformer import TransformerConfig, TransformerEncoder
from repro.utils.rng import rng_from


@dataclass(frozen=True)
class FineTuneConfig:
    """Supervised fine-tuning hyper-parameters for the transformer backend."""

    n_epochs: int = 6
    batch_size: int = 16
    learning_rate: float = 2e-3
    head_learning_rate: float = 5e-3
    lora_only: bool = True
    max_grad_norm: float = 5.0
    seed: int = 29


class ParserQualityPredictor:
    """Predicts a per-parser accuracy vector from extracted text."""

    def __init__(
        self,
        parser_names: list[str],
        backend: str = "transformer",
        encoder: TransformerEncoder | None = None,
        transformer_config: TransformerConfig | None = None,
        fasttext_config: FastTextConfig | None = None,
        finetune_config: FineTuneConfig | None = None,
    ) -> None:
        if backend not in ("transformer", "fasttext"):
            raise ValueError(f"unknown backend {backend!r}")
        if not parser_names:
            raise ValueError("parser_names must be non-empty")
        self.parser_names = list(parser_names)
        self.backend = backend
        self.finetune_config = finetune_config or FineTuneConfig()
        n_outputs = len(parser_names)
        if backend == "fasttext":
            self.fasttext = FastTextModel(
                fasttext_config or FastTextConfig(), n_outputs=n_outputs, task="regression"
            )
            self.encoder = None
            self.head_weight = None
            self.head_bias = None
        else:
            self.encoder = encoder or TransformerEncoder(
                transformer_config or TransformerConfig(), name="quality-encoder"
            )
            rng = rng_from(self.finetune_config.seed, "quality-head", n_outputs)
            d = self.encoder.config.d_model
            self.head_weight = rng.normal(0.0, 0.05, size=(d, n_outputs))
            self.head_bias = np.full(n_outputs, 0.5, dtype=np.float64)
            self.fasttext = None
        self.history = TrainingHistory()

    # ------------------------------------------------------------------ #
    # Fingerprinting
    # ------------------------------------------------------------------ #
    def weights_fingerprint(self) -> str:
        """Stable hex digest of the model's trained weights.

        Part of the engine's cache fingerprint: any change to the weights
        (more training, a different seed, a loaded checkpoint) must
        invalidate cached routing decisions.
        """
        from repro.utils.hashing import hash_buffers

        arrays: list[tuple[str, np.ndarray]] = []
        if self.backend == "fasttext":
            assert self.fasttext is not None
            arrays.extend(
                [
                    ("embeddings", self.fasttext.embeddings),
                    ("head_weight", self.fasttext.head_weight),
                    ("head_bias", self.fasttext.head_bias),
                ]
            )
        else:
            assert self.encoder is not None
            for name, value in sorted(self.encoder.clone_parameters().items()):
                arrays.append((name, value))
            arrays.append(("head_weight", self.head_weight))
            arrays.append(("head_bias", self.head_bias))
        buffers: list[bytes] = [self.backend.encode("utf-8")]
        buffers.append(",".join(self.parser_names).encode("utf-8"))
        for name, value in arrays:
            array = np.ascontiguousarray(value)
            buffers.append(name.encode("utf-8"))
            buffers.append(str(array.dtype).encode("utf-8"))
            buffers.append(str(array.shape).encode("utf-8"))
            buffers.append(array.tobytes())
        return hash_buffers(*buffers)

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def predict(self, texts: list[str]) -> np.ndarray:
        """Predicted accuracy matrix ``[n_texts, n_parsers]``."""
        if not texts:
            return np.zeros((0, len(self.parser_names)))
        if self.backend == "fasttext":
            assert self.fasttext is not None
            return self.fasttext.predict(texts)
        assert self.encoder is not None and self.head_weight is not None
        ids, mask = self.encoder.encode_texts(texts)
        hidden, _ = self.encoder.forward(ids, mask)
        pooled = self.encoder.pool(hidden, mask)
        return pooled @ self.head_weight + self.head_bias

    def predict_best_parser(self, texts: list[str]) -> list[str]:
        """Name of the parser with the highest predicted accuracy per text."""
        predictions = self.predict(texts)
        return [self.parser_names[int(i)] for i in predictions.argmax(axis=1)]

    def predicted_improvement(
        self, texts: list[str], baseline_parser: str
    ) -> np.ndarray:
        """Best predicted accuracy minus the baseline parser's predicted accuracy."""
        if baseline_parser not in self.parser_names:
            raise KeyError(f"unknown baseline parser {baseline_parser!r}")
        predictions = self.predict(texts)
        baseline = predictions[:, self.parser_names.index(baseline_parser)]
        return predictions.max(axis=1) - baseline

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(
        self,
        texts: list[str],
        targets: np.ndarray,
        validation: tuple[list[str], np.ndarray] | None = None,
        learning_rate: float | None = None,
        n_epochs: int | None = None,
    ) -> TrainingHistory:
        """Fit the predictor on (text, per-parser accuracy) pairs."""
        targets = np.asarray(targets, dtype=np.float64)
        if targets.ndim != 2 or targets.shape[1] != len(self.parser_names):
            raise ValueError(
                f"targets must have shape [n, {len(self.parser_names)}], got {targets.shape}"
            )
        if self.backend == "fasttext":
            assert self.fasttext is not None
            self.history = self.fasttext.fit(texts, targets, validation=validation)
            return self.history
        return self._fit_transformer(texts, targets, validation, learning_rate, n_epochs)

    def _fit_transformer(
        self,
        texts: list[str],
        targets: np.ndarray,
        validation: tuple[list[str], np.ndarray] | None,
        learning_rate: float | None,
        n_epochs: int | None,
    ) -> TrainingHistory:
        assert self.encoder is not None and self.head_weight is not None and self.head_bias is not None
        cfg = self.finetune_config
        lr = learning_rate if learning_rate is not None else cfg.learning_rate
        epochs = n_epochs if n_epochs is not None else cfg.n_epochs
        ids_all, mask_all = self.encoder.encode_texts(texts)
        encoder_param_names = (
            self.encoder.lora_parameter_names()
            if cfg.lora_only and self.encoder.config.lora_rank > 0
            else self.encoder.parameter_names()
        )
        encoder_optimizer = AdamOptimizer(learning_rate=lr)
        head_optimizer = AdamOptimizer(learning_rate=cfg.head_learning_rate)
        head_params = {"weight": self.head_weight, "bias": self.head_bias}
        n_outputs = len(self.parser_names)
        for epoch in range(epochs):
            epoch_loss = 0.0
            n_batches = 0
            for batch in minibatch_indices(len(texts), cfg.batch_size, cfg.seed, epoch):
                ids = ids_all[batch]
                mask = mask_all[batch]
                batch_targets = targets[batch]
                hidden, cache = self.encoder.forward(ids, mask)
                pooled = self.encoder.pool(hidden, mask)
                preds = pooled @ self.head_weight + self.head_bias
                diff = preds - batch_targets
                loss = float(np.mean(diff * diff))
                epoch_loss += loss
                n_batches += 1
                grad_preds = 2.0 * diff / (diff.shape[0] * n_outputs)
                grad_head_w = pooled.T @ grad_preds
                grad_head_b = grad_preds.sum(axis=0)
                grad_pooled = grad_preds @ self.head_weight.T
                grad_hidden = self.encoder.pool_backward(grad_pooled, hidden.shape, mask)
                grads = self.encoder.backward(grad_hidden, cache)
                encoder_grads = {name: grads[name] for name in encoder_param_names}
                clip_gradients(encoder_grads, cfg.max_grad_norm)
                encoder_optimizer.step(self.encoder.params, encoder_grads)
                head_optimizer.step(head_params, {"weight": grad_head_w, "bias": grad_head_b})
            val_loss = None
            if validation is not None:
                val_loss = self.evaluate_loss(validation[0], np.asarray(validation[1]))
            self.history.record(epoch_loss / max(1, n_batches), val_loss)
        return self.history

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate_loss(self, texts: list[str], targets: np.ndarray) -> float:
        """Mean squared error on a labelled set."""
        targets = np.asarray(targets, dtype=np.float64)
        preds = self.predict(texts)
        return float(np.mean((preds - targets) ** 2))

    def r2_scores(self, texts: list[str], targets: np.ndarray) -> dict[str, float]:
        """Per-parser coefficient of determination (the paper reports R² for
        PyMuPDF and Nougat predictions)."""
        targets = np.asarray(targets, dtype=np.float64)
        preds = self.predict(texts)
        scores: dict[str, float] = {}
        for j, name in enumerate(self.parser_names):
            ss_res = float(np.sum((targets[:, j] - preds[:, j]) ** 2))
            ss_tot = float(np.sum((targets[:, j] - targets[:, j].mean()) ** 2))
            scores[name] = 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0
        return scores

    def selection_accuracy(self, texts: list[str], targets: np.ndarray) -> float:
        """Fraction of texts where the predicted-best parser is the true best."""
        targets = np.asarray(targets, dtype=np.float64)
        preds = self.predict(texts)
        return float(np.mean(preds.argmax(axis=1) == targets.argmax(axis=1)))
