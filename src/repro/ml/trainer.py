"""Optimiser and training-loop utilities shared by the numpy models.

Provides a parameter container, an Adam optimiser operating on named parameter
dictionaries, mini-batch iteration, and a small training-history record.  The
fastText and Transformer models express their gradients as name → array
dictionaries so the same optimiser drives both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.utils.rng import rng_from

#: A named set of parameters (or gradients): name → array.
ParamDict = dict[str, np.ndarray]


@dataclass
class AdamOptimizer:
    """Adam optimiser over a named parameter dictionary."""

    learning_rate: float = 1e-3
    beta1: float = 0.9
    beta2: float = 0.999
    epsilon: float = 1e-8
    weight_decay: float = 0.0
    _m: ParamDict = field(default_factory=dict, init=False, repr=False)
    _v: ParamDict = field(default_factory=dict, init=False, repr=False)
    _t: int = field(default=0, init=False, repr=False)

    def step(self, params: ParamDict, grads: ParamDict) -> None:
        """Update ``params`` in place given ``grads`` (missing keys are skipped)."""
        self._t += 1
        t = self._t
        for name, grad in grads.items():
            if name not in params:
                continue
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * params[name]
            m = self._m.get(name)
            v = self._v.get(name)
            if m is None:
                m = np.zeros_like(grad)
                v = np.zeros_like(grad)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * (grad * grad)
            self._m[name] = m
            self._v[name] = v
            m_hat = m / (1.0 - self.beta1**t)
            v_hat = v / (1.0 - self.beta2**t)
            params[name] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def reset(self) -> None:
        """Clear optimiser state (moments and step counter)."""
        self._m.clear()
        self._v.clear()
        self._t = 0


@dataclass
class SGDOptimizer:
    """Plain SGD with optional momentum (used by the smaller models)."""

    learning_rate: float = 0.05
    momentum: float = 0.0
    _velocity: ParamDict = field(default_factory=dict, init=False, repr=False)

    def step(self, params: ParamDict, grads: ParamDict) -> None:
        """Update ``params`` in place given ``grads``."""
        for name, grad in grads.items():
            if name not in params:
                continue
            if self.momentum > 0.0:
                velocity = self._velocity.get(name)
                if velocity is None:
                    velocity = np.zeros_like(grad)
                velocity = self.momentum * velocity - self.learning_rate * grad
                self._velocity[name] = velocity
                params[name] += velocity
            else:
                params[name] -= self.learning_rate * grad


@dataclass
class TrainingHistory:
    """Per-epoch loss record (train and optional validation)."""

    train_loss: list[float] = field(default_factory=list)
    validation_loss: list[float] = field(default_factory=list)

    def record(self, train: float, validation: float | None = None) -> None:
        self.train_loss.append(float(train))
        if validation is not None:
            self.validation_loss.append(float(validation))

    @property
    def best_validation_loss(self) -> float | None:
        return min(self.validation_loss) if self.validation_loss else None


def minibatch_indices(
    n_examples: int, batch_size: int, seed: int, epoch: int
) -> Iterator[np.ndarray]:
    """Yield shuffled mini-batch index arrays for one epoch."""
    if n_examples <= 0:
        return
    rng = rng_from(seed, "minibatch", epoch)
    order = rng.permutation(n_examples)
    for start in range(0, n_examples, batch_size):
        yield order[start : start + batch_size]


def clip_gradients(grads: ParamDict, max_norm: float) -> float:
    """Clip gradients to a global L2 norm; returns the pre-clip norm."""
    total = 0.0
    for grad in grads.values():
        total += float(np.sum(grad * grad))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for name in grads:
            grads[name] = grads[name] * scale
    return norm


def numerical_gradient(
    loss_fn: Callable[[], float], parameter: np.ndarray, epsilon: float = 1e-5
) -> np.ndarray:
    """Central-difference numerical gradient (used by gradient-check tests)."""
    grad = np.zeros_like(parameter)
    flat = parameter.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        loss_plus = loss_fn()
        flat[i] = original - epsilon
        loss_minus = loss_fn()
        flat[i] = original
        grad_flat[i] = (loss_plus - loss_minus) / (2.0 * epsilon)
    return grad
