"""A trainable Transformer encoder implemented with numpy (manual backprop).

This is the reproduction's stand-in for the pre-trained language models the
paper fine-tunes for parser selection (SciBERT; BERT, MiniLM and SPECTER as
baselines in Table 4).  The architecture is a standard post-LayerNorm encoder:

    token embedding + position embedding
    → [multi-head self-attention → residual → LayerNorm
       → feed-forward (GELU) → residual → LayerNorm] × n_layers
    → pooled representation (CLS token or masked mean)

The encoder exposes an explicit ``forward`` that returns a cache and a
``backward`` that turns gradients w.r.t. the hidden states into gradients
w.r.t. every parameter, so downstream heads (regression, DPO scoring, masked
token prediction) can be trained with the shared optimisers in
:mod:`repro.ml.trainer`.  Optional LoRA adapters on the attention query/value
projections provide the parameter-efficient fine-tuning path the paper uses
(Section 7.2).  Dropout is omitted: determinism across runs is worth more to
the reproduction than the small regularisation benefit at these model sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.ml.tokenizer import HashingTokenizer
from repro.utils.rng import rng_from

ParamDict = dict[str, np.ndarray]


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture and tokenisation hyper-parameters."""

    vocab_size: int = 4096
    max_length: int = 128
    d_model: int = 64
    n_heads: int = 4
    n_layers: int = 2
    d_ff: int = 128
    pooling: str = "cls"
    layer_norm_epsilon: float = 1e-5
    seed: int = 11
    lora_rank: int = 0
    lora_alpha: float = 8.0

    def __post_init__(self) -> None:
        if self.d_model % self.n_heads != 0:
            raise ValueError("d_model must be divisible by n_heads")
        if self.pooling not in ("cls", "mean"):
            raise ValueError(f"unknown pooling {self.pooling!r}")
        if self.lora_rank < 0:
            raise ValueError("lora_rank must be non-negative")


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation)."""
    c = np.sqrt(2.0 / np.pi)
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x**3)))


def gelu_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of the tanh-approximated GELU."""
    c = np.sqrt(2.0 / np.pi)
    u = c * (x + 0.044715 * x**3)
    tanh_u = np.tanh(u)
    du_dx = c * (1.0 + 3.0 * 0.044715 * x**2)
    return 0.5 * (1.0 + tanh_u) + 0.5 * x * (1.0 - tanh_u**2) * du_dx


class TransformerEncoder:
    """Numpy Transformer encoder with explicit forward/backward passes."""

    def __init__(self, config: TransformerConfig, name: str = "encoder") -> None:
        self.config = config
        self.name = name
        self.tokenizer = HashingTokenizer(
            vocab_size=config.vocab_size, max_length=config.max_length
        )
        self.params: ParamDict = {}
        self._init_parameters()

    # ------------------------------------------------------------------ #
    # Parameters
    # ------------------------------------------------------------------ #
    def _init_parameters(self) -> None:
        cfg = self.config
        rng = rng_from(cfg.seed, "transformer-init", self.name)
        d, f = cfg.d_model, cfg.d_ff
        scale = 0.02
        self.params["token_embedding"] = rng.normal(0.0, scale, size=(cfg.vocab_size, d))
        self.params["position_embedding"] = rng.normal(0.0, scale, size=(cfg.max_length, d))
        for layer in range(cfg.n_layers):
            prefix = f"layer{layer}."
            for proj in ("q", "k", "v", "o"):
                self.params[prefix + f"W{proj}"] = rng.normal(0.0, scale, size=(d, d))
                self.params[prefix + f"b{proj}"] = np.zeros(d)
            self.params[prefix + "ln1_gamma"] = np.ones(d)
            self.params[prefix + "ln1_beta"] = np.zeros(d)
            self.params[prefix + "W_ff1"] = rng.normal(0.0, scale, size=(d, f))
            self.params[prefix + "b_ff1"] = np.zeros(f)
            self.params[prefix + "W_ff2"] = rng.normal(0.0, scale, size=(f, d))
            self.params[prefix + "b_ff2"] = np.zeros(d)
            self.params[prefix + "ln2_gamma"] = np.ones(d)
            self.params[prefix + "ln2_beta"] = np.zeros(d)
            if cfg.lora_rank > 0:
                for proj in ("q", "v"):
                    self.params[prefix + f"lora_A{proj}"] = rng.normal(
                        0.0, scale, size=(d, cfg.lora_rank)
                    )
                    self.params[prefix + f"lora_B{proj}"] = np.zeros((cfg.lora_rank, d))

    def parameter_names(self) -> list[str]:
        """All parameter names."""
        return list(self.params)

    def lora_parameter_names(self) -> list[str]:
        """Names of the LoRA adapter parameters (empty when rank is 0)."""
        return [n for n in self.params if ".lora_" in n]

    def n_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(p.size for p in self.params.values()))

    def clone_parameters(self) -> ParamDict:
        """Deep copy of all parameters (used for DPO reference models)."""
        return {name: value.copy() for name, value in self.params.items()}

    def load_parameters(self, params: ParamDict) -> None:
        """Load a parameter dictionary produced by :meth:`clone_parameters`."""
        for name, value in params.items():
            if name in self.params and self.params[name].shape == value.shape:
                self.params[name] = value.copy()

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def _effective_projection(self, prefix: str, proj: str) -> np.ndarray:
        """Projection matrix including the LoRA update when adapters exist."""
        weight = self.params[prefix + f"W{proj}"]
        if self.config.lora_rank > 0 and proj in ("q", "v"):
            a = self.params[prefix + f"lora_A{proj}"]
            b = self.params[prefix + f"lora_B{proj}"]
            weight = weight + (self.config.lora_alpha / self.config.lora_rank) * (a @ b)
        return weight

    def encode_texts(self, texts: Iterable[str]) -> tuple[np.ndarray, np.ndarray]:
        """Tokenise texts into ``(ids [B, L], mask [B, L])``."""
        return self.tokenizer.encode_batch(list(texts))

    def forward(self, ids: np.ndarray, mask: np.ndarray) -> tuple[np.ndarray, dict]:
        """Run the encoder.

        Returns the final hidden states ``[B, L, D]`` and a cache holding all
        intermediate activations needed by :meth:`backward`.
        """
        cfg = self.config
        B, L = ids.shape
        d = cfg.d_model
        h = cfg.n_heads
        dk = d // h
        x = self.params["token_embedding"][ids] + self.params["position_embedding"][:L][None, :, :]
        cache: dict = {"ids": ids, "mask": mask, "layers": [], "embed_input": x.copy()}
        # Additive attention mask: 0 for real tokens, -1e9 for padding keys.
        key_bias = (1.0 - mask)[:, None, None, :] * -1e9
        for layer in range(cfg.n_layers):
            prefix = f"layer{layer}."
            layer_cache: dict = {"x_in": x}
            wq = self._effective_projection(prefix, "q")
            wk = self.params[prefix + "Wk"]
            wv = self._effective_projection(prefix, "v")
            wo = self.params[prefix + "Wo"]
            q = x @ wq + self.params[prefix + "bq"]
            k = x @ wk + self.params[prefix + "bk"]
            v = x @ wv + self.params[prefix + "bv"]
            # [B, H, L, dk]
            q_h = q.reshape(B, L, h, dk).transpose(0, 2, 1, 3)
            k_h = k.reshape(B, L, h, dk).transpose(0, 2, 1, 3)
            v_h = v.reshape(B, L, h, dk).transpose(0, 2, 1, 3)
            scores = q_h @ k_h.transpose(0, 1, 3, 2) / np.sqrt(dk) + key_bias
            scores -= scores.max(axis=-1, keepdims=True)
            exp_scores = np.exp(scores)
            attn = exp_scores / exp_scores.sum(axis=-1, keepdims=True)
            context = attn @ v_h  # [B, H, L, dk]
            context_merged = context.transpose(0, 2, 1, 3).reshape(B, L, d)
            attn_out = context_merged @ wo + self.params[prefix + "bo"]
            layer_cache.update(
                q=q, k=k, v=v, q_h=q_h, k_h=k_h, v_h=v_h, attn=attn,
                context_merged=context_merged, wq=wq, wk=wk, wv=wv, wo=wo,
            )
            # Residual + LayerNorm 1
            residual1 = x + attn_out
            normed1, ln1_cache = self._layer_norm_forward(
                residual1, self.params[prefix + "ln1_gamma"], self.params[prefix + "ln1_beta"]
            )
            # Feed-forward
            ff_pre = normed1 @ self.params[prefix + "W_ff1"] + self.params[prefix + "b_ff1"]
            ff_act = gelu(ff_pre)
            ff_out = ff_act @ self.params[prefix + "W_ff2"] + self.params[prefix + "b_ff2"]
            residual2 = normed1 + ff_out
            normed2, ln2_cache = self._layer_norm_forward(
                residual2, self.params[prefix + "ln2_gamma"], self.params[prefix + "ln2_beta"]
            )
            layer_cache.update(
                residual1=residual1, ln1_cache=ln1_cache, normed1=normed1,
                ff_pre=ff_pre, ff_act=ff_act, residual2=residual2, ln2_cache=ln2_cache,
            )
            cache["layers"].append(layer_cache)
            x = normed2
        cache["hidden"] = x
        return x, cache

    def _layer_norm_forward(
        self, x: np.ndarray, gamma: np.ndarray, beta: np.ndarray
    ) -> tuple[np.ndarray, dict]:
        eps = self.config.layer_norm_epsilon
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + eps)
        x_hat = (x - mean) * inv_std
        out = gamma * x_hat + beta
        return out, {"x_hat": x_hat, "inv_std": inv_std, "gamma": gamma}

    @staticmethod
    def _layer_norm_backward(grad_out: np.ndarray, cache: dict) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        x_hat = cache["x_hat"]
        inv_std = cache["inv_std"]
        gamma = cache["gamma"]
        d = x_hat.shape[-1]
        grad_gamma = np.sum(grad_out * x_hat, axis=tuple(range(grad_out.ndim - 1)))
        grad_beta = np.sum(grad_out, axis=tuple(range(grad_out.ndim - 1)))
        grad_x_hat = grad_out * gamma
        grad_x = (
            grad_x_hat
            - grad_x_hat.mean(axis=-1, keepdims=True)
            - x_hat * (grad_x_hat * x_hat).mean(axis=-1, keepdims=True)
        ) * inv_std
        return grad_x, grad_gamma, grad_beta

    # ------------------------------------------------------------------ #
    # Pooling
    # ------------------------------------------------------------------ #
    def pool(self, hidden: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Pool the sequence into one vector per example."""
        if self.config.pooling == "cls":
            return hidden[:, 0, :]
        weights = mask / np.maximum(mask.sum(axis=1, keepdims=True), 1.0)
        return np.einsum("bld,bl->bd", hidden, weights)

    def pool_backward(
        self, grad_pooled: np.ndarray, hidden_shape: tuple[int, ...], mask: np.ndarray
    ) -> np.ndarray:
        """Scatter a pooled-gradient back to the per-position hidden states."""
        grad_hidden = np.zeros(hidden_shape, dtype=np.float64)
        if self.config.pooling == "cls":
            grad_hidden[:, 0, :] = grad_pooled
            return grad_hidden
        weights = mask / np.maximum(mask.sum(axis=1, keepdims=True), 1.0)
        grad_hidden += weights[:, :, None] * grad_pooled[:, None, :]
        return grad_hidden

    # ------------------------------------------------------------------ #
    # Backward
    # ------------------------------------------------------------------ #
    def backward(self, grad_hidden: np.ndarray, cache: dict) -> ParamDict:
        """Backpropagate gradients w.r.t. the final hidden states.

        Returns gradients for every parameter (including LoRA adapters when
        present).  Base projection matrices still receive gradients; callers
        doing parameter-efficient fine-tuning simply restrict the optimiser to
        :meth:`lora_parameter_names`.
        """
        cfg = self.config
        ids = cache["ids"]
        B, L = ids.shape
        d = cfg.d_model
        h = cfg.n_heads
        dk = d // h
        grads: ParamDict = {name: np.zeros_like(value) for name, value in self.params.items()}
        grad_x = grad_hidden
        for layer in reversed(range(cfg.n_layers)):
            prefix = f"layer{layer}."
            lc = cache["layers"][layer]
            # LayerNorm 2
            grad_residual2, g_gamma2, g_beta2 = self._layer_norm_backward(grad_x, lc["ln2_cache"])
            grads[prefix + "ln2_gamma"] += g_gamma2
            grads[prefix + "ln2_beta"] += g_beta2
            # Feed-forward branch
            grad_ff_out = grad_residual2
            grad_normed1 = grad_residual2.copy()
            grads[prefix + "W_ff2"] += np.einsum("blf,bld->fd", lc["ff_act"], grad_ff_out)
            grads[prefix + "b_ff2"] += grad_ff_out.sum(axis=(0, 1))
            grad_ff_act = grad_ff_out @ self.params[prefix + "W_ff2"].T
            grad_ff_pre = grad_ff_act * gelu_grad(lc["ff_pre"])
            grads[prefix + "W_ff1"] += np.einsum("bld,blf->df", lc["normed1"], grad_ff_pre)
            grads[prefix + "b_ff1"] += grad_ff_pre.sum(axis=(0, 1))
            grad_normed1 += grad_ff_pre @ self.params[prefix + "W_ff1"].T
            # LayerNorm 1
            grad_residual1, g_gamma1, g_beta1 = self._layer_norm_backward(grad_normed1, lc["ln1_cache"])
            grads[prefix + "ln1_gamma"] += g_gamma1
            grads[prefix + "ln1_beta"] += g_beta1
            # Residual split: into attention output and into the layer input.
            grad_attn_out = grad_residual1
            grad_x_in = grad_residual1.copy()
            # Output projection
            grads[prefix + "Wo"] += np.einsum("bld,ble->de", lc["context_merged"], grad_attn_out)
            grads[prefix + "bo"] += grad_attn_out.sum(axis=(0, 1))
            grad_context_merged = grad_attn_out @ lc["wo"].T
            grad_context = grad_context_merged.reshape(B, L, h, dk).transpose(0, 2, 1, 3)
            # Attention
            attn = lc["attn"]
            grad_attn = grad_context @ lc["v_h"].transpose(0, 1, 3, 2)
            grad_v_h = attn.transpose(0, 1, 3, 2) @ grad_context
            # Softmax backward
            grad_scores = attn * (grad_attn - np.sum(grad_attn * attn, axis=-1, keepdims=True))
            grad_scores /= np.sqrt(dk)
            grad_q_h = grad_scores @ lc["k_h"]
            grad_k_h = grad_scores.transpose(0, 1, 3, 2) @ lc["q_h"]
            grad_q = grad_q_h.transpose(0, 2, 1, 3).reshape(B, L, d)
            grad_k = grad_k_h.transpose(0, 2, 1, 3).reshape(B, L, d)
            grad_v = grad_v_h.transpose(0, 2, 1, 3).reshape(B, L, d)
            x_in = lc["x_in"]
            grads[prefix + "Wq"] += np.einsum("bld,ble->de", x_in, grad_q)
            grads[prefix + "bq"] += grad_q.sum(axis=(0, 1))
            grads[prefix + "Wk"] += np.einsum("bld,ble->de", x_in, grad_k)
            grads[prefix + "bk"] += grad_k.sum(axis=(0, 1))
            grads[prefix + "Wv"] += np.einsum("bld,ble->de", x_in, grad_v)
            grads[prefix + "bv"] += grad_v.sum(axis=(0, 1))
            if cfg.lora_rank > 0:
                scale = cfg.lora_alpha / cfg.lora_rank
                for proj, grad_proj in (("q", grad_q), ("v", grad_v)):
                    a = self.params[prefix + f"lora_A{proj}"]
                    b = self.params[prefix + f"lora_B{proj}"]
                    grad_w = np.einsum("bld,ble->de", x_in, grad_proj)
                    grads[prefix + f"lora_A{proj}"] += scale * (grad_w @ b.T)
                    grads[prefix + f"lora_B{proj}"] += scale * (a.T @ grad_w)
            grad_x_in += grad_q @ lc["wq"].T + grad_k @ lc["wk"].T + grad_v @ lc["wv"].T
            grad_x = grad_x_in
        # Embeddings
        grads["position_embedding"][:L] += grad_x.sum(axis=0)
        np.add.at(grads["token_embedding"], ids.reshape(-1), grad_x.reshape(-1, d))
        return grads
