"""From-scratch numpy ML stack used by the AdaParse selection models.

The paper's selector is a fine-tuned language model (SciBERT) that regresses
per-parser BLEU scores from the default parser's first-page text, post-trained
on human preferences with DPO; cheaper variants use fastText embeddings,
metadata SVCs, or rule-based features.  None of those checkpoints are
available offline, so the whole stack is reimplemented here:

* :mod:`repro.ml.features` — aggregate text features (CLS I) and metadata
  featurisation (CLS II / SVC baselines).
* :mod:`repro.ml.tokenizer` — hashed word tokeniser shared by the encoders.
* :mod:`repro.ml.linear` / :mod:`repro.ml.svc` — ridge, logistic and linear
  SVM baselines.
* :mod:`repro.ml.fasttext` — hashed bag-of-n-gram embedding model
  (AdaParse (FT)).
* :mod:`repro.ml.transformer` — a trainable Transformer encoder with manual
  backprop (the SciBERT/BERT/MiniLM/SPECTER stand-ins).
* :mod:`repro.ml.lora` — low-rank adaptation of attention projections.
* :mod:`repro.ml.pretrain` — masked-token pre-training that differentiates
  "scientific" from "web-scale" encoders.
* :mod:`repro.ml.dpo` — direct preference optimisation post-training.
* :mod:`repro.ml.quality_model` — the per-parser accuracy regressor used by
  CLS III.
"""

from __future__ import annotations

from repro.ml.features import MetadataFeaturizer, TextStatisticsExtractor
from repro.ml.fasttext import FastTextConfig, FastTextModel
from repro.ml.linear import LogisticRegression, RidgeRegression
from repro.ml.svc import LinearSVC
from repro.ml.tokenizer import HashingTokenizer
from repro.ml.transformer import TransformerConfig, TransformerEncoder
from repro.ml.quality_model import ParserQualityPredictor

__all__ = [
    "MetadataFeaturizer",
    "TextStatisticsExtractor",
    "FastTextModel",
    "FastTextConfig",
    "LogisticRegression",
    "RidgeRegression",
    "LinearSVC",
    "HashingTokenizer",
    "TransformerConfig",
    "TransformerEncoder",
    "ParserQualityPredictor",
]
