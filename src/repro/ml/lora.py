"""Low-rank adaptation (LoRA) helpers for the Transformer encoder.

The paper fine-tunes its selector LLM with parameter-efficient low-rank
adaptation (Hu et al., 2021) before DPO post-training.  The adapters
themselves live inside :class:`repro.ml.transformer.TransformerEncoder`
(``lora_rank > 0`` adds ``A``/``B`` matrices to the query and value
projections); this module provides the configuration object and the
bookkeeping used by trainers: selecting the trainable parameter subset,
counting trainable parameters, and merging adapters into the base weights for
inference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.transformer import TransformerConfig, TransformerEncoder


@dataclass(frozen=True)
class LoraConfig:
    """LoRA hyper-parameters.

    Attributes
    ----------
    rank:
        Rank of the update ``ΔW = (alpha / rank) · A @ B``.
    alpha:
        Scaling numerator.
    train_head_only_baseline:
        Convenience flag used by ablations: when true, trainers freeze the
        adapters as well and only fit the task head.
    """

    rank: int = 4
    alpha: float = 8.0
    train_head_only_baseline: bool = False


def with_lora(config: TransformerConfig, lora: LoraConfig) -> TransformerConfig:
    """Return a copy of a transformer config with LoRA enabled."""
    return TransformerConfig(
        vocab_size=config.vocab_size,
        max_length=config.max_length,
        d_model=config.d_model,
        n_heads=config.n_heads,
        n_layers=config.n_layers,
        d_ff=config.d_ff,
        pooling=config.pooling,
        layer_norm_epsilon=config.layer_norm_epsilon,
        seed=config.seed,
        lora_rank=lora.rank,
        lora_alpha=lora.alpha,
    )


def trainable_parameter_names(encoder: TransformerEncoder, lora_only: bool) -> list[str]:
    """Parameter names a fine-tuning run should update."""
    if lora_only and encoder.config.lora_rank > 0:
        return encoder.lora_parameter_names()
    return encoder.parameter_names()


def n_trainable_parameters(encoder: TransformerEncoder, lora_only: bool) -> int:
    """Number of scalars a fine-tuning run updates."""
    names = trainable_parameter_names(encoder, lora_only)
    return int(sum(encoder.params[name].size for name in names))


def merge_lora(encoder: TransformerEncoder) -> None:
    """Fold LoRA updates into the base projections and zero the adapters.

    After merging, inference no longer pays the (tiny) adapter matmul and the
    adapters can be re-trained from zero for a further adaptation round.
    """
    cfg = encoder.config
    if cfg.lora_rank == 0:
        return
    scale = cfg.lora_alpha / cfg.lora_rank
    for layer in range(cfg.n_layers):
        prefix = f"layer{layer}."
        for proj in ("q", "v"):
            a = encoder.params[prefix + f"lora_A{proj}"]
            b = encoder.params[prefix + f"lora_B{proj}"]
            encoder.params[prefix + f"W{proj}"] = encoder.params[prefix + f"W{proj}"] + scale * (a @ b)
            encoder.params[prefix + f"lora_A{proj}"] = np.zeros_like(a)
            encoder.params[prefix + f"lora_B{proj}"] = np.zeros_like(b)
