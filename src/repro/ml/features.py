"""Feature extraction for the CLS I / CLS II stages and the SVC baselines.

* :class:`TextStatisticsExtractor` computes the cheap aggregate statistics of
  the PyMuPDF-extracted text that CLS I uses to judge validity (character
  counts, whitespace ratios, non-alphabetic ratios, scrambled-word indicators,
  math-glyph density, ...).  The features are deliberately interpretable and
  fast to compute, as the paper stresses.
* :class:`MetadataFeaturizer` turns document metadata (publisher, category,
  year, PDF format, producer) into a fixed-width vector via one-hot encoding
  of known categories plus hashing for unseen values — the input of CLS II and
  of the Table 4 SVC baselines.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.documents import lexicon
from repro.documents.metadata import DocumentMetadata
from repro.utils.hashing import stable_hash

_VOWELS = set("aeiou")
_MATH_GLYPHS = set("∂∇Σ∫∞αβγλμσθφωε·×√^_{}\\=+")
_WORD_RE = re.compile(r"[A-Za-z]+")

#: Names of the features produced by :class:`TextStatisticsExtractor`, in order.
TEXT_FEATURE_NAMES: tuple[str, ...] = (
    "n_characters_log",
    "n_words_log",
    "mean_word_length",
    "whitespace_ratio",
    "alpha_ratio",
    "digit_ratio",
    "punctuation_ratio",
    "uppercase_ratio",
    "non_ascii_ratio",
    "math_glyph_ratio",
    "vowel_free_word_ratio",
    "long_word_ratio",
    "single_char_word_ratio",
    "repeated_char_run_ratio",
    "line_length_mean",
    "lexicon_hit_ratio",
    "unique_word_ratio",
    "hyphen_linebreak_ratio",
)


@dataclass(frozen=True)
class TextStatisticsExtractor:
    """Aggregate statistics of extracted text (the CLS I feature map)."""

    max_chars: int = 6000

    @property
    def feature_names(self) -> tuple[str, ...]:
        return TEXT_FEATURE_NAMES

    @property
    def n_features(self) -> int:
        return len(TEXT_FEATURE_NAMES)

    def __call__(self, text: str) -> np.ndarray:
        return self.extract(text)

    def extract(self, text: str) -> np.ndarray:
        """Feature vector of one text (all features finite, roughly unit scale)."""
        text = text[: self.max_chars]
        n_chars = len(text)
        if n_chars == 0:
            return np.zeros(self.n_features, dtype=np.float64)
        chars = np.frombuffer(text.encode("utf-32-le"), dtype=np.uint32)
        whitespace = np.isin(chars, np.asarray([ord(c) for c in " \t\n\r"], dtype=np.uint32))
        is_alpha = np.asarray([c.isalpha() for c in text], dtype=bool)
        is_digit = np.asarray([c.isdigit() for c in text], dtype=bool)
        is_upper = np.asarray([c.isupper() for c in text], dtype=bool)
        non_ascii = chars > 127
        math_glyphs = np.asarray([c in _MATH_GLYPHS for c in text], dtype=bool)
        punctuation = ~(is_alpha | is_digit | whitespace)

        words = text.split()
        n_words = max(1, len(words))
        word_lengths = np.asarray([len(w) for w in words], dtype=np.float64) if words else np.zeros(1)
        alpha_words = [w for w in words if _WORD_RE.fullmatch(w)]
        vowel_free = sum(1 for w in alpha_words if len(w) >= 4 and not (set(w.lower()) & _VOWELS))
        long_words = sum(1 for w in words if len(w) > 18)
        single_char_words = sum(1 for w in words if len(w) == 1)
        repeated_runs = len(re.findall(r"(.)\1{3,}", text))
        lines = [ln for ln in text.split("\n") if ln.strip()]
        line_length_mean = float(np.mean([len(ln) for ln in lines])) if lines else 0.0
        hyphen_breaks = text.count("-\n")

        lowercase_words = {w.lower().strip(".,;:()") for w in words}
        scientific_terms = set(lexicon.all_scientific_terms()) | set(lexicon.ACADEMIC_NOUNS)
        lexicon_hits = len(lowercase_words & scientific_terms)

        features = np.asarray(
            [
                math.log1p(n_chars),
                math.log1p(len(words)),
                float(np.mean(word_lengths)),
                float(np.mean(whitespace)),
                float(np.mean(is_alpha)),
                float(np.mean(is_digit)),
                float(np.mean(punctuation)),
                float(np.mean(is_upper)),
                float(np.mean(non_ascii)),
                float(np.mean(math_glyphs)),
                vowel_free / n_words,
                long_words / n_words,
                single_char_words / n_words,
                repeated_runs / max(1, len(lines)),
                line_length_mean / 100.0,
                lexicon_hits / n_words,
                len(lowercase_words) / n_words,
                hyphen_breaks / max(1, len(lines)),
            ],
            dtype=np.float64,
        )
        return features

    def extract_batch(self, texts: Sequence[str]) -> np.ndarray:
        """Feature matrix ``[n_texts, n_features]``."""
        if not texts:
            return np.zeros((0, self.n_features), dtype=np.float64)
        return np.stack([self.extract(t) for t in texts], axis=0)


@dataclass
class MetadataFeaturizer:
    """One-hot (plus hashed fallback) featurisation of document metadata.

    Parameters
    ----------
    fields:
        Which metadata fields to include.  Table 4 evaluates several subsets
        (format, producer, year, publisher, (sub-)category), so the featurizer
        is field-configurable.
    hash_buckets:
        Number of hashed buckets used for values outside the known
        vocabularies (e.g. unseen producers).
    """

    fields: tuple[str, ...] = ("publisher", "domain", "subcategory", "year", "pdf_format", "producer")
    hash_buckets: int = 16
    _vocab: dict[str, tuple[str, ...]] = field(default_factory=dict, init=False, repr=False)

    _KNOWN_VOCABULARIES: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: {
            "publisher": lexicon.PUBLISHERS,
            "domain": lexicon.DOMAINS,
            "subcategory": tuple(s for subs in lexicon.SUBCATEGORIES.values() for s in subs),
            "pdf_format": lexicon.PDF_FORMATS,
            "producer": lexicon.PRODUCERS,
        },
        init=False,
        repr=False,
    )

    def __post_init__(self) -> None:
        valid = set(self._KNOWN_VOCABULARIES) | {"year", "n_pages", "title"}
        unknown = [f for f in self.fields if f not in valid]
        if unknown:
            raise ValueError(f"unknown metadata fields: {unknown}")
        self._vocab = {f: self._KNOWN_VOCABULARIES[f] for f in self.fields if f in self._KNOWN_VOCABULARIES}

    @property
    def feature_names(self) -> list[str]:
        """Names of the output features, in order."""
        names: list[str] = []
        for field_name in self.fields:
            if field_name == "year":
                names.extend(["year_normalized", "year_pre2005", "year_pre2015"])
            elif field_name == "n_pages":
                names.append("n_pages_log")
            elif field_name == "title":
                names.extend([f"title_hash_{i}" for i in range(self.hash_buckets)])
            else:
                names.extend([f"{field_name}={v}" for v in self._vocab[field_name]])
                names.append(f"{field_name}=<other>")
        return names

    @property
    def n_features(self) -> int:
        return len(self.feature_names)

    def extract(self, metadata: DocumentMetadata) -> np.ndarray:
        """Feature vector of one metadata record."""
        parts: list[np.ndarray] = []
        data = metadata.to_dict()
        for field_name in self.fields:
            if field_name == "year":
                year = float(data["year"])
                parts.append(
                    np.asarray(
                        [(year - 2010.0) / 15.0, float(year < 2005), float(year < 2015)],
                        dtype=np.float64,
                    )
                )
            elif field_name == "n_pages":
                parts.append(np.asarray([math.log1p(float(data["n_pages"]))], dtype=np.float64))
            elif field_name == "title":
                buckets = np.zeros(self.hash_buckets, dtype=np.float64)
                for word in str(data["title"]).lower().split():
                    buckets[stable_hash("title", word) % self.hash_buckets] += 1.0
                total = buckets.sum()
                parts.append(buckets / total if total > 0 else buckets)
            else:
                vocab = self._vocab[field_name]
                onehot = np.zeros(len(vocab) + 1, dtype=np.float64)
                value = str(data[field_name])
                if value in vocab:
                    onehot[vocab.index(value)] = 1.0
                else:
                    onehot[-1] = 1.0
                parts.append(onehot)
        return np.concatenate(parts)

    def extract_batch(self, metadatas: Sequence[DocumentMetadata]) -> np.ndarray:
        """Feature matrix ``[n_documents, n_features]``."""
        if not metadatas:
            return np.zeros((0, self.n_features), dtype=np.float64)
        return np.stack([self.extract(m) for m in metadatas], axis=0)
