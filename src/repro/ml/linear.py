"""Linear baseline models: ridge regression and (multinomial) logistic regression.

These are the interpretable/tractable models the paper contrasts with LLM
regression (Section 4.2, Table 4), and they also serve as building blocks:
CLS II's improvement classifier is a logistic regression over metadata
features, and ridge regression provides closed-form heads elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class RidgeRegression:
    """Multi-output ridge regression with a closed-form normal-equation fit.

    Attributes
    ----------
    l2:
        Ridge penalty (not applied to the intercept).
    """

    l2: float = 1.0
    weights: np.ndarray | None = field(default=None, init=False)
    bias: np.ndarray | None = field(default=None, init=False)

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RidgeRegression":
        """Fit on ``features [n, d]`` and ``targets [n, m]`` (or ``[n]``)."""
        X = np.asarray(features, dtype=np.float64)
        Y = np.asarray(targets, dtype=np.float64)
        if Y.ndim == 1:
            Y = Y[:, None]
        if X.shape[0] != Y.shape[0]:
            raise ValueError("features and targets must have the same number of rows")
        n, d = X.shape
        X_mean = X.mean(axis=0)
        Y_mean = Y.mean(axis=0)
        Xc = X - X_mean
        Yc = Y - Y_mean
        gram = Xc.T @ Xc + self.l2 * np.eye(d)
        self.weights = np.linalg.solve(gram, Xc.T @ Yc)
        self.bias = Y_mean - X_mean @ self.weights
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``features [n, d]``; returns ``[n, m]``."""
        if self.weights is None or self.bias is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(features, dtype=np.float64)
        return X @ self.weights + self.bias

    def r2_score(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Coefficient of determination averaged over outputs."""
        Y = np.asarray(targets, dtype=np.float64)
        if Y.ndim == 1:
            Y = Y[:, None]
        pred = self.predict(features)
        ss_res = np.sum((Y - pred) ** 2, axis=0)
        ss_tot = np.sum((Y - Y.mean(axis=0)) ** 2, axis=0)
        ss_tot = np.where(ss_tot == 0, 1.0, ss_tot)
        return float(np.mean(1.0 - ss_res / ss_tot))


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


@dataclass
class LogisticRegression:
    """Multinomial logistic regression trained with full-batch gradient descent.

    Small feature dimensions and dataset sizes make full-batch updates with a
    fixed learning rate perfectly adequate (and deterministic).
    """

    n_classes: int = 2
    l2: float = 1e-3
    learning_rate: float = 0.5
    n_iterations: int = 300
    weights: np.ndarray | None = field(default=None, init=False)
    bias: np.ndarray | None = field(default=None, init=False)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        """Fit on ``features [n, d]`` and integer ``labels [n]``."""
        X = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels, dtype=np.int64)
        if X.shape[0] != y.shape[0]:
            raise ValueError("features and labels must have the same number of rows")
        if y.size and (y.min() < 0 or y.max() >= self.n_classes):
            raise ValueError("labels out of range for n_classes")
        n, d = X.shape
        onehot = np.zeros((n, self.n_classes), dtype=np.float64)
        onehot[np.arange(n), y] = 1.0
        self.weights = np.zeros((d, self.n_classes), dtype=np.float64)
        self.bias = np.zeros(self.n_classes, dtype=np.float64)
        for _ in range(self.n_iterations):
            probs = softmax(X @ self.weights + self.bias)
            grad_logits = (probs - onehot) / max(1, n)
            grad_w = X.T @ grad_logits + self.l2 * self.weights
            grad_b = grad_logits.sum(axis=0)
            self.weights -= self.learning_rate * grad_w
            self.bias -= self.learning_rate * grad_b
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class probabilities ``[n, n_classes]``."""
        if self.weights is None or self.bias is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(features, dtype=np.float64)
        return softmax(X @ self.weights + self.bias)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most likely class per row."""
        return self.predict_proba(features).argmax(axis=1)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy."""
        return float(np.mean(self.predict(features) == np.asarray(labels)))
