"""Quality-evaluation harness.

Runs a set of parsers (including AdaParse engines) over a corpus, computes the
per-document metric bundle for each, simulates the preference tournament for
win rates, and aggregates everything into the row format of the paper's
Tables 1–3.

Parsing runs through :class:`repro.pipeline.ParsePipeline`, so engine routing
telemetry lands in :attr:`EvaluationReport.routing` (one decision list per
engine) instead of being read back off mutable engine attributes.
"""

from __future__ import annotations

from dataclasses import InitVar, dataclass, field
from typing import Any

import numpy as np

from repro.core.engine import RoutingDecision, RoutingSummary
from repro.documents.corpus import Corpus
from repro.documents.document import SciDocument
from repro.metrics.accepted_tokens import accepted_token_rate
from repro.metrics.bundle import MetricBundle, evaluate_parse
from repro.metrics.winrate import PairwiseOutcome, WinRateTally
from repro.parsers.base import Parser, ParseResult
from repro.pipeline.pipeline import ParsePipeline
from repro.preferences.annotators import AnnotatorPanel
from repro.utils.rng import rng_from
from repro.utils.tables import Table


@dataclass(frozen=True)
class HarnessConfig:
    """Evaluation knobs.

    Attributes
    ----------
    accepted_token_threshold:
        Critical BLEU a document parse must reach for its tokens to count as
        accepted (the AT column).
    win_rate_pages_per_document:
        How many pages per document enter the simulated preference tournament.
    win_rate_annotators_per_page:
        How many simulated annotators judge each sampled page.
    car_max_chars:
        Per-page character cap of the CAR computation (cost control).
    seed:
        Seed of the tournament sampling.
    backend:
        Execution backend the parse stage dispatches batches on, by
        registry name (``serial``, ``thread``, ``process``, ``hpc``) or
        ``"auto"``.
    backend_options:
        Backend construction options (e.g. ``{"n_jobs": 8}``; with
        ``backend="auto"`` that option resolves to the thread backend).
    """

    accepted_token_threshold: float = 0.70
    win_rate_pages_per_document: int = 1
    win_rate_annotators_per_page: int = 1
    car_max_chars: int = 1600
    seed: int = 1234
    backend: str = "auto"
    backend_options: dict[str, Any] = field(default_factory=dict)
    #: Removed field (hard error): parallelism now lives in
    #: ``backend_options={"n_jobs": N}``.
    n_jobs: InitVar[Any] = None

    def __post_init__(self, n_jobs: Any) -> None:
        if n_jobs is not None:
            raise TypeError(
                "HarnessConfig.n_jobs was removed; request parallelism with "
                "backend='thread' (or 'process') and backend_options={'n_jobs': N}"
            )
        from repro.pipeline.backends.base import validate_backend_spec

        validate_backend_spec(self.backend, self.backend_options)


@dataclass
class ParserAggregate:
    """Aggregate metrics of one parser over a corpus (one table row)."""

    parser_name: str
    coverage: float
    bleu: float
    rouge: float
    car: float
    win_rate: float | None
    accepted_tokens: float
    mean_cpu_seconds: float
    mean_gpu_seconds: float

    def as_row(self, percentages: bool = True) -> dict[str, object]:
        scale = 100.0 if percentages else 1.0
        return {
            "Parser": self.parser_name,
            "Coverage": self.coverage * scale,
            "BLEU": self.bleu * scale,
            "ROUGE": self.rouge * scale,
            "CAR": self.car * scale,
            "WR": None if self.win_rate is None else self.win_rate * scale,
            "AT": self.accepted_tokens * scale,
        }


@dataclass
class EvaluationReport:
    """Full output of one harness run."""

    parser_names: list[str]
    doc_ids: list[str]
    bundles: dict[tuple[str, str], MetricBundle] = field(default_factory=dict)
    results: dict[tuple[str, str], ParseResult] = field(default_factory=dict)
    win_rates: dict[str, float] = field(default_factory=dict)
    aggregates: dict[str, ParserAggregate] = field(default_factory=dict)
    #: Routing telemetry per parser (empty list for non-engine parsers).
    routing: dict[str, list[RoutingDecision]] = field(default_factory=dict)

    def routing_summary(self, parser_name: str) -> RoutingSummary:
        """One parser's routing telemetry with the aggregate-statistics helpers."""
        return RoutingSummary(decisions=list(self.routing.get(parser_name, [])))

    def bundle(self, parser_name: str, doc_id: str) -> MetricBundle:
        """Metric bundle of one (parser, document) pair."""
        return self.bundles[(parser_name, doc_id)]

    def metric_matrix(self, metric: str) -> np.ndarray:
        """Matrix ``[n_docs, n_parsers]`` of one metric (e.g. ``"bleu"``)."""
        matrix = np.zeros((len(self.doc_ids), len(self.parser_names)))
        for j, parser in enumerate(self.parser_names):
            for i, doc_id in enumerate(self.doc_ids):
                matrix[i, j] = getattr(self.bundles[(parser, doc_id)], metric)
        return matrix

    def token_counts(self) -> np.ndarray:
        """Ground-truth token count per document."""
        first_parser = self.parser_names[0]
        return np.asarray(
            [self.bundles[(first_parser, d)].n_ground_truth_tokens for d in self.doc_ids]
        )

    def to_table(self, title: str, parser_order: list[str] | None = None) -> Table:
        """Render the aggregates as a paper-style table."""
        order = parser_order or self.parser_names
        table = Table(title=title, columns=["Parser", "Coverage", "BLEU", "ROUGE", "CAR", "WR", "AT"])
        for name in order:
            if name in self.aggregates:
                table.add_row(self.aggregates[name].as_row())
        return table


class EvaluationHarness:
    """Evaluates parsers and AdaParse engines over a corpus."""

    def __init__(
        self,
        config: HarnessConfig | None = None,
        panel: AnnotatorPanel | None = None,
        pipeline: ParsePipeline | None = None,
    ) -> None:
        self.config = config or HarnessConfig()
        self.panel = panel or AnnotatorPanel()
        self.pipeline = pipeline or ParsePipeline()

    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        corpus: Corpus,
        parsers: list[Parser],
        compute_win_rate: bool = True,
    ) -> EvaluationReport:
        """Run every parser over the corpus and aggregate metrics."""
        from repro.pipeline.backends.base import resolve_execution

        documents: list[SciDocument] = list(corpus)
        parser_names = [p.name for p in parsers]
        report = EvaluationReport(parser_names=parser_names, doc_ids=[d.doc_id for d in documents])
        gt_pages_by_doc = {d.doc_id: d.ground_truth_pages() for d in documents}
        # One backend for the whole evaluation: resolving per parser would
        # spin up (and tear down) a fresh pool N times.
        backend, owned = resolve_execution(
            self.config.backend, self.config.backend_options
        )
        try:
            for parser in parsers:
                results, decisions = self.pipeline.parse_with_telemetry(
                    parser, documents, backend=backend
                )
                report.routing[parser.name] = decisions
                for doc, result in zip(documents, results):
                    report.results[(parser.name, doc.doc_id)] = result
                    report.bundles[(parser.name, doc.doc_id)] = evaluate_parse(
                        gt_pages_by_doc[doc.doc_id],
                        result.page_texts,
                        car_max_chars=self.config.car_max_chars,
                    )
        finally:
            if owned:
                backend.close()
        if compute_win_rate and len(parsers) >= 2:
            report.win_rates = self._tournament_win_rates(documents, parsers, report)
        self._aggregate(documents, parsers, report)
        return report

    # ------------------------------------------------------------------ #
    def _tournament_win_rates(
        self,
        documents: list[SciDocument],
        parsers: list[Parser],
        report: EvaluationReport,
    ) -> dict[str, float]:
        """Round-robin preference tournament over sampled pages."""
        cfg = self.config
        tally = WinRateTally()
        rng = rng_from(cfg.seed, "harness-tournament", len(documents))
        parser_names = [p.name for p in parsers]
        for doc in documents:
            n_pages = doc.n_pages
            pages = rng.choice(
                n_pages, size=min(cfg.win_rate_pages_per_document, n_pages), replace=False
            )
            for page_index in pages:
                page = doc.pages[int(page_index)]
                annotators = self.panel.sample(rng, k=cfg.win_rate_annotators_per_page)
                for annotator in annotators:
                    utilities: dict[str, float] = {}
                    for name in parser_names:
                        result = report.results[(name, doc.doc_id)]
                        text = (
                            result.page_texts[int(page_index)]
                            if int(page_index) < len(result.page_texts)
                            else ""
                        )
                        utilities[name] = annotator.utility(
                            text, page, salt=f"{doc.doc_id}:{page_index}"
                        )
                    for i in range(len(parser_names)):
                        for j in range(i + 1, len(parser_names)):
                            a, b = parser_names[i], parser_names[j]
                            delta = utilities[a] - utilities[b]
                            if abs(delta) < annotator.profile.tie_threshold:
                                winner = None
                            else:
                                winner = a if delta > 0 else b
                            tally.add(
                                PairwiseOutcome(
                                    doc_id=f"{doc.doc_id}#p{page_index}",
                                    parser_a=a,
                                    parser_b=b,
                                    winner=winner,
                                )
                            )
        return {name: tally.win_rate(name) for name in parser_names}

    # ------------------------------------------------------------------ #
    def _aggregate(
        self,
        documents: list[SciDocument],
        parsers: list[Parser],
        report: EvaluationReport,
    ) -> None:
        token_counts = [
            report.bundles[(parsers[0].name, d.doc_id)].n_ground_truth_tokens for d in documents
        ]
        for parser in parsers:
            bundles = [report.bundles[(parser.name, d.doc_id)] for d in documents]
            results = [report.results[(parser.name, d.doc_id)] for d in documents]
            bleu_scores = [b.bleu for b in bundles]
            aggregate = ParserAggregate(
                parser_name=parser.name,
                coverage=float(np.mean([b.coverage for b in bundles])),
                bleu=float(np.mean(bleu_scores)),
                rouge=float(np.mean([b.rouge for b in bundles])),
                car=float(np.mean([b.car for b in bundles])),
                win_rate=report.win_rates.get(parser.name),
                accepted_tokens=accepted_token_rate(
                    bleu_scores, token_counts, threshold=self.config.accepted_token_threshold
                ),
                mean_cpu_seconds=float(np.mean([r.usage.cpu_seconds for r in results])),
                mean_gpu_seconds=float(np.mean([r.usage.gpu_seconds for r in results])),
            )
            report.aggregates[parser.name] = aggregate
