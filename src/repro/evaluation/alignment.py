"""Section 7.1 statistics: alignment of accuracy metrics with user preferences."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.documents.corpus import Corpus
from repro.parsers.registry import ParserRegistry
from repro.preferences.study import PreferenceStudy, StudyConfig, StudyResult


@dataclass
class AlignmentStatistics:
    """The headline numbers of the user-preference analysis."""

    win_rates: dict[str, float]
    decisiveness: float
    consensus: float
    bleu_win_rate_correlation: float
    correlation_p_value: float
    n_judgements: int

    def as_dict(self) -> dict[str, object]:
        return {
            "win_rates": {k: round(v, 3) for k, v in self.win_rates.items()},
            "decisiveness": round(self.decisiveness, 3),
            "consensus": round(self.consensus, 3),
            "bleu_win_rate_correlation": round(self.bleu_win_rate_correlation, 3),
            "correlation_p_value": float(self.correlation_p_value),
            "n_judgements": self.n_judgements,
        }


def _page_level_correlation(result: StudyResult) -> tuple[float, float]:
    """Correlation between page-level BLEU difference and the user's choice.

    The paper's ρ ≈ 0.47 is computed over individual comparisons; the analogue
    here correlates (BLEU_A − BLEU_B) with the choice outcome (+1 A, −1 B)
    over all decided judgements.
    """
    diffs: list[float] = []
    outcomes: list[float] = []
    for j in result.judgements:
        if j.winner is None:
            continue
        key_a = (j.doc_id, j.page_index, j.parser_a)
        key_b = (j.doc_id, j.page_index, j.parser_b)
        if key_a not in result.page_bleu or key_b not in result.page_bleu:
            continue
        diffs.append(result.page_bleu[key_a] - result.page_bleu[key_b])
        outcomes.append(1.0 if j.winner == j.parser_a else -1.0)
    if len(diffs) < 3 or np.std(diffs) == 0 or np.std(outcomes) == 0:
        return 0.0, 1.0
    correlation, p_value = stats.pearsonr(diffs, outcomes)
    return float(correlation), float(p_value)


def preference_alignment_statistics(
    corpus: Corpus,
    registry: ParserRegistry,
    config: StudyConfig | None = None,
) -> AlignmentStatistics:
    """Run the simulated study and compute the Section 7.1 statistics."""
    study = PreferenceStudy(registry, config=config)
    result = study.run(corpus)
    correlation, p_value = _page_level_correlation(result)
    return AlignmentStatistics(
        win_rates=result.win_rates(),
        decisiveness=result.decisiveness(),
        consensus=result.consensus(),
        bleu_win_rate_correlation=correlation,
        correlation_p_value=p_value,
        n_judgements=len(result.judgements),
    )
