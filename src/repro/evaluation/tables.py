"""Regeneration of the paper's Tables 1–4.

All tables share an :class:`ExperimentContext`: a synthetic corpus with
train/validation/test splits, the parser registry, the simulated preference
study, and the two trained AdaParse engines.  Building the context is the
expensive part (it labels the training split and fine-tunes the selectors), so
benchmarks construct it once and reuse it across tables.

Absolute metric values differ from the paper (the substrate is a simulator,
not the authors' corpus and testbed); the quantities to compare are the
*orderings* and *relative gaps* described in DESIGN.md.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.core.cls3 import ParserSelector
from repro.core.config import LLM_VARIANT_CONFIG
from repro.core.engine import AdaParseFT, AdaParseLLM
from repro.core.training import AdaParseTrainer, TrainerSettings
from repro.documents.augment import (
    AugmentationConfig,
    degrade_image_layers,
    replace_text_layers_with_ocr,
)
from repro.documents.corpus import Corpus, CorpusConfig, benchmark_splits, build_corpus
from repro.evaluation.harness import EvaluationHarness, EvaluationReport, HarnessConfig
from repro.ml.datasets import QualityDataset, build_quality_dataset
from repro.ml.dpo import DPOConfig, DPOTrainer
from repro.ml.linear import RidgeRegression
from repro.ml.pretrain import PretrainConfig, pretrain_encoder_variant
from repro.ml.quality_model import FineTuneConfig, ParserQualityPredictor
from repro.ml.svc import LinearSVC
from repro.ml.features import MetadataFeaturizer
from repro.ml.transformer import TransformerConfig, TransformerEncoder
from repro.parsers.registry import ParserRegistry, default_registry
from repro.pipeline.pipeline import ParsePipeline
from repro.preferences.dataset import PreferenceDataset, build_preference_dataset
from repro.preferences.study import StudyConfig
from repro.utils.rng import rng_from
from repro.utils.tables import Table

#: Row ordering used by Table 1 (matches the paper).
TABLE1_ORDER = ["marker", "nougat", "pymupdf", "pypdf", "grobid", "tesseract", "adaparse_llm"]
TABLE2_ORDER = ["marker", "nougat", "tesseract", "adaparse_llm"]
TABLE3_ORDER = ["pymupdf", "pypdf", "adaparse_llm"]


@dataclass(frozen=True)
class ExperimentScale:
    """Size knobs of the reproduction experiments.

    The defaults are sized so the full table suite runs in minutes on a
    laptop; raise them for a closer analogue of the paper's 1 000-document
    held-out test set.
    """

    n_documents: int = 360
    study_pages: int = 90
    pretrain_sentences: int = 600
    finetune_epochs: int = 5
    seed: int = 2025


@dataclass
class ExperimentContext:
    """Shared state of the table experiments."""

    scale: ExperimentScale
    corpus: Corpus
    splits: dict[str, Corpus]
    registry: ParserRegistry
    trainer: AdaParseTrainer
    quality_dataset: QualityDataset
    preference_dataset: PreferenceDataset
    engine_ft: AdaParseFT
    engine_llm: AdaParseLLM
    test_dataset: QualityDataset | None = None
    _reports: dict[str, EvaluationReport] = field(default_factory=dict)
    #: Shared parsing facade; every table's harness runs through it.
    pipeline: ParsePipeline = field(default_factory=ParsePipeline)

    def cache_report(self, key: str, report: EvaluationReport) -> None:
        self._reports[key] = report

    def cached_report(self, key: str) -> EvaluationReport | None:
        return self._reports.get(key)

    def harness(self, harness_config: HarnessConfig | None = None) -> EvaluationHarness:
        """An evaluation harness wired to the context's shared pipeline."""
        return EvaluationHarness(harness_config, pipeline=self.pipeline)


def trainer_settings_for_scale(scale: ExperimentScale) -> TrainerSettings:
    """Trainer hyper-parameters matched to the experiment scale."""
    return TrainerSettings(
        pretrain_config=PretrainConfig(n_sentences=scale.pretrain_sentences, n_epochs=1),
        finetune_config=FineTuneConfig(n_epochs=scale.finetune_epochs, lora_only=False),
    )


def build_experiment_context(scale: ExperimentScale | None = None) -> ExperimentContext:
    """Build the corpus, run the preference study, and train both engines."""
    scale = scale or ExperimentScale()
    corpus = build_corpus(CorpusConfig(n_documents=scale.n_documents, seed=scale.seed))
    splits = benchmark_splits(corpus)
    registry = default_registry()
    preference_dataset = build_preference_dataset(
        splits["train"], registry, StudyConfig(n_pages=scale.study_pages, seed=scale.seed + 1)
    )
    trainer = AdaParseTrainer(registry, trainer_settings_for_scale(scale))
    quality_dataset = trainer.build_dataset(splits["train"])
    engine_ft = trainer.train_ft(splits["train"], dataset=quality_dataset)
    engine_llm = trainer.train_llm(
        splits["train"], dataset=quality_dataset, preference_pairs=preference_dataset.train
    )
    pipeline = ParsePipeline(
        registry=registry,
        engines={engine_ft.name: engine_ft, engine_llm.name: engine_llm},
    )
    return ExperimentContext(
        scale=scale,
        corpus=corpus,
        splits=splits,
        registry=registry,
        trainer=trainer,
        quality_dataset=quality_dataset,
        preference_dataset=preference_dataset,
        engine_ft=engine_ft,
        engine_llm=engine_llm,
        pipeline=pipeline,
    )


def _evaluation_parsers(context: ExperimentContext, names: list[str]) -> list:
    parsers = []
    for name in names:
        if name == "adaparse_llm":
            parsers.append(context.engine_llm)
        elif name == "adaparse_ft":
            parsers.append(context.engine_ft)
        else:
            parsers.append(context.registry.get(name))
    return parsers


# --------------------------------------------------------------------------- #
# Tables 1–3
# --------------------------------------------------------------------------- #


def table1_born_digital(
    context: ExperimentContext, harness_config: HarnessConfig | None = None
) -> Table:
    """Table 1: accuracy on the unmodified (born-digital) held-out test set."""
    harness = context.harness(harness_config)
    parsers = _evaluation_parsers(context, TABLE1_ORDER)
    report = harness.evaluate(context.splits["test"], parsers)
    context.cache_report("table1", report)
    table = report.to_table(
        "Table 1: Accuracy on born-digital PDFs (all values %)", parser_order=TABLE1_ORDER
    )
    return table


def table2_scanned(
    context: ExperimentContext,
    augmentation: AugmentationConfig | None = None,
    harness_config: HarnessConfig | None = None,
) -> Table:
    """Table 2: accuracy after degrading the image layer of 15 % of documents."""
    augmentation = augmentation or AugmentationConfig()
    augmented = degrade_image_layers(context.splits["test"], augmentation)
    harness = context.harness(harness_config)
    parsers = _evaluation_parsers(context, TABLE2_ORDER)
    report = harness.evaluate(augmented, parsers)
    context.cache_report("table2", report)
    return report.to_table(
        "Table 2: Accuracy on simulated scanned PDFs (all values %)", parser_order=TABLE2_ORDER
    )


def table3_degraded_text(
    context: ExperimentContext,
    augmentation: AugmentationConfig | None = None,
    harness_config: HarnessConfig | None = None,
) -> Table:
    """Table 3: accuracy after replacing 15 % of text layers with OCR output."""
    augmentation = augmentation or AugmentationConfig()
    augmented = replace_text_layers_with_ocr(context.splits["test"], augmentation)
    harness = context.harness(harness_config)
    parsers = _evaluation_parsers(context, TABLE3_ORDER)
    report = harness.evaluate(augmented, parsers)
    context.cache_report("table3", report)
    return report.to_table(
        "Table 3: Accuracy on PDFs with OCR-degraded text layers (all values %)",
        parser_order=TABLE3_ORDER,
    )


# --------------------------------------------------------------------------- #
# Table 4: selector-model comparison
# --------------------------------------------------------------------------- #


def _metadata_text(example_metadata) -> str:
    """Title + metadata rendered as text (input of the SPECTER/MiniLM rows)."""
    m = example_metadata
    return (
        f"{m.title}. publisher {m.publisher}. year {m.year}. producer {m.producer}. "
        f"format {m.pdf_format}. category {m.domain} {m.subcategory}. pages {m.n_pages}."
    )


def _small_encoder_config(seed: int) -> TransformerConfig:
    return TransformerConfig(
        vocab_size=2048, max_length=96, d_model=48, n_heads=4, n_layers=2, d_ff=96,
        lora_rank=4, seed=seed,
    )


def _train_text_predictor(
    parser_names: list[str],
    texts: list[str],
    targets: np.ndarray,
    pretrain_corpus: str,
    scale: ExperimentScale,
    seed: int,
) -> ParserQualityPredictor:
    encoder = TransformerEncoder(_small_encoder_config(seed), name=f"table4-{pretrain_corpus}-{seed}")
    pretrain_encoder_variant(
        encoder, pretrain_corpus, PretrainConfig(n_sentences=scale.pretrain_sentences, n_epochs=1, seed=seed)
    )
    predictor = ParserQualityPredictor(
        parser_names,
        backend="transformer",
        encoder=encoder,
        finetune_config=FineTuneConfig(n_epochs=scale.finetune_epochs, lora_only=False, seed=seed),
    )
    predictor.fit(texts, targets)
    return predictor


@dataclass
class SelectionStrategy:
    """A named way of choosing one parser per test document."""

    label: str
    group: str
    choose: object  # Callable[[int], str] — index into the test set → parser name


def _strategy_rows(
    context: ExperimentContext,
    strategies: list[SelectionStrategy],
    report: EvaluationReport,
    test_dataset: QualityDataset,
) -> list[dict[str, object]]:
    """Aggregate metrics of each selection strategy on the test split."""
    doc_index = {doc_id: i for i, doc_id in enumerate(report.doc_ids)}
    bleu = report.metric_matrix("bleu")
    rouge = report.metric_matrix("rouge")
    car = report.metric_matrix("car")
    parser_col = {name: j for j, name in enumerate(report.parser_names)}
    oracle_choice = bleu.argmax(axis=1)
    rows: list[dict[str, object]] = []
    for strategy in strategies:
        chosen_bleu, chosen_rouge, chosen_car, chosen_wr, correct = [], [], [], [], []
        for k, example in enumerate(test_dataset.examples):
            i = doc_index[example.doc_id]
            parser = strategy.choose(k)
            j = parser_col[parser]
            chosen_bleu.append(bleu[i, j])
            chosen_rouge.append(rouge[i, j])
            chosen_car.append(car[i, j])
            chosen_wr.append(report.win_rates.get(parser, 0.0))
            correct.append(1.0 if j == oracle_choice[i] else 0.0)
        rows.append(
            {
                "Features (Model)": strategy.label,
                "Group": strategy.group,
                "BLEU": float(np.mean(chosen_bleu)) * 100,
                "ROUGE": float(np.mean(chosen_rouge)) * 100,
                "CAR": float(np.mean(chosen_car)) * 100,
                "WR": float(np.mean(chosen_wr)) * 100,
                "ACC": float(np.mean(correct)) * 100,
            }
        )
    return rows


def table4_selector_models(
    context: ExperimentContext, harness_config: HarnessConfig | None = None
) -> Table:
    """Table 4: prediction-model comparison for parser selection."""
    scale = context.scale
    registry = context.registry
    test_split = context.splits["test"]
    # Per-document metrics of every base parser on the test split (reused from
    # Table 1 when available, restricted to the six base parsers).
    report = context.cached_report("table4_base")
    if report is None:
        harness = context.harness(harness_config)
        report = harness.evaluate(test_split, list(registry))
        context.cache_report("table4_base", report)
    # Model inputs for the test split (default-parser text, metadata, labels).
    if context.test_dataset is None:
        context.test_dataset = build_quality_dataset(test_split, registry, label_pages=3)
    test_dataset = context.test_dataset
    train_dataset = context.quality_dataset
    parser_names = train_dataset.parser_names
    train_texts = train_dataset.texts
    train_targets = train_dataset.targets
    test_texts = test_dataset.texts

    strategies: list[SelectionStrategy] = []

    # --- CLS III: document-text models ---------------------------------- #
    scibert = _train_text_predictor(
        parser_names, train_texts, train_targets, "scientific", scale, seed=scale.seed + 11
    )
    scibert_choices = scibert.predict_best_parser(test_texts)
    strategies.append(
        SelectionStrategy("Text (SciBERT)", "CLS III: Document Text", lambda k, c=scibert_choices: c[k])
    )

    # SciBERT + DPO: clone the fine-tuned encoder, post-train with DPO, refit head.
    scibert_dpo = copy.deepcopy(scibert)
    if context.preference_dataset.train:
        dpo = DPOTrainer(scibert_dpo.encoder, DPOConfig(n_epochs=2))
        dpo.train(context.preference_dataset.train)
        scibert_dpo.fit(train_texts, train_targets, learning_rate=5e-4, n_epochs=2)
    dpo_choices = scibert_dpo.predict_best_parser(test_texts)
    strategies.insert(
        0,
        SelectionStrategy(
            "Text (SciBERT + DPO)", "CLS III: Document Text", lambda k, c=dpo_choices: c[k]
        ),
    )

    bert = _train_text_predictor(
        parser_names, train_texts, train_targets, "generic", scale, seed=scale.seed + 13
    )
    bert_choices = bert.predict_best_parser(test_texts)
    strategies.append(
        SelectionStrategy("Text (BERT)", "CLS III: Document Text", lambda k, c=bert_choices: c[k])
    )

    # --- CLS II: metadata/title text models ------------------------------ #
    train_meta_texts = [_metadata_text(m) for m in train_dataset.metadatas]
    test_meta_texts = [_metadata_text(m) for m in test_dataset.metadatas]
    train_title_texts = [m.title for m in train_dataset.metadatas]
    test_title_texts = [m.title for m in test_dataset.metadatas]

    specter_meta = _train_text_predictor(
        parser_names, train_meta_texts, train_targets, "scientific", scale, seed=scale.seed + 17
    )
    specter_meta_choices = specter_meta.predict_best_parser(test_meta_texts)
    strategies.append(
        SelectionStrategy(
            "Title + Metadata (SPECTER)", "CLS II: Metadata and Title Text",
            lambda k, c=specter_meta_choices: c[k],
        )
    )
    specter_title = _train_text_predictor(
        parser_names, train_title_texts, train_targets, "scientific", scale, seed=scale.seed + 19
    )
    specter_title_choices = specter_title.predict_best_parser(test_title_texts)
    strategies.append(
        SelectionStrategy(
            "Title (SPECTER)", "CLS II: Metadata and Title Text",
            lambda k, c=specter_title_choices: c[k],
        )
    )
    minilm_meta = _train_text_predictor(
        parser_names, train_meta_texts, train_targets, "generic", scale, seed=scale.seed + 23
    )
    minilm_choices = minilm_meta.predict_best_parser(test_meta_texts)
    strategies.append(
        SelectionStrategy(
            "Title + Metadata (MiniLM-L6)", "CLS II: Metadata and Title Text",
            lambda k, c=minilm_choices: c[k],
        )
    )

    # --- CLS I: metadata-only SVC baselines ------------------------------ #
    svc_variants = {
        "Format + Producer (SVC)": ("pdf_format", "producer"),
        "Format (SVC)": ("pdf_format",),
        "Year + Producer (SVC)": ("year", "producer"),
        "Publisher + (Sub-)category (SVC)": ("publisher", "domain", "subcategory"),
        "(Sub-)category (SVC)": ("domain", "subcategory"),
    }
    train_labels = train_dataset.best_parser_labels()
    for label, fields in svc_variants.items():
        featurizer = MetadataFeaturizer(fields=tuple(fields))
        svc = LinearSVC(n_classes=len(parser_names), n_epochs=20, seed=scale.seed)
        svc.fit(featurizer.extract_batch(train_dataset.metadatas), train_labels)
        predictions = svc.predict(featurizer.extract_batch(test_dataset.metadatas))
        choices = [parser_names[int(j)] for j in predictions]
        strategies.append(
            SelectionStrategy(label, "CLS I: Metadata", lambda k, c=choices: c[k])
        )

    # --- Reference selectors --------------------------------------------- #
    doc_index = {doc_id: i for i, doc_id in enumerate(report.doc_ids)}
    bleu = report.metric_matrix("bleu")
    rng = rng_from(scale.seed, "table4-random")
    oracle = [
        report.parser_names[int(bleu[doc_index[e.doc_id]].argmax())] for e in test_dataset.examples
    ]
    worst = [
        report.parser_names[int(bleu[doc_index[e.doc_id]].argmin())] for e in test_dataset.examples
    ]
    random_choices = [
        report.parser_names[int(rng.integers(0, len(report.parser_names)))]
        for _ in test_dataset.examples
    ]
    strategies.append(SelectionStrategy("BLEU-maximal selection", "Reference", lambda k, c=oracle: c[k]))
    strategies.append(SelectionStrategy("Random selection", "Reference", lambda k, c=random_choices: c[k]))
    strategies.append(SelectionStrategy("BLEU-minimal selection", "Reference", lambda k, c=worst: c[k]))

    rows = _strategy_rows(context, strategies, report, test_dataset)
    table = Table(
        title="Table 4: Evaluation of prediction models for parser selection (all values %)",
        columns=["Features (Model)", "Group", "BLEU", "ROUGE", "CAR", "WR", "ACC"],
    )
    for row in rows:
        table.add_row(row)
    return table
