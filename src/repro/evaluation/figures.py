"""Regeneration of the paper's Figures 3–5 as data series.

Figures are produced as tabular series (the same rows one would plot): the
benchmark harness prints them and EXPERIMENTS.md records the headline numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.config import AdaParseConfig, FT_VARIANT_CONFIG, LLM_VARIANT_CONFIG
from repro.documents.corpus import Corpus
from repro.evaluation.harness import EvaluationHarness, HarnessConfig
from repro.hpc.campaign import (
    CampaignConfig,
    CampaignResult,
    ParsingCampaign,
    adaparse_node_sweep,
    node_sweep,
)
from repro.hpc.profiler import UtilizationProfile
from repro.hpc.workload import WorkloadModel
from repro.parsers.base import Parser, single_node_throughput
from repro.parsers.registry import ParserRegistry
from repro.utils.tables import Table


# --------------------------------------------------------------------------- #
# Figure 3: parser performance vs document difficulty + throughput legend
# --------------------------------------------------------------------------- #


@dataclass
class Figure3Series:
    """BLEU-by-difficulty-rank series plus single-node throughput legend."""

    parser_names: list[str]
    difficulty_rank: np.ndarray
    bleu_by_parser: dict[str, np.ndarray]
    throughput_legend: dict[str, float]

    def to_table(self, n_bins: int = 10) -> Table:
        """Summarise the series as mean BLEU per difficulty decile."""
        table = Table(
            title="Figure 3: BLEU by estimated parsing difficulty (decile means, %)",
            columns=["Difficulty decile"] + self.parser_names,
        )
        n = len(self.difficulty_rank)
        if n == 0:
            return table
        bins = np.array_split(np.arange(n), n_bins)
        for b, indices in enumerate(bins):
            row: dict[str, object] = {"Difficulty decile": f"{b + 1}"}
            for parser in self.parser_names:
                row[parser] = float(np.mean(self.bleu_by_parser[parser][indices])) * 100
            table.add_row(row)
        return table

    def legend_table(self) -> Table:
        """Single-node throughput legend (documents/second)."""
        table = Table(
            title="Figure 3 legend: single-node throughput (documents/s)",
            columns=["Parser", "docs/s"],
        )
        for parser, value in self.throughput_legend.items():
            table.add_row({"Parser": parser, "docs/s": value})
        return table


def figure3_parser_performance(
    corpus: Corpus,
    registry: ParserRegistry,
    harness_config: HarnessConfig | None = None,
    campaign_config: CampaignConfig | None = None,
    throughput_documents: int = 400,
) -> Figure3Series:
    """Per-document BLEU of every parser, sorted by estimated difficulty.

    Difficulty is estimated, as in the paper, by the average BLEU across
    parsers: the lower the average, the harder the document, the higher its
    rank.  The legend reports each parser's simulated single-node throughput.
    """
    harness = EvaluationHarness(harness_config or HarnessConfig())
    parsers = list(registry)
    report = harness.evaluate(corpus, parsers, compute_win_rate=False)
    bleu = report.metric_matrix("bleu")
    difficulty = bleu.mean(axis=1)
    # Follow the paper's convention: documents are sorted by estimated
    # difficulty, and the *higher* the rank the harder the document (rank 0 is
    # therefore the easiest document, with the highest across-parser BLEU).
    sorted_order = np.argsort(difficulty)[::-1]
    series = Figure3Series(
        parser_names=[p.name for p in parsers],
        difficulty_rank=np.arange(len(sorted_order)),
        bleu_by_parser={
            p.name: bleu[sorted_order, j] for j, p in enumerate(parsers)
        },
        throughput_legend={},
    )
    campaign = ParsingCampaign(campaign_config or CampaignConfig(n_nodes=1))
    for parser in parsers:
        result = campaign.run_parser(parser, n_documents=throughput_documents)
        series.throughput_legend[parser.name] = round(result.throughput_docs_per_s, 3)
    return series


# --------------------------------------------------------------------------- #
# Figure 4: GPU utilisation of the workload
# --------------------------------------------------------------------------- #


@dataclass
class Figure4Profile:
    """Per-GPU utilisation of a single-node GPU-parser campaign."""

    parser_name: str
    campaign: CampaignResult
    profile: UtilizationProfile

    def to_table(self) -> Table:
        table = Table(
            title=f"Figure 4: per-GPU utilisation ({self.parser_name}, single node)",
            columns=["GPU", "mean utilisation"],
        )
        for gpu, value in self.profile.per_gpu_means().items():
            table.add_row({"GPU": gpu, "mean utilisation": value})
        return table


def figure4_gpu_utilization(
    registry: ParserRegistry,
    parser_name: str = "nougat",
    n_documents: int = 120,
    campaign_config: CampaignConfig | None = None,
    warm_start: bool = True,
) -> Figure4Profile:
    """Profile per-GPU utilisation of a single-node campaign (Nsys stand-in)."""
    config = campaign_config or CampaignConfig(n_nodes=1, warm_start=warm_start)
    campaign = ParsingCampaign(config)
    result = campaign.run_parser(registry.get(parser_name), n_documents=n_documents)
    assert result.gpu_profile is not None
    return Figure4Profile(parser_name=parser_name, campaign=result, profile=result.gpu_profile)


# --------------------------------------------------------------------------- #
# Figure 5: throughput scalability
# --------------------------------------------------------------------------- #


@dataclass
class Figure5Series:
    """Throughput (documents/s) per parser per node count."""

    node_counts: list[int]
    results: dict[str, list[CampaignResult]] = field(default_factory=dict)

    def to_table(self) -> Table:
        table = Table(
            title="Figure 5: throughput scalability (documents/s)",
            columns=["Parser"] + [f"{n} nodes" for n in self.node_counts],
        )
        for parser, runs in self.results.items():
            row: dict[str, object] = {"Parser": parser}
            for n, result in zip(self.node_counts, runs):
                row[f"{n} nodes"] = round(result.throughput_docs_per_s, 2)
            table.add_row(row)
        return table

    def throughput(self, parser: str, n_nodes: int) -> float:
        """Throughput of one parser at one node count."""
        index = self.node_counts.index(n_nodes)
        return self.results[parser][index].throughput_docs_per_s


def figure5_scalability(
    registry: ParserRegistry,
    node_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
    docs_per_node: int = 120,
    include_adaparse: bool = True,
    campaign_config: CampaignConfig | None = None,
    workload: WorkloadModel | None = None,
    parser_names: Sequence[str] | None = None,
) -> Figure5Series:
    """Throughput of every parser (and the AdaParse variants) across node counts."""
    node_counts = [int(n) for n in node_counts]
    series = Figure5Series(node_counts=node_counts)
    names = list(parser_names) if parser_names is not None else registry.names
    for name in names:
        series.results[name] = node_sweep(
            registry.get(name), node_counts, docs_per_node=docs_per_node,
            base_config=campaign_config, workload=workload,
        )
    if include_adaparse:
        series.results["adaparse_ft"] = adaparse_node_sweep(
            registry, FT_VARIANT_CONFIG, node_counts, docs_per_node=docs_per_node,
            engine_name="adaparse_ft", base_config=campaign_config, workload=workload,
        )
        series.results["adaparse_llm"] = adaparse_node_sweep(
            registry, LLM_VARIANT_CONFIG, node_counts, docs_per_node=docs_per_node,
            engine_name="adaparse_llm", base_config=campaign_config, workload=workload,
        )
    return series


def throughput_ratio_summary(series: Figure5Series, reference: str = "nougat") -> dict[str, float]:
    """Single-node throughput of every parser relative to a reference parser."""
    if reference not in series.results:
        raise KeyError(f"{reference!r} not in the sweep")
    base = series.results[reference][0].throughput_docs_per_s
    if base <= 0:
        return {}
    return {
        parser: round(runs[0].throughput_docs_per_s / base, 2)
        for parser, runs in series.results.items()
    }


def ideal_single_node_legend(registry: ParserRegistry) -> dict[str, float]:
    """Analytic (no-overhead) single-node throughputs implied by the cost models."""
    return {
        parser.name: round(single_node_throughput(parser.cost), 3) for parser in registry
    }
