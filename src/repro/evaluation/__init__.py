"""Experiment harness: regenerates every table and figure of the evaluation.

* :mod:`repro.evaluation.harness` — runs parsers/engines over a corpus and
  aggregates the quality metrics (Coverage, BLEU, ROUGE, CAR, WR, AT).
* :mod:`repro.evaluation.tables` — Tables 1–4.
* :mod:`repro.evaluation.figures` — Figures 3–5.
* :mod:`repro.evaluation.alignment` — the Section 7.1 preference-study
  statistics.
* :mod:`repro.evaluation.reporting` — rendering/saving of experiment outputs.
"""

from __future__ import annotations

from repro.evaluation.harness import EvaluationHarness, EvaluationReport, HarnessConfig
from repro.evaluation.tables import (
    table1_born_digital,
    table2_scanned,
    table3_degraded_text,
    table4_selector_models,
)
from repro.evaluation.figures import (
    figure3_parser_performance,
    figure4_gpu_utilization,
    figure5_scalability,
)
from repro.evaluation.alignment import preference_alignment_statistics

__all__ = [
    "EvaluationHarness",
    "EvaluationReport",
    "HarnessConfig",
    "table1_born_digital",
    "table2_scanned",
    "table3_degraded_text",
    "table4_selector_models",
    "figure3_parser_performance",
    "figure4_gpu_utilization",
    "figure5_scalability",
    "preference_alignment_statistics",
]
