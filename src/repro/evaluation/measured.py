"""Recording measured results and splicing them into ``EXPERIMENTS.md``.

The benchmark harness regenerates every table and figure of the paper; the
pieces here make those measured results durable and keep the paper-vs-measured
document up to date without hand-copying numbers:

* :class:`MeasuredStore` — a directory of per-experiment markdown fragments
  (``results/measured/<ID>.md``), written by the benchmarks as they run.
* :func:`fill_experiments_file` — replaces the ``<!-- MEASURED:<ID> -->``
  placeholders (or previously filled ``BEGIN``/``END`` blocks) in
  ``EXPERIMENTS.md`` with the recorded fragments.  Re-running is idempotent:
  filled blocks are replaced in place, never duplicated.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.utils.tables import Table

#: Bare placeholder, e.g. ``<!-- MEASURED:TABLE1 -->``.
_PLACEHOLDER_RE = re.compile(r"<!--\s*MEASURED:([A-Z0-9_]+)\s*-->")
#: A block previously filled by :func:`fill_experiments_file`.
_BLOCK_RE = re.compile(
    r"<!--\s*MEASURED:([A-Z0-9_]+):BEGIN\s*-->.*?<!--\s*MEASURED:\1:END\s*-->",
    flags=re.DOTALL,
)


def _normalise_id(experiment_id: str) -> str:
    normalised = experiment_id.strip().upper().replace("-", "_")
    if not re.fullmatch(r"[A-Z0-9_]+", normalised):
        raise ValueError(f"invalid experiment id {experiment_id!r}")
    return normalised


class MeasuredStore:
    """A directory of measured-result fragments, one markdown file per experiment."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    def _path(self, experiment_id: str) -> Path:
        return self.directory / f"{_normalise_id(experiment_id)}.md"

    def record(self, experiment_id: str, content: str, append: bool = False) -> Path:
        """Store a markdown fragment under an experiment id."""
        path = self._path(experiment_id)
        content = content.rstrip() + "\n"
        if append and path.exists():
            existing = path.read_text(encoding="utf-8")
            content = existing.rstrip() + "\n\n" + content
        path.write_text(content, encoding="utf-8")
        return path

    def record_table(
        self, experiment_id: str, table: Table, precision: int = 1, note: str = "", append: bool = False
    ) -> Path:
        """Store a rendered table (plus an optional note)."""
        body = table.to_markdown(precision=precision)
        if note:
            body = body + "\n\n" + note.strip()
        return self.record(experiment_id, body, append=append)

    def record_mapping(
        self, experiment_id: str, mapping: dict[str, object], title: str = "", append: bool = False
    ) -> Path:
        """Store a flat mapping as a bullet list (headline statistics)."""
        lines = [f"**{title}**", ""] if title else []
        lines.extend(f"- {key}: {value}" for key, value in mapping.items())
        return self.record(experiment_id, "\n".join(lines), append=append)

    # ------------------------------------------------------------------ #
    def load(self, experiment_id: str) -> str | None:
        """Load a fragment, or ``None`` if it has not been recorded."""
        path = self._path(experiment_id)
        if not path.exists():
            return None
        return path.read_text(encoding="utf-8").rstrip()

    def available(self) -> list[str]:
        """Experiment ids with recorded fragments."""
        return sorted(p.stem for p in self.directory.glob("*.md"))

    def clear(self, experiment_id: str) -> None:
        """Remove one fragment (no error if absent)."""
        self._path(experiment_id).unlink(missing_ok=True)


@dataclass
class FillResult:
    """What :func:`fill_experiments_file` did."""

    filled: list[str] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)

    @property
    def n_filled(self) -> int:
        return len(self.filled)


def _block(experiment_id: str, content: str) -> str:
    return (
        f"<!-- MEASURED:{experiment_id}:BEGIN -->\n"
        f"{content.rstrip()}\n"
        f"<!-- MEASURED:{experiment_id}:END -->"
    )


def fill_experiments_text(text: str, store: MeasuredStore) -> tuple[str, FillResult]:
    """Fill placeholders/blocks in a markdown string from the store."""
    result = FillResult()
    seen: set[str] = set()

    def replace_block(match: re.Match[str]) -> str:
        experiment_id = match.group(1)
        seen.add(experiment_id)
        content = store.load(experiment_id)
        if content is None:
            result.missing.append(experiment_id)
            return match.group(0)
        result.filled.append(experiment_id)
        return _block(experiment_id, content)

    text = _BLOCK_RE.sub(replace_block, text)

    def replace_placeholder(match: re.Match[str]) -> str:
        experiment_id = match.group(1)
        # BEGIN/END markers inside already-filled blocks also match the bare
        # placeholder pattern; they were handled above.
        if experiment_id in seen:
            return match.group(0)
        content = store.load(experiment_id)
        if content is None:
            result.missing.append(experiment_id)
            return match.group(0)
        result.filled.append(experiment_id)
        return _block(experiment_id, content)

    text = _PLACEHOLDER_RE.sub(replace_placeholder, text)
    return text, result


def fill_experiments_file(path: str | Path, store: MeasuredStore) -> FillResult:
    """Fill ``EXPERIMENTS.md`` in place from the measured-result store."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    filled, result = fill_experiments_text(text, store)
    if filled != text:
        path.write_text(filled, encoding="utf-8")
    return result
