"""Saving and rendering of experiment outputs.

The benchmark harness uses :class:`ExperimentRecord` to collect the tables and
figure series it regenerates and write them to a markdown report (the basis of
``EXPERIMENTS.md``), so that paper-vs-measured comparisons are recorded next
to the code that produced them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.utils.tables import Table


@dataclass
class ExperimentRecord:
    """Accumulates experiment outputs and renders them as markdown."""

    title: str = "AdaParse reproduction — measured results"
    sections: list[tuple[str, str]] = field(default_factory=list)

    def add_table(self, experiment_id: str, table: Table, note: str = "") -> None:
        """Record a table under an experiment id (e.g. ``"table1"``)."""
        body = table.to_markdown()
        if note:
            body = body + "\n\n" + note
        self.sections.append((experiment_id, body))

    def add_text(self, experiment_id: str, text: str) -> None:
        """Record free-form text (e.g. headline statistics)."""
        self.sections.append((experiment_id, text))

    def add_json(self, experiment_id: str, payload: dict) -> None:
        """Record a JSON-serialisable payload as a fenced block."""
        self.sections.append(
            (experiment_id, "```json\n" + json.dumps(payload, indent=2, default=str) + "\n```")
        )

    def to_markdown(self) -> str:
        """Render all recorded sections."""
        lines = [f"# {self.title}", ""]
        for experiment_id, body in self.sections:
            lines.append(f"## {experiment_id}")
            lines.append("")
            lines.append(body)
            lines.append("")
        return "\n".join(lines)

    def save(self, path: str | Path) -> Path:
        """Write the markdown report to disk."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_markdown(), encoding="utf-8")
        return path


def print_table(table: Table, precision: int = 1) -> None:
    """Print a table to stdout (used by benches so results appear in logs)."""
    print()
    print(table.to_text(precision=precision))
    print()
