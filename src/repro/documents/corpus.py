"""Corpus construction: sampling whole documents and benchmark splits.

The corpus builder is the reproduction's stand-in for the paper's 25 000-PDF
benchmark.  Every document is generated from a per-document random stream
derived from ``(seed, doc_index)``, so corpora are reproducible and documents
are independent of generation order.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.documents import lexicon, noise
from repro.documents.document import (
    ImageLayer,
    PageContent,
    SciDocument,
    TextLayer,
    TextLayerQuality,
)
from repro.documents.metadata import DocumentMetadata, sample_metadata
from repro.documents.rendering import latex_to_embedded_glyphs, table_reading_order
from repro.documents.textgen import ScientificTextGenerator, TextGenConfig
from repro.utils.rng import rng_from


@dataclass(frozen=True)
class CorpusConfig:
    """Configuration of a synthetic corpus.

    Attributes
    ----------
    n_documents:
        Number of documents to generate.
    seed:
        Root seed; every document derives its own stream from it.
    min_pages, max_pages:
        Range of page counts per document.
    scanned_fraction:
        Fraction of documents produced by a scanning pipeline irrespective of
        their producer tool (on top of scanner-produced documents).
    textgen:
        Sentence/paragraph generation knobs.
    name:
        Optional human-readable corpus name.
    """

    n_documents: int = 1000
    seed: int = 2025
    min_pages: int = 4
    max_pages: int = 16
    scanned_fraction: float = 0.08
    textgen: TextGenConfig = field(default_factory=TextGenConfig)
    name: str = "synthetic-scientific-corpus"

    def __post_init__(self) -> None:
        if self.n_documents <= 0:
            raise ValueError("n_documents must be positive")
        if self.min_pages < 1 or self.max_pages < self.min_pages:
            raise ValueError("invalid page range")
        if not 0.0 <= self.scanned_fraction <= 1.0:
            raise ValueError("scanned_fraction must lie in [0, 1]")


# --------------------------------------------------------------------------- #
# Layer construction
# --------------------------------------------------------------------------- #

_QUALITY_ORDER = (
    TextLayerQuality.CLEAN,
    TextLayerQuality.NOISY,
    TextLayerQuality.OCR_DERIVED,
    TextLayerQuality.SCRAMBLED,
    TextLayerQuality.MISSING,
)


def sample_text_layer_quality(producer: str, rng: np.random.Generator) -> TextLayerQuality:
    """Sample the embedded-text fidelity class implied by a producer tool."""
    probs = lexicon.PRODUCER_TEXT_QUALITY.get(producer)
    if probs is None:
        probs = lexicon.PRODUCER_TEXT_QUALITY["unknown"]
    idx = int(rng.choice(len(_QUALITY_ORDER), p=np.asarray(probs) / np.sum(probs)))
    return _QUALITY_ORDER[idx]


def embedded_page_text(page: PageContent, rng: np.random.Generator) -> str:
    """Render a page's ground truth into the form a text layer stores.

    Equations collapse to glyph runs, tables flatten into reading order, and
    paragraphs get the PDF's visual line wrapping.
    """
    blocks: list[str] = []
    for element in page.elements:
        if element.kind == "equation" and element.latex is not None:
            blocks.append(latex_to_embedded_glyphs(element.latex, rng))
        elif element.kind == "table":
            blocks.append(table_reading_order(element.text, drop_separator_prob=0.4, rng=rng))
        elif element.kind in ("paragraph", "citation_block"):
            blocks.append(noise.hard_wrap_lines(element.text, width=90, rng=rng, hyphenate_rate=0.03))
        else:
            blocks.append(element.text)
    return "\n".join(blocks)


def build_text_layer(
    pages: Sequence[PageContent],
    quality: TextLayerQuality,
    producer: str,
    image_layer: ImageLayer,
    rng: np.random.Generator,
) -> TextLayer:
    """Construct the embedded text layer of a document.

    The layer starts from the faithful "embedded rendering" of each page and
    is then pushed through the channel that corresponds to its fidelity class
    (light noise, OCR noise matched to the scan quality, scrambling, or
    removal).
    """
    page_texts: list[str] = []
    for page in pages:
        text = embedded_page_text(page, rng)
        if quality is TextLayerQuality.CLEAN:
            text = noise.break_ligatures(text, rate=0.15, rng=rng)
        elif quality is TextLayerQuality.NOISY:
            text = noise.break_ligatures(text, rate=0.5, rng=rng)
            text = noise.inject_whitespace(text, rate=0.03, rng=rng)
            text = noise.substitute_characters(text, rate=0.004, rng=rng)
        elif quality is TextLayerQuality.OCR_DERIVED:
            severity = 0.35 + 0.5 * image_layer.degradation_score() + 0.1 * rng.random()
            text = noise.ocr_channel(text, severity=severity, rng=rng)
        elif quality is TextLayerQuality.SCRAMBLED:
            text = noise.scramble_layer(text, rng=rng)
        elif quality is TextLayerQuality.MISSING:
            text = ""
        page_texts.append(text)
    return TextLayer(quality=quality, page_texts=page_texts, producer=producer)


def build_image_layer(
    producer: str,
    year: int,
    scanned_fraction: float,
    rng: np.random.Generator,
) -> ImageLayer:
    """Construct the image layer (pristine render vs degraded scan)."""
    scanner_produced = producer == "scanner_firmware"
    legacy = producer == "legacy_distiller"
    p_scan = scanned_fraction
    if scanner_produced:
        p_scan = 1.0
    elif legacy:
        p_scan = max(p_scan, 0.5)
    elif year < 2005:
        p_scan = max(p_scan, 0.35)
    if rng.random() >= p_scan:
        return ImageLayer(is_scanned=False)
    return ImageLayer(
        dpi=int(rng.choice([120, 150, 200, 300], p=[0.2, 0.35, 0.3, 0.15])),
        rotation_deg=float(rng.normal(0.0, 1.8)),
        blur_sigma=float(abs(rng.normal(0.6, 0.5))),
        contrast=float(np.clip(rng.normal(0.85, 0.15), 0.3, 1.3)),
        noise_level=float(abs(rng.normal(0.08, 0.08))),
        jpeg_quality=int(rng.integers(35, 90)),
        is_scanned=True,
    )


# --------------------------------------------------------------------------- #
# Document and corpus construction
# --------------------------------------------------------------------------- #


def build_document(doc_index: int, config: CorpusConfig) -> SciDocument:
    """Generate one document from its index and the corpus configuration."""
    rng = rng_from(config.seed, "document", doc_index)
    n_pages = int(rng.integers(config.min_pages, config.max_pages + 1))
    metadata = sample_metadata(rng, n_pages=n_pages)
    generator = ScientificTextGenerator(metadata.domain, rng, config.textgen)
    pages = generator.document_pages(metadata.title, n_pages)
    image_layer = build_image_layer(
        metadata.producer, metadata.year, config.scanned_fraction, rng
    )
    quality = sample_text_layer_quality(metadata.producer, rng)
    if image_layer.is_scanned and quality in (TextLayerQuality.CLEAN, TextLayerQuality.NOISY):
        # A scanned document cannot carry a born-digital text layer: it either
        # has an OCR-derived layer or none at all.
        quality = TextLayerQuality.OCR_DERIVED if rng.random() < 0.75 else TextLayerQuality.MISSING
    text_layer = build_text_layer(pages, quality, metadata.producer, image_layer, rng)
    doc_id = f"{config.name}-{doc_index:06d}"
    return SciDocument(
        doc_id=doc_id,
        metadata=metadata,
        pages=pages,
        text_layer=text_layer,
        image_layer=image_layer,
        seed=config.seed,
    )


@dataclass
class Corpus:
    """A collection of synthetic documents plus the configuration that built it."""

    documents: list[SciDocument]
    config: CorpusConfig

    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self) -> Iterator[SciDocument]:
        return iter(self.documents)

    def __getitem__(self, index: int) -> SciDocument:
        return self.documents[index]

    def by_id(self, doc_id: str) -> SciDocument:
        """Look up a document by its identifier."""
        for doc in self.documents:
            if doc.doc_id == doc_id:
                return doc
        raise KeyError(f"no document with id {doc_id!r}")

    def filter(self, predicate: Callable[[SciDocument], bool]) -> "Corpus":
        """Sub-corpus of documents satisfying ``predicate``."""
        return Corpus(documents=[d for d in self.documents if predicate(d)], config=self.config)

    def subset(self, indices: Iterable[int]) -> "Corpus":
        """Sub-corpus of documents at the given indices."""
        docs = [self.documents[i] for i in indices]
        return Corpus(documents=docs, config=self.config)

    def map_documents(self, fn: Callable[[SciDocument], SciDocument]) -> "Corpus":
        """Corpus with ``fn`` applied to every document (e.g. augmentation)."""
        return Corpus(documents=[fn(d) for d in self.documents], config=self.config)

    @property
    def total_pages(self) -> int:
        """Total number of pages across all documents."""
        return sum(d.n_pages for d in self.documents)

    def split(
        self,
        fractions: dict[str, float],
        seed: int | None = None,
    ) -> dict[str, "Corpus"]:
        """Randomly partition the corpus into named splits.

        Parameters
        ----------
        fractions:
            Mapping of split name to fraction; fractions must sum to ≤ 1.  Any
            remainder is appended to the last split.
        seed:
            Shuffle seed (defaults to the corpus seed).
        """
        total = sum(fractions.values())
        if total > 1.0 + 1e-9:
            raise ValueError(f"split fractions sum to {total} > 1")
        rng = rng_from(self.config.seed if seed is None else seed, "corpus-split")
        order = rng.permutation(len(self.documents))
        splits: dict[str, Corpus] = {}
        start = 0
        names = list(fractions.keys())
        for i, name in enumerate(names):
            n = int(round(fractions[name] * len(self.documents)))
            if i == len(names) - 1 and abs(total - 1.0) < 1e-9:
                idx = order[start:]
            else:
                idx = order[start : start + n]
            splits[name] = self.subset(int(j) for j in idx)
            start += len(idx)
        return splits

    def described(self) -> dict[str, object]:
        """Summary statistics of the corpus (used by the CLI and examples)."""
        by_domain: dict[str, int] = {}
        by_quality: dict[str, int] = {}
        n_scanned = 0
        for doc in self.documents:
            by_domain[doc.metadata.domain] = by_domain.get(doc.metadata.domain, 0) + 1
            q = doc.text_layer.quality.value
            by_quality[q] = by_quality.get(q, 0) + 1
            n_scanned += int(doc.image_layer.is_scanned)
        return {
            "n_documents": len(self.documents),
            "total_pages": self.total_pages,
            "scanned_documents": n_scanned,
            "domains": dict(sorted(by_domain.items())),
            "text_layer_quality": dict(sorted(by_quality.items())),
        }


def build_corpus(config: CorpusConfig | None = None, **overrides: object) -> Corpus:
    """Build a corpus from a configuration (or keyword overrides).

    Examples
    --------
    >>> corpus = build_corpus(n_documents=10, seed=7)
    >>> len(corpus)
    10
    """
    if config is None:
        config = CorpusConfig()
    if overrides:
        config = replace(config, **overrides)  # type: ignore[arg-type]
    documents = [build_document(i, config) for i in range(config.n_documents)]
    return Corpus(documents=documents, config=config)


def benchmark_splits(corpus: Corpus) -> dict[str, Corpus]:
    """The paper's standard partition: selector training, validation, held-out test."""
    return corpus.split({"train": 0.6, "validation": 0.15, "test": 0.25})
