"""HTML and Markdown → structured text extraction for web-text sources.

The ingestion path mirrors what the document generator produces for
synthetic PDFs: a list of typed blocks (headings, paragraphs, tables,
boilerplate) that become :class:`~repro.documents.document.PageElement`
rows.  Web documents are born-digital — the text layer *is* the ground
truth (quality ``clean``), there is no scanned image layer — so extraction
parsers read them faithfully while recognition parsers, which transcribe
rendered page images, have nothing to work on (see
:class:`~repro.documents.document.DocumentType`).

The HTML extractor is structure-preserving where the markup allows
(``<h*>`` → headings, ``<table>`` rows → table blocks, ``<nav>``/
``<footer>`` → boilerplate) and falls back gracefully on tag soup: when no
block structure survives parsing, the stripped text is split on blank
lines into plain paragraphs so no content is silently dropped.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from html import unescape
from html.parser import HTMLParser

from repro.documents.document import (
    DocumentType,
    ImageLayer,
    PageContent,
    PageElement,
    SciDocument,
    TextLayer,
    TextLayerQuality,
)
from repro.documents.metadata import DocumentMetadata

#: Blocks per synthesised page.  Web documents have no physical pages; the
#: extractor paginates so batch/α accounting sees realistic page counts.
BLOCKS_PER_PAGE = 12

#: One extracted block: an ``ELEMENT_KINDS`` member plus its plain text.
Block = tuple[str, str]

_HEADING_TAGS = frozenset({"h1", "h2", "h3", "h4", "h5", "h6"})
_SKIP_TAGS = frozenset({"script", "style", "noscript", "template", "svg"})
_BOILERPLATE_TAGS = frozenset({"nav", "footer", "aside"})
_BLOCK_TAGS = frozenset({"p", "li", "pre", "blockquote", "dd", "dt", "figcaption"})


class _HtmlBlockParser(HTMLParser):
    """Collect (kind, text) blocks from an HTML byte stream."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.blocks: list[Block] = []
        self.title: str | None = None
        self._text: list[str] = []
        self._kind_stack: list[str] = []
        self._skip_depth = 0
        self._boilerplate_depth = 0
        self._in_title = False
        self._table_depth = 0
        self._table_rows: list[list[str]] = []
        self._cell: list[str] | None = None

    # -- helpers ------------------------------------------------------- #
    def _flush(self, kind: str | None = None) -> None:
        text = _normalise_whitespace(" ".join(self._text))
        self._text = []
        if not text:
            return
        block_kind = kind or (self._kind_stack[-1] if self._kind_stack else "paragraph")
        if self._boilerplate_depth > 0:
            block_kind = "boilerplate"
        self.blocks.append((block_kind, text))

    # -- HTMLParser hooks ---------------------------------------------- #
    def handle_starttag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        if tag in _SKIP_TAGS:
            self._skip_depth += 1
            return
        if self._skip_depth:
            return
        if tag == "title":
            self._in_title = True
            return
        if tag in _BOILERPLATE_TAGS or tag == "header":
            self._flush()
            self._boilerplate_depth += 1
            return
        if tag == "table":
            self._flush()
            self._table_depth += 1
            return
        if self._table_depth:
            if tag == "tr":
                self._table_rows.append([])
            elif tag in ("td", "th"):
                self._cell = []
            return
        if tag in _HEADING_TAGS:
            self._flush()
            self._kind_stack.append("heading")
        elif tag in _BLOCK_TAGS:
            self._flush()
            self._kind_stack.append("paragraph")
        elif tag in ("br", "div", "section", "article", "ul", "ol", "tr"):
            self._flush()

    def handle_endtag(self, tag: str) -> None:
        if tag in _SKIP_TAGS:
            self._skip_depth = max(0, self._skip_depth - 1)
            return
        if self._skip_depth:
            return
        if tag == "title":
            self._in_title = False
            return
        if tag in _BOILERPLATE_TAGS or tag == "header":
            self._flush()
            self._boilerplate_depth = max(0, self._boilerplate_depth - 1)
            return
        if tag == "table":
            self._table_depth = max(0, self._table_depth - 1)
            if self._table_depth == 0:
                rows = [
                    " | ".join(cell for cell in row if cell)
                    for row in self._table_rows
                    if any(row)
                ]
                self._table_rows = []
                if rows:
                    self.blocks.append(("table", "\n".join(rows)))
            return
        if self._table_depth:
            if tag in ("td", "th") and self._cell is not None:
                if not self._table_rows:
                    self._table_rows.append([])
                self._table_rows[-1].append(_normalise_whitespace(" ".join(self._cell)))
                self._cell = None
            return
        if tag in _HEADING_TAGS and self._kind_stack and self._kind_stack[-1] == "heading":
            self._flush("heading")
            self._kind_stack.pop()
        elif tag in _BLOCK_TAGS and self._kind_stack and self._kind_stack[-1] == "paragraph":
            self._flush("paragraph")
            self._kind_stack.pop()

    def handle_data(self, data: str) -> None:
        if self._skip_depth:
            return
        if self._in_title:
            self.title = (self.title or "") + data
            return
        if self._table_depth:
            if self._cell is not None:
                self._cell.append(data)
            return
        self._text.append(data)

    def close(self) -> None:  # flush trailing text
        super().close()
        self._flush()


def _normalise_whitespace(text: str) -> str:
    return re.sub(r"\s+", " ", text).strip()


_TAG_RE = re.compile(r"<[^>]+>")


def _fallback_blocks(raw: str) -> list[Block]:
    """Tag-soup fallback: strip markup, split on blank lines into paragraphs."""
    stripped = _TAG_RE.sub("\n", unescape(raw))
    blocks: list[Block] = []
    for chunk in re.split(r"\n\s*\n", stripped):
        text = _normalise_whitespace(chunk)
        if text:
            blocks.append(("paragraph", text))
    return blocks


def html_to_blocks(raw: str) -> tuple[list[Block], str | None]:
    """Extract ``(blocks, title)`` from HTML, falling back on tag soup."""
    parser = _HtmlBlockParser()
    try:
        parser.feed(raw)
        parser.close()
        blocks, title = parser.blocks, parser.title
    except Exception:
        blocks, title = [], None
    if not blocks:
        blocks = _fallback_blocks(raw)
    if title is not None:
        title = _normalise_whitespace(title) or None
    return blocks, title


_MD_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
_MD_TABLE_ROW_RE = re.compile(r"^\s*\|.*\|\s*$")
_MD_TABLE_RULE_RE = re.compile(r"^\s*\|?[\s:|-]+\|?\s*$")
_MD_LIST_RE = re.compile(r"^\s*(?:[-*+]|\d+\.)\s+(.*)$")
_MD_LINK_RE = re.compile(r"\[([^\]]*)\]\([^)]*\)")


def _strip_inline_markdown(text: str) -> str:
    text = _MD_LINK_RE.sub(r"\1", text)
    return _normalise_whitespace(text.replace("**", "").replace("`", ""))


def markdown_to_blocks(raw: str) -> tuple[list[Block], str | None]:
    """Extract ``(blocks, title)`` from Markdown text.

    Line-oriented: ATX headings, pipe tables, list items, fenced code (kept
    verbatim as paragraphs), and blank-line-separated paragraphs.  The first
    heading becomes the title.
    """
    blocks: list[Block] = []
    title: str | None = None
    paragraph: list[str] = []
    table_rows: list[str] = []
    in_fence = False
    fence_lines: list[str] = []

    def flush_paragraph() -> None:
        nonlocal paragraph
        text = _strip_inline_markdown(" ".join(paragraph))
        paragraph = []
        if text:
            blocks.append(("paragraph", text))

    def flush_table() -> None:
        nonlocal table_rows
        rows = [
            " | ".join(
                cell.strip() for cell in row.strip().strip("|").split("|")
            )
            for row in table_rows
            if not _MD_TABLE_RULE_RE.match(row)
        ]
        table_rows = []
        rows = [r for r in rows if r.strip(" |")]
        if rows:
            blocks.append(("table", "\n".join(rows)))

    for line in raw.splitlines():
        if line.strip().startswith("```"):
            if in_fence:
                text = "\n".join(fence_lines).strip()
                fence_lines = []
                if text:
                    blocks.append(("paragraph", text))
            else:
                flush_paragraph()
                flush_table()
            in_fence = not in_fence
            continue
        if in_fence:
            fence_lines.append(line)
            continue
        heading = _MD_HEADING_RE.match(line)
        if heading:
            flush_paragraph()
            flush_table()
            text = _strip_inline_markdown(heading.group(2))
            if text:
                blocks.append(("heading", text))
                if title is None:
                    title = text
            continue
        if _MD_TABLE_ROW_RE.match(line):
            flush_paragraph()
            table_rows.append(line)
            continue
        if table_rows:
            flush_table()
        listed = _MD_LIST_RE.match(line)
        if listed:
            flush_paragraph()
            text = _strip_inline_markdown(listed.group(1))
            if text:
                blocks.append(("paragraph", text))
            continue
        if not line.strip():
            flush_paragraph()
            continue
        paragraph.append(line.strip())
    flush_paragraph()
    flush_table()
    return blocks, title


@dataclass(frozen=True)
class WebTextRecord:
    """One extracted web document before conversion to :class:`SciDocument`."""

    doc_id: str
    doc_type: DocumentType
    blocks: tuple[Block, ...]
    title: str | None = None
    origin: str = "web"


def record_to_document(
    record: WebTextRecord, blocks_per_page: int = BLOCKS_PER_PAGE
) -> SciDocument:
    """Build a born-digital :class:`SciDocument` from extracted blocks.

    The text layer equals the ground truth (quality ``clean``): web text has
    no lossy PDF production step, so extraction parsers read it faithfully.
    """
    blocks = list(record.blocks) or [("paragraph", "(empty document)")]
    pages: list[PageContent] = []
    for start in range(0, len(blocks), max(1, blocks_per_page)):
        chunk = blocks[start : start + max(1, blocks_per_page)]
        pages.append(
            PageContent(
                index=len(pages),
                elements=tuple(PageElement(kind=k, text=t) for k, t in chunk),
            )
        )
    page_texts = [page.ground_truth_text() for page in pages]
    metadata = DocumentMetadata(
        title=record.title or record.doc_id,
        publisher=record.origin,
        domain="web",
        subcategory=record.doc_type.value,
        year=2024,
        pdf_format="none",
        producer=f"{record.doc_type.value}-extract",
        n_pages=len(pages),
        keywords=(),
    )
    return SciDocument(
        doc_id=record.doc_id,
        metadata=metadata,
        pages=pages,
        text_layer=TextLayer(
            quality=TextLayerQuality.CLEAN,
            page_texts=page_texts,
            producer=f"{record.doc_type.value}-extract",
        ),
        image_layer=ImageLayer(is_scanned=False),
        seed=0,
        doc_type=record.doc_type.value,
    )
