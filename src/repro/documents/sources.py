"""Pluggable document sources: where a parsing run's documents come from.

A :class:`DocumentSource` answers three questions for the pipeline:

* :meth:`~DocumentSource.iter_documents` — stream the documents (O(1)
  memory for directory-backed sources);
* :meth:`~DocumentSource.fingerprint` — a stable identity of the backing
  content, recorded in reports for provenance (per-document parse caching
  keys on *content*, so two sources yielding byte-identical documents
  share cache entries regardless of their fingerprints);
* :attr:`~DocumentSource.doc_type` — the declared
  :class:`~repro.documents.document.DocumentType` its documents carry
  (``None`` for mixed-format sources such as crawl dumps), which feeds
  format-aware routing.

Sources are constructed either directly (``HtmlDirSource("corpus/html")``)
or declaratively through a :class:`SourceSpec` — a JSON-round-trippable
``(kind, options)`` pair resolved against a registry, mirroring how
execution backends are named (:mod:`repro.pipeline.backends.base`).  The
spec form is what travels in ``ParseRequest`` JSON, gateway request files,
and the CLI's ``--source kind:path`` shorthand; option typos fail loudly
at construction with a did-you-mean suggestion.
"""

from __future__ import annotations

import abc
import difflib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from repro.documents.corpus import CorpusConfig, build_document
from repro.documents.document import DocumentType, SciDocument
from repro.documents.simpdf import deserialize_document
from repro.documents.webtext import (
    WebTextRecord,
    html_to_blocks,
    markdown_to_blocks,
    record_to_document,
)
from repro.utils.hashing import stable_hash_hex


def _suggest(name: str, known: list[str]) -> str:
    """``"; did you mean 'x'?"`` when a close match exists, else ``""``."""
    matches = difflib.get_close_matches(name, known, n=1, cutoff=0.6)
    return f"; did you mean {matches[0]!r}?" if matches else ""


# ---------------------------------------------------------------------- #
# The protocol
# ---------------------------------------------------------------------- #
class DocumentSource(abc.ABC):
    """Where documents come from.  Implementations must be cheap to build.

    Constructors only record configuration (paths, globs, corpus specs) —
    existence and readability are checked at iteration time, so a spec can
    be validated on a submitting client whose filesystem differs from the
    executing service's.
    """

    #: Registry kind of the source (``"synthetic"``, ``"html-dir"``, …).
    kind: str = "abstract"

    @property
    def doc_type(self) -> DocumentType | None:
        """Declared type of every yielded document; ``None`` when mixed."""
        return None

    @abc.abstractmethod
    def iter_documents(self) -> Iterator[SciDocument]:
        """Stream the documents in a stable, deterministic order."""

    @abc.abstractmethod
    def fingerprint(self) -> str:
        """Stable hex identity of the backing content.

        Changes when the underlying files change (size/mtime for
        directory sources) or the generation spec changes (synthetic).
        """

    def spec(self) -> "SourceSpec | None":
        """The declarative spec that rebuilds this source, when one exists.

        ``None`` means the source is not JSON-replayable (e.g. an
        in-memory document collection); requests carrying it serialise as
        provenance only and refuse replay after a round trip.
        """
        return None

    def count_hint(self) -> int | None:
        """Document count when knowable without reading content, else ``None``."""
        return None

    def describe(self) -> dict[str, Any]:
        """Human-oriented summary (CLI listings, service logs)."""
        payload: dict[str, Any] = {"kind": self.kind}
        if self.doc_type is not None:
            payload["doc_type"] = self.doc_type.value
        hint = self.count_hint()
        if hint is not None:
            payload["n_documents"] = hint
        return payload

    # Value semantics: sources with the same kind and fingerprint will
    # yield identical documents, which is what request comparison needs.
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DocumentSource):
            return NotImplemented
        return self.kind == other.kind and self.fingerprint() == other.fingerprint()

    def __hash__(self) -> int:
        return hash((self.kind, self.fingerprint()))


# ---------------------------------------------------------------------- #
# Concrete sources
# ---------------------------------------------------------------------- #
class SyntheticSource(DocumentSource):
    """Today's corpus builder behind the source protocol.

    Streams documents one at a time through
    :func:`~repro.documents.corpus.build_document` instead of
    materialising the whole corpus, so arbitrarily large synthetic runs
    keep O(1) source-side memory.
    """

    kind = "synthetic"

    def __init__(self, config: CorpusConfig | None = None) -> None:
        self.config = config or CorpusConfig()

    @property
    def doc_type(self) -> DocumentType:
        return DocumentType.PDF

    def iter_documents(self) -> Iterator[SciDocument]:
        for index in range(self.config.n_documents):
            yield build_document(index, self.config)

    def fingerprint(self) -> str:
        from dataclasses import asdict

        cfg = asdict(self.config)
        return stable_hash_hex(
            "source-synthetic", *(f"{k}={cfg[k]}" for k in sorted(cfg))
        )

    def spec(self) -> "SourceSpec":
        from dataclasses import asdict

        cfg = self.config
        options: dict[str, Any] = {"n_documents": cfg.n_documents, "seed": cfg.seed}
        defaults = CorpusConfig(n_documents=cfg.n_documents, seed=cfg.seed)
        for name in ("min_pages", "max_pages", "scanned_fraction", "name"):
            if getattr(cfg, name) != getattr(defaults, name):
                options[name] = getattr(cfg, name)
        # Nested text-generation knobs ride as a mapping so the spec stays
        # lossless for fully customised corpora.
        if cfg.textgen != defaults.textgen:
            options["textgen"] = asdict(cfg.textgen)
        return SourceSpec(kind=self.kind, options=options)

    def count_hint(self) -> int:
        return self.config.n_documents


class ExplicitSource(DocumentSource):
    """An in-memory document collection (the old ``documents=`` field).

    Not JSON-replayable: :meth:`spec` is ``None``, so a request built on it
    serialises its ``doc_ids`` for provenance and refuses replay after a
    round trip — exactly the legacy explicit-documents contract.
    """

    kind = "explicit"

    def __init__(self, documents: Any) -> None:
        self.documents: tuple[SciDocument, ...] = tuple(documents)
        if not self.documents:
            raise ValueError("documents must not be empty")

    @property
    def doc_type(self) -> DocumentType | None:
        types = {doc.doc_type for doc in self.documents}
        return DocumentType(next(iter(types))) if len(types) == 1 else None

    def iter_documents(self) -> Iterator[SciDocument]:
        return iter(self.documents)

    def fingerprint(self) -> str:
        from repro.cache.keys import document_content_hash

        return stable_hash_hex(
            "source-explicit", *(document_content_hash(d) for d in self.documents)
        )

    def count_hint(self) -> int:
        return len(self.documents)


class _FileSource(DocumentSource):
    """Shared machinery of directory-backed sources."""

    def __init__(self, directory: str | Path, glob: str) -> None:
        self.directory = Path(directory)
        self.glob = glob

    def paths(self) -> list[Path]:
        if not self.directory.is_dir():
            raise FileNotFoundError(
                f"{self.kind} source directory {str(self.directory)!r} does not "
                f"exist (or is not a directory)"
            )
        return sorted(p for p in self.directory.glob(self.glob) if p.is_file())

    def fingerprint(self) -> str:
        entries = []
        for path in self.paths():
            stat = path.stat()
            entries.append(
                f"{path.relative_to(self.directory)}:{stat.st_size}:{stat.st_mtime_ns}"
            )
        return stable_hash_hex("source-files", self.kind, self.glob, *entries)

    def count_hint(self) -> int | None:
        try:
            return len(self.paths())
        except FileNotFoundError:
            return None

    def spec(self) -> "SourceSpec":
        options: dict[str, Any] = {"path": str(self.directory)}
        default_glob = _SOURCE_REGISTRY[self.kind].defaults.get("glob")
        if self.glob != default_glob:
            options["glob"] = self.glob
        return SourceSpec(kind=self.kind, options=options)


class SimPdfDirSource(_FileSource):
    """A directory of ``*.simpdf`` files (the existing on-disk format)."""

    kind = "simpdf-dir"

    def __init__(self, directory: str | Path, glob: str = "*.simpdf") -> None:
        super().__init__(directory, glob)

    @property
    def doc_type(self) -> DocumentType:
        return DocumentType.PDF

    def iter_documents(self) -> Iterator[SciDocument]:
        for path in self.paths():
            yield deserialize_document(path.read_bytes())


class HtmlDirSource(_FileSource):
    """A directory of HTML files, extracted to structured text."""

    kind = "html-dir"

    def __init__(self, directory: str | Path, glob: str = "**/*.html") -> None:
        super().__init__(directory, glob)

    @property
    def doc_type(self) -> DocumentType:
        return DocumentType.HTML

    def iter_documents(self) -> Iterator[SciDocument]:
        for path in self.paths():
            blocks, title = html_to_blocks(path.read_text(encoding="utf-8", errors="replace"))
            yield record_to_document(
                WebTextRecord(
                    doc_id=_doc_id_for(path, self.directory),
                    doc_type=DocumentType.HTML,
                    blocks=tuple(blocks),
                    title=title,
                    origin=self.directory.name or "html",
                )
            )


class MarkdownDirSource(_FileSource):
    """A directory of Markdown files, extracted to structured text."""

    kind = "markdown-dir"

    def __init__(self, directory: str | Path, glob: str = "**/*.md") -> None:
        super().__init__(directory, glob)

    @property
    def doc_type(self) -> DocumentType:
        return DocumentType.MARKDOWN

    def iter_documents(self) -> Iterator[SciDocument]:
        for path in self.paths():
            blocks, title = markdown_to_blocks(
                path.read_text(encoding="utf-8", errors="replace")
            )
            yield record_to_document(
                WebTextRecord(
                    doc_id=_doc_id_for(path, self.directory),
                    doc_type=DocumentType.MARKDOWN,
                    blocks=tuple(blocks),
                    title=title,
                    origin=self.directory.name or "markdown",
                )
            )


class CrawlDumpSource(_FileSource):
    """A per-domain crawl dump: ``root/<domain>/*.{html,md}``.

    The layout produced by site crawlers — one subdirectory per crawled
    domain holding that domain's pages.  Mixed HTML/Markdown content is
    routed to the right extractor per file, the domain becomes the
    document's publisher, and exact near-duplicate mirrors (the same page
    crawled under several domains) are dropped via the dataset layer's
    :func:`~repro.datasets.dedup.content_fingerprint`.
    """

    kind = "crawl-dump"

    def __init__(
        self, directory: str | Path, glob: str = "**/*", dedup: bool = True
    ) -> None:
        super().__init__(directory, glob)
        self.dedup = bool(dedup)

    @property
    def doc_type(self) -> DocumentType | None:
        return None  # mixed per-file types

    def paths(self) -> list[Path]:
        return [
            p
            for p in super().paths()
            if p.suffix.lower() in (".html", ".htm", ".md", ".markdown")
        ]

    def spec(self) -> "SourceSpec":
        base = super().spec()
        options = dict(base.options)
        if not self.dedup:
            options["dedup"] = False
        return SourceSpec(kind=self.kind, options=options)

    def iter_documents(self) -> Iterator[SciDocument]:
        # Imported lazily: repro.datasets builds on the pipeline, which
        # builds on this module; deferring keeps the graph acyclic.
        from repro.datasets.dedup import content_fingerprint

        seen: set[int] = set()
        for path in self.paths():
            relative = path.relative_to(self.directory)
            domain = relative.parts[0] if len(relative.parts) > 1 else self.directory.name
            raw = path.read_text(encoding="utf-8", errors="replace")
            if path.suffix.lower() in (".md", ".markdown"):
                blocks, title = markdown_to_blocks(raw)
                doc_type = DocumentType.MARKDOWN
            else:
                blocks, title = html_to_blocks(raw)
                doc_type = DocumentType.HTML
            text = "\n".join(text for _, text in blocks)
            if self.dedup:
                fp = content_fingerprint(text)
                if fp in seen:
                    continue
                seen.add(fp)
            yield record_to_document(
                WebTextRecord(
                    doc_id=str(relative.with_suffix("")).replace("\\", "/"),
                    doc_type=doc_type,
                    blocks=tuple(blocks),
                    title=title,
                    origin=domain,
                )
            )


def _doc_id_for(path: Path, root: Path) -> str:
    return str(path.relative_to(root).with_suffix("")).replace("\\", "/")


# ---------------------------------------------------------------------- #
# Declarative specs and the registry
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SourceSpec:
    """JSON-round-trippable ``(kind, options)`` description of a source."""

    kind: str
    options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "options", dict(self.options))

    def to_json_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "options": dict(self.options)}

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "SourceSpec":
        unknown = sorted(set(payload) - {"kind", "options"})
        if unknown:
            raise ValueError(
                f"unknown source-spec field(s) {unknown}; expected 'kind' and "
                f"'options'"
            )
        if "kind" not in payload:
            raise ValueError("source spec is missing its 'kind'")
        return cls(
            kind=str(payload["kind"]), options=dict(payload.get("options") or {})
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SourceSpec):
            return NotImplemented
        return self.kind == other.kind and self.options == other.options

    def __hash__(self) -> int:
        return hash((self.kind, tuple(sorted(self.options.items()))))


@dataclass(frozen=True)
class SourceKind:
    """Name-based construction recipe of one source kind.

    ``path_option`` names the option the CLI's ``kind:value`` shorthand
    binds to; ``defaults`` records option defaults so specs stay minimal.
    """

    name: str
    factory: Callable[..., DocumentSource]
    options: frozenset[str]
    description: str
    path_option: str | None = None
    defaults: Mapping[str, Any] = field(default_factory=dict)


def _make_synthetic(**options: Any) -> SyntheticSource:
    known = {"n_documents", "seed", "min_pages", "max_pages", "scanned_fraction", "name"}
    config_kwargs = {k: v for k, v in options.items() if k in known}
    for name in ("n_documents", "seed", "min_pages", "max_pages"):
        if name in config_kwargs:
            config_kwargs[name] = int(config_kwargs[name])
    textgen = options.get("textgen")
    if textgen is not None:
        from dataclasses import fields as dc_fields

        from repro.documents.textgen import TextGenConfig

        tg_known = {f.name for f in dc_fields(TextGenConfig)}
        config_kwargs["textgen"] = TextGenConfig(
            **{k: v for k, v in dict(textgen).items() if k in tg_known}
        )
    return SyntheticSource(CorpusConfig(**config_kwargs))


_SOURCE_REGISTRY: dict[str, SourceKind] = {}


def register_source(spec: SourceKind) -> None:
    """Register (or replace) a source kind under its name."""
    _SOURCE_REGISTRY[spec.name] = spec


for _kind in (
    SourceKind(
        name="synthetic",
        factory=_make_synthetic,
        options=frozenset(
            {
                "n_documents",
                "seed",
                "min_pages",
                "max_pages",
                "scanned_fraction",
                "name",
                "textgen",
            }
        ),
        description="generated synthetic corpus (the existing corpus builder)",
        path_option="n_documents",
    ),
    SourceKind(
        name="simpdf-dir",
        factory=SimPdfDirSource,
        options=frozenset({"directory", "path", "glob"}),
        description="directory of *.simpdf files",
        path_option="path",
        defaults={"glob": "*.simpdf"},
    ),
    SourceKind(
        name="html-dir",
        factory=HtmlDirSource,
        options=frozenset({"directory", "path", "glob"}),
        description="directory of HTML files (structure-preserving extraction)",
        path_option="path",
        defaults={"glob": "**/*.html"},
    ),
    SourceKind(
        name="markdown-dir",
        factory=MarkdownDirSource,
        options=frozenset({"directory", "path", "glob"}),
        description="directory of Markdown files",
        path_option="path",
        defaults={"glob": "**/*.md"},
    ),
    SourceKind(
        name="crawl-dump",
        factory=CrawlDumpSource,
        options=frozenset({"directory", "path", "glob", "dedup"}),
        description="per-domain crawl dump (mixed HTML/Markdown, deduplicated)",
        path_option="path",
        defaults={"glob": "**/*", "dedup": True},
    ),
):
    register_source(_kind)


def source_names() -> list[str]:
    """Known source kinds (sorted)."""
    return sorted(_SOURCE_REGISTRY)


def source_kinds() -> list[SourceKind]:
    """Registered source kinds (sorted by name; for docs and CLI help)."""
    return [_SOURCE_REGISTRY[name] for name in source_names()]


def validate_source_spec(spec: SourceSpec) -> None:
    """Fail fast on an unknown kind or misspelled options.

    Filesystem state is deliberately *not* checked: a spec may be
    validated on a submitting client whose paths only exist on the
    executing service.
    """
    kind = _SOURCE_REGISTRY.get(spec.kind)
    if kind is None:
        raise ValueError(
            f"unknown document source {spec.kind!r}"
            f"{_suggest(spec.kind, source_names())}; known: {source_names()}"
        )
    for option in spec.options:
        if option not in kind.options:
            raise ValueError(
                f"unknown option {option!r} for source {spec.kind!r}"
                f"{_suggest(option, sorted(kind.options))}; "
                f"known: {sorted(kind.options)}"
            )


def create_source(spec: SourceSpec | DocumentSource) -> DocumentSource:
    """Resolve a spec (or pass an instance through) into a source."""
    if isinstance(spec, DocumentSource):
        return spec
    validate_source_spec(spec)
    kind = _SOURCE_REGISTRY[spec.kind]
    options = dict(spec.options)
    # ``path`` is the spec-facing spelling of the factories' ``directory``.
    if "path" in options:
        options.setdefault("directory", options.pop("path"))
    return kind.factory(**options)


def _coerce_option_value(value: str) -> Any:
    lowered = value.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value


def parse_source_arg(raw: str) -> SourceSpec:
    """Parse the CLI's ``--source`` shorthand into a validated spec.

    ``kind:value`` binds ``value`` to the kind's primary option (the
    directory for file sources, the document count for ``synthetic``);
    further options ride as ``?key=value&key=value``::

        html-dir:corpus/html
        crawl-dump:dumps/2024-07?dedup=false
        synthetic:500?seed=7
    """
    raw = raw.strip()
    if not raw:
        raise ValueError("empty --source value")
    head, _, query = raw.partition("?")
    kind_name, _, primary = head.partition(":")
    kind = _SOURCE_REGISTRY.get(kind_name)
    if kind is None:
        raise ValueError(
            f"unknown document source {kind_name!r}"
            f"{_suggest(kind_name, source_names())}; known: {source_names()}"
        )
    options: dict[str, Any] = {}
    if primary:
        if kind.path_option is None:
            raise ValueError(f"source {kind_name!r} takes no positional value")
        options[kind.path_option] = (
            _coerce_option_value(primary) if kind.path_option != "path" else primary
        )
    for pair in filter(None, query.split("&")):
        key, sep, value = pair.partition("=")
        if not sep:
            raise ValueError(f"malformed --source option {pair!r}; expected key=value")
        options[key.strip()] = _coerce_option_value(value.strip())
    spec = SourceSpec(kind=kind_name, options=options)
    validate_source_spec(spec)
    return spec
