"""SimPDF: a serialisable container format for synthetic documents.

The paper's pipeline reads PDFs from a Lustre filesystem, aggregates them into
compressed ZIP archives, and stages those archives to node-local RAM storage.
SimPDF is the reproduction's on-disk stand-in: a zlib-compressed JSON container
holding a document's ground truth, text layer, image layer and metadata.  The
archive variant packs many documents into one file so the HPC simulator and
the examples exercise the same aggregation/staging pattern with realistic
byte sizes.
"""

from __future__ import annotations

import io
import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.documents.document import (
    ImageLayer,
    PageContent,
    PageElement,
    SciDocument,
    TextLayer,
    TextLayerQuality,
)
from repro.documents.metadata import DocumentMetadata

#: Magic prefix identifying a SimPDF payload.
MAGIC = b"SIMPDF1\n"


def document_to_dict(doc: SciDocument) -> dict[str, object]:
    """Convert a document to a JSON-serialisable dictionary."""
    return {
        "doc_id": doc.doc_id,
        "seed": doc.seed,
        "doc_type": doc.doc_type,
        "metadata": doc.metadata.to_dict(),
        "pages": [
            {
                "index": page.index,
                "elements": [
                    {"kind": el.kind, "text": el.text, "latex": el.latex}
                    for el in page.elements
                ],
            }
            for page in doc.pages
        ],
        "text_layer": {
            "quality": doc.text_layer.quality.value,
            "producer": doc.text_layer.producer,
            "page_texts": list(doc.text_layer.page_texts),
        },
        "image_layer": {
            "dpi": doc.image_layer.dpi,
            "rotation_deg": doc.image_layer.rotation_deg,
            "blur_sigma": doc.image_layer.blur_sigma,
            "contrast": doc.image_layer.contrast,
            "noise_level": doc.image_layer.noise_level,
            "jpeg_quality": doc.image_layer.jpeg_quality,
            "is_scanned": doc.image_layer.is_scanned,
        },
    }


def document_from_dict(data: dict[str, object]) -> SciDocument:
    """Inverse of :func:`document_to_dict`."""
    pages = [
        PageContent(
            index=int(p["index"]),  # type: ignore[index,arg-type]
            elements=tuple(
                PageElement(kind=e["kind"], text=e["text"], latex=e.get("latex"))
                for e in p["elements"]  # type: ignore[index]
            ),
        )
        for p in data["pages"]  # type: ignore[union-attr]
    ]
    tl = data["text_layer"]  # type: ignore[index]
    il = data["image_layer"]  # type: ignore[index]
    return SciDocument(
        doc_id=str(data["doc_id"]),
        seed=int(data.get("seed", 0)),  # type: ignore[arg-type]
        doc_type=str(data.get("doc_type", "pdf")),
        metadata=DocumentMetadata.from_dict(dict(data["metadata"])),  # type: ignore[arg-type]
        pages=pages,
        text_layer=TextLayer(
            quality=TextLayerQuality(tl["quality"]),
            page_texts=list(tl["page_texts"]),
            producer=str(tl["producer"]),
        ),
        image_layer=ImageLayer(
            dpi=int(il["dpi"]),
            rotation_deg=float(il["rotation_deg"]),
            blur_sigma=float(il["blur_sigma"]),
            contrast=float(il["contrast"]),
            noise_level=float(il["noise_level"]),
            jpeg_quality=int(il["jpeg_quality"]),
            is_scanned=bool(il["is_scanned"]),
        ),
    )


def serialize_document(doc: SciDocument, compress_level: int = 6) -> bytes:
    """Serialise one document to SimPDF bytes."""
    payload = json.dumps(document_to_dict(doc), ensure_ascii=False).encode("utf-8")
    return MAGIC + zlib.compress(payload, compress_level)


def deserialize_document(blob: bytes) -> SciDocument:
    """Parse SimPDF bytes back into a document."""
    if not blob.startswith(MAGIC):
        raise ValueError("not a SimPDF payload (bad magic)")
    payload = zlib.decompress(blob[len(MAGIC):])
    return document_from_dict(json.loads(payload.decode("utf-8")))


class SimPdfWriter:
    """Write individual SimPDF files under a directory."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def write(self, doc: SciDocument) -> Path:
        """Write one document; returns the file path."""
        path = self.directory / f"{doc.doc_id}.simpdf"
        path.write_bytes(serialize_document(doc))
        return path

    def write_all(self, documents: Iterable[SciDocument]) -> list[Path]:
        """Write many documents; returns the file paths."""
        return [self.write(doc) for doc in documents]


class SimPdfReader:
    """Read SimPDF files from a directory."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    def paths(self) -> list[Path]:
        """All SimPDF file paths in the directory (sorted)."""
        return sorted(self.directory.glob("*.simpdf"))

    def read(self, path: str | Path) -> SciDocument:
        """Read one document from a path."""
        return deserialize_document(Path(path).read_bytes())

    def read_all(self) -> list[SciDocument]:
        """Read every document in the directory."""
        return [self.read(p) for p in self.paths()]


@dataclass
class ArchiveEntry:
    """Directory entry of a :class:`SimPdfArchive`: id, offset, length."""

    doc_id: str
    offset: int
    length: int


class SimPdfArchive:
    """A single-file archive packing many SimPDF documents.

    Mirrors the paper's ZIP aggregation: a header with a JSON directory of
    entries, followed by the concatenated compressed documents.  Supports
    random access by document id without decompressing the whole archive.
    """

    MAGIC = b"SIMPDFARCH1\n"

    @classmethod
    def write(cls, path: str | Path, documents: Iterable[SciDocument]) -> "SimPdfArchive":
        """Create an archive file from documents and return a reader for it."""
        body = io.BytesIO()
        entries: list[ArchiveEntry] = []
        for doc in documents:
            blob = serialize_document(doc)
            entries.append(ArchiveEntry(doc_id=doc.doc_id, offset=body.tell(), length=len(blob)))
            body.write(blob)
        directory = json.dumps(
            [{"doc_id": e.doc_id, "offset": e.offset, "length": e.length} for e in entries]
        ).encode("utf-8")
        with open(path, "wb") as fh:
            fh.write(cls.MAGIC)
            fh.write(len(directory).to_bytes(8, "little"))
            fh.write(directory)
            fh.write(body.getvalue())
        return cls(path)

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        with open(self.path, "rb") as fh:
            magic = fh.read(len(self.MAGIC))
            if magic != self.MAGIC:
                raise ValueError("not a SimPDF archive (bad magic)")
            dir_len = int.from_bytes(fh.read(8), "little")
            directory = json.loads(fh.read(dir_len).decode("utf-8"))
            self._body_offset = fh.tell()
        self.entries = [
            ArchiveEntry(doc_id=e["doc_id"], offset=e["offset"], length=e["length"])
            for e in directory
        ]
        self._index = {e.doc_id: e for e in self.entries}

    def __len__(self) -> int:
        return len(self.entries)

    def doc_ids(self) -> list[str]:
        """All document ids in archive order."""
        return [e.doc_id for e in self.entries]

    def read(self, doc_id: str) -> SciDocument:
        """Random-access read of one document by id."""
        entry = self._index.get(doc_id)
        if entry is None:
            raise KeyError(f"no document {doc_id!r} in archive")
        with open(self.path, "rb") as fh:
            fh.seek(self._body_offset + entry.offset)
            blob = fh.read(entry.length)
        return deserialize_document(blob)

    def __iter__(self) -> Iterator[SciDocument]:
        with open(self.path, "rb") as fh:
            for entry in self.entries:
                fh.seek(self._body_offset + entry.offset)
                yield deserialize_document(fh.read(entry.length))

    @property
    def size_bytes(self) -> int:
        """Total archive size on disk."""
        return self.path.stat().st_size
