"""Document metadata model and sampling.

Metadata is the input to the CLS II classifier ("metadata-driven;
regression-based" in Figure 2) and to the SVC baselines of Table 4: publisher,
scientific (sub-)category, publication year, PDF format version, and the
producing tool.  The sampling priors live in :mod:`repro.documents.lexicon`.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict

import numpy as np

from repro.documents import lexicon


@dataclass(frozen=True)
class DocumentMetadata:
    """Bibliographic and technical metadata of a document."""

    title: str
    publisher: str
    domain: str
    subcategory: str
    year: int
    pdf_format: str
    producer: str
    n_pages: int
    keywords: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, object]:
        """Plain-dictionary form (used by serialization and featurizers)."""
        d = asdict(self)
        d["keywords"] = list(self.keywords)
        return d

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "DocumentMetadata":
        """Inverse of :meth:`to_dict`."""
        payload = dict(data)
        payload["keywords"] = tuple(payload.get("keywords", ()))  # type: ignore[arg-type]
        return cls(**payload)  # type: ignore[arg-type]


def _weighted_choice(rng: np.random.Generator, options: dict[str, float]) -> str:
    names = list(options.keys())
    weights = np.asarray([options[n] for n in names], dtype=float)
    weights = weights / weights.sum()
    return str(rng.choice(names, p=weights))


def sample_publisher(rng: np.random.Generator) -> str:
    """Sample a publisher from the corpus prior."""
    return _weighted_choice(rng, lexicon.PUBLISHER_WEIGHTS)


def sample_domain(rng: np.random.Generator, publisher: str) -> str:
    """Sample a scientific domain conditioned on the publisher."""
    affinity = lexicon.PUBLISHER_DOMAIN_AFFINITY.get(publisher)
    if not affinity:
        return _weighted_choice(rng, lexicon.DOMAIN_WEIGHTS)
    valid = {d: w for d, w in affinity.items() if d in lexicon.DOMAINS and w > 0}
    if not valid:
        return _weighted_choice(rng, lexicon.DOMAIN_WEIGHTS)
    return _weighted_choice(rng, valid)


def sample_producer(rng: np.random.Generator, year: int) -> str:
    """Sample a producing tool, biased towards scanners for old documents."""
    weights = dict(lexicon.PRODUCER_WEIGHTS)
    if year < 2005:
        weights["scanner_firmware"] *= 6.0
        weights["legacy_distiller"] *= 4.0
        weights["pdftex"] *= 0.5
    elif year < 2015:
        weights["scanner_firmware"] *= 2.0
        weights["legacy_distiller"] *= 2.0
    return _weighted_choice(rng, weights)


def sample_year(rng: np.random.Generator) -> int:
    """Sample a publication year.

    The paper focuses on recent documents (to avoid training-data leakage into
    the ViT parsers) but retains a tail of older material whose metadata and
    text layers are of lower quality.
    """
    u = rng.random()
    if u < 0.70:
        return int(rng.integers(2019, 2025))
    if u < 0.90:
        return int(rng.integers(2010, 2019))
    return int(rng.integers(1995, 2010))


def make_title(rng: np.random.Generator, domain: str) -> str:
    """Generate a plausible paper title for a domain."""
    terms = lexicon.DOMAIN_TERMS[domain]
    adjectives = lexicon.ACADEMIC_ADJECTIVES
    nouns = lexicon.ACADEMIC_NOUNS
    pattern = int(rng.integers(0, 3))
    t1 = str(rng.choice(terms))
    t2 = str(rng.choice(terms))
    adj = str(rng.choice(adjectives))
    noun = str(rng.choice(nouns))
    if pattern == 0:
        title = f"A {adj} {noun} for {t1} {t2}"
    elif pattern == 1:
        title = f"On the {t1} of {t2}: a {adj} {noun}"
    else:
        title = f"{t1.capitalize()}-driven {noun} of {t2}"
    return title[0].upper() + title[1:]


def sample_metadata(rng: np.random.Generator, n_pages: int) -> DocumentMetadata:
    """Sample a complete, internally consistent metadata record."""
    publisher = sample_publisher(rng)
    domain = sample_domain(rng, publisher)
    subcategory = str(rng.choice(lexicon.SUBCATEGORIES[domain]))
    year = sample_year(rng)
    producer = sample_producer(rng, year)
    pdf_format = _weighted_choice(rng, lexicon.FORMAT_WEIGHTS)
    title = make_title(rng, domain)
    n_keywords = int(rng.integers(3, 7))
    keywords = tuple(
        str(w) for w in rng.choice(lexicon.DOMAIN_TERMS[domain], size=n_keywords, replace=False)
    )
    return DocumentMetadata(
        title=title,
        publisher=publisher,
        domain=domain,
        subcategory=subcategory,
        year=year,
        pdf_format=pdf_format,
        producer=producer,
        n_pages=n_pages,
        keywords=keywords,
    )
